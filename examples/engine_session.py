"""Example: the batched estimation engine with artifact caching.

Builds an :class:`~repro.engine.EstimationSession` over a dataset stand-in,
demonstrates the warm-start behaviour of the artifact cache, and compares
the vectorised batch hot path against a per-path estimate loop.

Run with::

    PYTHONPATH=src python examples/engine_session.py
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.datasets.registry import load_dataset
from repro.engine import EngineConfig, EstimationSession
from repro.paths.enumeration import enumerate_label_paths


def main() -> None:
    graph = load_dataset("moreno-health", scale=0.05, seed=3)
    config = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)

    with tempfile.TemporaryDirectory() as cache_dir:
        print("== cold build (artifacts computed and cached) ==")
        session = EstimationSession.build(
            graph, config, cache_dir=cache_dir, workers=4
        )
        for key, value in session.stats.as_row().items():
            print(f"  {key}: {value}")

        print("\n== warm build (artifacts loaded, catalog construction skipped) ==")
        warm = EstimationSession.build(graph, config, cache_dir=cache_dir)
        for key, value in warm.stats.as_row().items():
            print(f"  {key}: {value}")

        # A 10k-path workload sampled from the domain.
        domain = [
            str(path)
            for path in enumerate_label_paths(
                session.catalog.labels, config.max_length
            )
        ]
        rng = np.random.default_rng(0)
        workload = [domain[i] for i in rng.integers(0, len(domain), 10_000)]

        start = time.perf_counter()
        batch = session.estimate_batch(workload)
        batch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loop = [session.estimate(path) for path in workload]
        loop_seconds = time.perf_counter() - start

        assert np.allclose(batch, np.asarray(loop))
        print(
            f"\n== batch hot path ==\n"
            f"  {len(workload)} paths: batch {batch_seconds * 1000:.2f} ms, "
            f"loop {loop_seconds * 1000:.2f} ms "
            f"({loop_seconds / batch_seconds:.1f}x faster)"
        )

        sample = workload[0]
        print(
            f"\n  example: e({sample}) = {session.estimate(sample):.1f}, "
            f"true f = {session.true_selectivity(sample)}"
        )


if __name__ == "__main__":
    main()
