"""Histogram gallery: how bucket boundaries fall under different orderings.

Run with::

    python examples/histogram_gallery.py

The script renders, as ASCII, the label-path frequency distribution of a
small Moreno-Health-like graph (k = 2) laid out under the native num-alph
ordering and under the sum-based ordering, together with the 8-bucket
V-optimal histogram built over each.  It makes the paper's core idea visible
in a terminal: after reordering, similar frequencies are adjacent, buckets
are nearly flat, and the within-bucket variance (SSE) collapses.
"""

from __future__ import annotations

from repro import SelectivityCatalog, build_histogram, domain_frequencies, make_ordering
from repro.datasets.registry import moreno_like

BAR_WIDTH = 48
BUCKETS = 8


def render(frequencies, histogram, ordering) -> None:
    peak = max(max(frequencies), 1.0)
    boundaries = {bucket.start for bucket in histogram.histogram.buckets}
    for index, value in enumerate(frequencies):
        bar = "#" * int(round(BAR_WIDTH * value / peak))
        estimate = histogram.estimate_index(index)
        marker = "+" if index in boundaries else "|"
        path = str(ordering.path(index))
        print(f"  {marker} {path:>6} {value:7.0f} {bar:<{BAR_WIDTH}} est={estimate:7.1f}")


def main() -> None:
    graph = moreno_like(scale=0.02, seed=7)
    catalog = SelectivityCatalog.from_graph(graph, max_length=2)
    print(f"graph: {graph}; domain |L2| = {catalog.domain_size}\n")

    for name in ("num-alph", "sum-based"):
        ordering = make_ordering(name, catalog=catalog)
        frequencies = domain_frequencies(catalog, ordering)
        histogram = build_histogram(
            catalog, ordering, bucket_count=BUCKETS, frequencies=frequencies
        )
        print(f"== {name} ordering, {BUCKETS}-bucket V-optimal histogram ==")
        print(f"   total within-bucket SSE: {histogram.total_sse():.0f}")
        render(frequencies, histogram, ordering)
        print()

    print("'+' marks a bucket boundary. Under sum-based ordering the frequencies "
          "rise (nearly) monotonically, so each bucket is almost flat and the "
          "estimates track the true values far more closely.")


if __name__ == "__main__":
    main()
