"""Quickstart: from a graph to a selectivity estimate in a dozen lines.

Run with::

    python examples/quickstart.py

The script builds a small edge-labeled graph, computes the true selectivity
of every label path up to length 3, builds a V-optimal histogram over the
sum-based domain ordering (the paper's method), and compares a few estimates
with the exact answers.
"""

from __future__ import annotations

from repro import (
    LabeledDiGraph,
    PathSelectivityEstimator,
    SelectivityCatalog,
    error_rate,
)
from repro.graph.generators import zipf_labeled_graph


def main() -> None:
    # 1. A graph: 200 vertices, 900 edges, 5 edge labels with Zipf-skewed use.
    graph: LabeledDiGraph = zipf_labeled_graph(
        vertex_count=200, edge_count=900, label_count=5, skew=1.0, seed=42,
        name="quickstart",
    )
    print(f"graph: {graph}")

    # 2. Ground truth: the selectivity f(l) of every label path with |l| <= 3.
    catalog = SelectivityCatalog.from_graph(graph, max_length=3)
    print(f"catalog: {catalog.domain_size} label paths, "
          f"{len(catalog.nonzero_paths())} with non-zero selectivity")

    # 3. The estimator: a 32-bucket V-optimal histogram over the sum-based
    #    domain ordering.  This is the paper's recommended configuration.
    estimator = PathSelectivityEstimator.build(
        catalog, ordering="sum-based", bucket_count=32
    )
    print(f"estimator: {estimator.method_name} ordering, "
          f"{estimator.bucket_count} buckets, "
          f"{estimator.storage_entries()} stored scalars "
          f"(vs {len(catalog)} for exact answers)\n")

    # 4. Ask it about a few paths and compare with the truth.
    sample = sorted(catalog.nonzero_paths(), key=catalog.selectivity, reverse=True)
    print(f"{'path':>12} {'true f(l)':>10} {'estimate e(l)':>14} {'err (Eq.6)':>11}")
    for path in sample[:5] + sample[len(sample) // 2: len(sample) // 2 + 5]:
        truth = catalog.selectivity(path)
        estimate = estimator.estimate(path)
        print(f"{str(path):>12} {truth:>10d} {estimate:>14.1f} "
              f"{error_rate(estimate, truth):>11.3f}")


if __name__ == "__main__":
    main()
