"""Example: the concurrent estimation service.

Registers two graphs with a :class:`~repro.serving.SessionRegistry`, serves
them through the asyncio :class:`~repro.serving.EstimationService` (watching
requests coalesce into shared batches), then stands up the HTTP endpoint and
drives it with the stdlib :class:`~repro.serving.ServiceClient` — the same
round trip as ``repro serve`` / ``repro client``, in one process.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import tempfile
import threading

from repro.datasets.registry import load_dataset
from repro.engine import EngineConfig
from repro.graph.generators import zipf_labeled_graph
from repro.serving import (
    EstimationService,
    ServiceClient,
    SessionRegistry,
    make_server,
)


async def async_demo(registry: SessionRegistry) -> None:
    print("== asyncio front-end ==")
    async with EstimationService(registry, window_seconds=0.005) as service:
        # Sessions build lazily; warm() forces the build off-loop.
        build = await service.warm("moreno")
        print(f"moreno built: domain={build.domain_size} "
              f"catalog_from_cache={build.catalog_from_cache}")

        # Concurrent point estimates coalesce into one estimate_batch call.
        paths = ["1/2/3", "2/2", "1", "3/1/2", "2/1"]
        estimates = await asyncio.gather(
            *[service.estimate("moreno", path) for path in paths]
        )
        for path, estimate in zip(paths, estimates):
            print(f"  e({path}) = {estimate:.2f}")

        # A second graph shares the same scheduler and registry budgets.
        bundle = await service.estimate_many("zipf", ["1/2", "2", "3"])
        print(f"zipf bundle -> {[round(value, 2) for value in bundle]}")

        stats = service.stats()
        scheduler = stats["scheduler"]
        print(
            f"scheduler: {scheduler['requests_total']} requests in "
            f"{scheduler['batches_total']} batches "
            f"(mean coalesced {scheduler['mean_coalesced_requests']:.1f} "
            f"requests/batch)"
        )


def http_demo(registry: SessionRegistry) -> None:
    print("\n== HTTP endpoint (the 'repro serve' surface) ==")
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        print(f"healthz -> {client.healthz()}")
        estimates = client.estimate("moreno", ["1/2/3", "2/2"])
        print(f"POST /estimate -> {[round(value, 2) for value in estimates]}")
        for row in client.graphs():
            print(f"  graph {row['name']}: built={row['built']} "
                  f"domain={row.get('domain_size', '-')}")
        print(f"evicted moreno: {client.evict('moreno')}")
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        registry = SessionRegistry(
            cache_dir=cache_dir,
            max_sessions=8,
            default_config=EngineConfig(max_length=3, bucket_count=32),
        )
        registry.register("moreno", graph=load_dataset("moreno-health", scale=0.03, seed=3))
        registry.register(
            "zipf", graph=zipf_labeled_graph(60, 240, 4, skew=1.0, seed=9, name="zipf")
        )
        asyncio.run(async_demo(registry))
        http_demo(registry)


if __name__ == "__main__":
    main()
