"""Compare every domain ordering on one dataset (a one-dataset Figure 2).

Run with::

    python examples/ordering_comparison.py [dataset] [scale]

For each of the paper's five ordering methods (plus the impractical ideal
ordering as an upper bound) the script builds V-optimal histograms at several
bucket budgets and reports the mean estimation error over the whole label-path
domain, reproducing the shape of the paper's Figure 2 for one dataset.
"""

from __future__ import annotations

import sys

from repro import SelectivityCatalog, run_sweep
from repro.datasets.registry import available_datasets, load_dataset
from repro.experiments.reporting import format_table, pivot


def main(dataset: str = "snap-er", scale: float = 0.006) -> None:
    if dataset not in available_datasets():
        raise SystemExit(
            f"unknown dataset {dataset!r}; choose from {', '.join(available_datasets())}"
        )
    print(f"dataset: {dataset} (scale {scale})")
    graph = load_dataset(dataset, scale=scale)
    print(f"graph: {graph}")

    catalog = SelectivityCatalog.from_graph(graph, max_length=3)
    domain = catalog.domain_size
    bucket_counts = sorted({max(2, domain // 50), max(4, domain // 20), max(8, domain // 8)})
    print(f"domain |L3| = {domain}, bucket budgets = {bucket_counts}\n")

    results = run_sweep(
        catalog,
        dataset_name=dataset,
        bucket_counts=bucket_counts,
        include_ideal=True,
    )

    headers, rows = pivot(
        [result.as_row() for result in results],
        row_key="buckets",
        column_key="method",
        value_key="mean_error_rate",
    )
    print("mean error rate (Equation 6) per ordering and bucket budget:")
    print(format_table(headers, rows, float_digits=4))

    by_method: dict[str, list[float]] = {}
    for result in results:
        by_method.setdefault(result.method, []).append(result.mean_error_rate)
    print("\naveraged over all bucket budgets:")
    for method, values in sorted(by_method.items(), key=lambda kv: sum(kv[1])):
        print(f"  {method:10s} {sum(values) / len(values):.4f}")
    print("\n(lower is better; the paper's finding is that sum-based wins, "
          "with the ideal ordering as the unattainable floor)")


if __name__ == "__main__":
    arguments = sys.argv[1:]
    main(
        arguments[0] if arguments else "snap-er",
        float(arguments[1]) if len(arguments) > 1 else 0.006,
    )
