"""Sparse catalogs: serving a label-path domain the dense path cannot hold.

A ``|L| = 20, k = 6`` alphabet spans 67,368,420 label paths.  Storing one
``int64`` selectivity per path costs ~512 MB *per session* before counting
the engine's position table — yet a realistic graph at that scale has a few
hundred paths with nonzero selectivity.  This walkthrough builds the sparse
catalog (O(nnz) memory), shows that it answers exactly like a dense one,
and runs a full estimation session plus an incremental delta update on it.

Run with::

    PYTHONPATH=src python examples/sparse_catalog.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import EngineConfig, EstimationSession
from repro.graph.delta import GraphDelta
from repro.graph.generators import zipf_labeled_graph
from repro.paths.catalog import SelectivityCatalog

LABELS = 20
MAX_LENGTH = 6


def main() -> None:
    graph = zipf_labeled_graph(
        2000, 400, LABELS, skew=0.5, seed=29, name="large-alphabet"
    )
    print(
        f"graph: {graph.vertex_count} vertices, {graph.edge_count} edges, "
        f"{graph.label_count} labels"
    )

    # ------------------------------------------------------------------
    # 1. The sparse catalog: O(nnz) instead of O(|Lk|)
    # ------------------------------------------------------------------
    catalog = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
    dense_bytes = 8 * catalog.domain_size  # what a dense int64 vector would cost
    print(
        f"domain |Lk| = {catalog.domain_size:,} paths, "
        f"nonzero = {catalog.nnz} ({catalog.density:.2e} density)"
    )
    print(
        f"resident bytes: sparse {catalog.memory_bytes():,} vs dense "
        f"{dense_bytes:,} ({dense_bytes / catalog.memory_bytes():,.0f}x)"
    )

    # Lookups behave exactly like a dense catalog: implicit entries are 0.
    busiest = max(catalog.nonzero_paths(), key=catalog.selectivity)
    print(f"busiest path: {busiest} with f = {catalog.selectivity(busiest)}")
    absent = "/".join([catalog.labels[0]] * MAX_LENGTH)
    print(f"absent path {absent!r} reads f = {catalog.selectivity(absent)}")

    # On a *small* domain the same code picks dense storage automatically.
    small = SelectivityCatalog.from_graph(graph, 2)
    print(f"k=2 catalog ({small.domain_size} paths) auto-resolved: {small.storage}")

    # ------------------------------------------------------------------
    # 2. A full estimation session — histogram included — in O(nnz)
    # ------------------------------------------------------------------
    config = EngineConfig(
        max_length=MAX_LENGTH, ordering="sum-based", bucket_count=64, storage="sparse"
    )
    session = EstimationSession.build(graph, config)
    workload = [str(path) for path in catalog.nonzero_paths()[:10]]
    estimates = session.estimate_batch(workload)
    print(
        f"session memory: {session.memory_bytes():,} bytes "
        f"(storage={session.catalog.storage}, "
        f"lazy positions={session.stats.extra.get('lazy_positions')})"
    )
    for path, estimate in zip(workload[:5], estimates[:5]):
        print(f"  e({path}) = {estimate:10.2f}   true f = {session.true_selectivity(path)}")

    # ------------------------------------------------------------------
    # 3. Incremental updates patch only the affected subtree ranges
    # ------------------------------------------------------------------
    label = str(busiest)[0] if "/" not in str(busiest) else str(busiest).split("/")[0]
    removal = next(iter(graph.edges_with_label(label)))
    delta = GraphDelta(removals=[removal])
    updated = session.update(delta)
    print(
        f"delta: removed one {label!r} edge -> "
        f"{updated.stats.extra.get('delta_affected_subtrees')}/"
        f"{updated.stats.extra.get('delta_subtrees_total')} subtrees recomputed, "
        f"catalog still {updated.catalog.storage}"
    )

    # The patched catalog equals a cold rebuild of the post-delta graph.
    cold = SelectivityCatalog.from_graph(updated.graph, MAX_LENGTH, storage="sparse")
    patched_indices, patched_counts = updated.catalog.nonzero_arrays()
    cold_indices, cold_counts = cold.nonzero_arrays()
    assert np.array_equal(patched_indices, cold_indices)
    assert np.array_equal(patched_counts, cold_counts)
    print("patched catalog == cold rebuild: OK")


if __name__ == "__main__":
    main()
