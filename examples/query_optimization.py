"""Use the estimator inside a query optimizer — the paper's motivating scenario.

Run with::

    python examples/query_optimization.py

A long path query (longer than the histogram's k) must be split into
sub-paths and joined; the join order is chosen from estimated cardinalities.
The script plans the same query three times — with exact cardinalities, with
a sum-based-ordered histogram, and with a deliberately coarse one-bucket
histogram — executes all three plans, and reports how much intermediate work
each plan actually performed.  Better estimates -> cheaper plans.
"""

from __future__ import annotations

from repro import PathSelectivityEstimator, SelectivityCatalog
from repro.datasets.registry import load_dataset
from repro.optimizer import (
    HistogramCardinalityModel,
    PathQueryPlanner,
    PlanExecutor,
    TrueCardinalityModel,
)


def main() -> None:
    graph = load_dataset("dbpedia", scale=0.01, seed=11)
    print(f"graph: {graph}")
    catalog = SelectivityCatalog.from_graph(graph, max_length=3)
    labels = catalog.labels

    # A 7-hop query built from the two most frequent and one rare label.
    by_frequency = sorted(labels, key=catalog.label_selectivity)
    rare, mid, frequent = by_frequency[0], by_frequency[len(by_frequency) // 2], by_frequency[-1]
    query = "/".join([frequent, mid, frequent, rare, frequent, mid, frequent])
    print(f"query: {query}  (k of the histogram is {catalog.max_length})\n")

    executor = PlanExecutor(graph)
    scenarios = {
        "exact cardinalities": TrueCardinalityModel(catalog, graph.vertex_count),
        "sum-based histogram (64 buckets)": HistogramCardinalityModel(
            PathSelectivityEstimator.build(catalog, ordering="sum-based", bucket_count=64),
            catalog.max_length,
            graph.vertex_count,
        ),
        "coarse histogram (1 bucket)": HistogramCardinalityModel(
            PathSelectivityEstimator.build(catalog, ordering="num-alph", bucket_count=1),
            catalog.max_length,
            graph.vertex_count,
        ),
    }

    reference_pairs = None
    for name, model in scenarios.items():
        planned = PathQueryPlanner(model).plan(query)
        result = executor.execute(planned.plan)
        if reference_pairs is None:
            reference_pairs = result.pairs
        assert result.pairs == reference_pairs, "all plans must compute the same answer"
        print(f"== {name} ==")
        print(planned.describe())
        print(
            f"result pairs: {result.cardinality}, "
            f"intermediate tuples materialised: {result.total_intermediate_work}\n"
        )

    print("All plans return the same answer; the difference is the amount of "
          "intermediate work, which is what accurate selectivity estimates buy.")


if __name__ == "__main__":
    main()
