"""Dataset workflow: generate, persist, reload and profile the Table 3 stand-ins.

Run with::

    python examples/dataset_workflow.py [output_directory]

For each of the paper's four datasets the script generates the stand-in at a
small scale, writes it to an edge-list file, reloads it, builds and persists
its selectivity catalog, and prints a Table-3-style summary together with the
label-frequency statistics that distinguish the "real" stand-ins (skewed,
correlated labels) from the synthetic ones (uniform labels).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import SelectivityCatalog
from repro.datasets.registry import available_datasets, dataset_spec, load_dataset
from repro.experiments.reporting import format_records
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.statistics import label_frequency_skew, summarize_graph


def main(output_directory: str | None = None) -> None:
    target = Path(output_directory) if output_directory else Path(tempfile.mkdtemp(prefix="repro-datasets-"))
    target.mkdir(parents=True, exist_ok=True)
    print(f"writing datasets and catalogs to {target}\n")

    rows = []
    for name in available_datasets():
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=0.02)

        edge_file = target / f"{name}.tsv"
        write_edge_list(graph, edge_file)
        reloaded = read_edge_list(edge_file, name=name)

        catalog = SelectivityCatalog.from_graph(reloaded, max_length=2)
        catalog_file = target / f"{name}.catalog.json"
        catalog.save(catalog_file)

        summary = summarize_graph(reloaded)
        rows.append(
            {
                "dataset": name,
                "real (paper)": "yes" if spec.real_world else "no",
                "labels": summary.label_count,
                "vertices": summary.vertex_count,
                "edges": summary.edge_count,
                "label skew (max/min)": round(label_frequency_skew(reloaded), 1),
                "label gini": round(summary.label_gini, 3),
                "|L2| paths": catalog.domain_size,
                "non-empty paths": len(catalog.nonzero_paths()),
            }
        )
        print(f"  {name}: wrote {edge_file.name} and {catalog_file.name}")

    print("\nTable 3 (stand-ins at scale 0.02) with label-distribution statistics:")
    print(format_records(rows))
    print("\nNote how the 'real' stand-ins have much higher label skew/Gini — the "
          "property the paper credits for the smaller sum-based advantage on real data.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
