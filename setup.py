"""Legacy setup shim.

The environment this reproduction targets ships an older setuptools without
the ``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  Keeping a thin ``setup.py`` allows
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) to work everywhere; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
