"""Round-trip tests for the stdlib HTTP endpoint and client."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.exceptions import ServingError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import ServiceClient, SessionRegistry, make_server

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture()
def server():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


@pytest.fixture()
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}", timeout=30.0)


class TestRoundTrip:
    def test_healthz_lists_graphs(self, client):
        document = client.healthz()
        assert document["status"] == "ok"
        assert document["graphs"] == ["g"]

    def test_estimate_matches_direct_session(self, server, client):
        paths = ["1/2", "2", "3/3"]
        estimates = client.estimate("g", paths)
        expected = server.registry.get("g").estimate_batch(paths)
        assert np.allclose(estimates, expected)

    def test_single_path_field_accepted(self, server, client):
        document = client._request("/estimate", {"graph": "g", "path": "1/2"})
        expected = server.registry.get("g").estimate("1/2")
        assert document["count"] == 1
        assert document["estimates"][0] == pytest.approx(expected)

    def test_warm_then_stats_reflect_traffic(self, client):
        build = client.warm("g")
        assert build["domain_size"] > 0
        client.estimate("g", ["1/2", "2"])
        stats = client.stats()
        assert stats["scheduler"]["requests_total"] >= 1
        assert stats["scheduler"]["batch_paths_total"] >= 2
        assert stats["registry"]["sessions_resident"] == 1

    def test_graphs_and_evict(self, client):
        client.warm("g")
        rows = client.graphs()
        assert rows[0]["name"] == "g" and rows[0]["built"] is True
        assert client.evict("g") is True
        assert client.evict("g") is False
        rows = client.graphs()
        assert rows[0]["built"] is False

    def test_concurrent_http_clients_agree_with_direct_batch(self, server, client):
        session = server.registry.get("g")
        paths = ["1/2", "2", "3/3", "1", "2/1", "3"] * 3
        results: dict[int, float] = {}
        errors = []

        def fire(position, path):
            try:
                results[position] = client.estimate("g", [path])[0]
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(position, path))
            for position, path in enumerate(paths)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        expected = session.estimate_batch(paths)
        got = [results[position] for position in range(len(paths))]
        assert np.allclose(got, expected)


class TestErrors:
    def test_unknown_graph_is_404(self, client):
        with pytest.raises(ServingError, match="404"):
            client.estimate("missing", ["1/2"])
        with pytest.raises(ServingError, match="404"):
            client.warm("missing")
        with pytest.raises(ServingError, match="404"):
            client.evict("missing")

    def test_invalid_path_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client.estimate("g", ["99/88"])

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServingError, match="404"):
            client._request("/nope")

    def test_malformed_body_is_400(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/estimate",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_missing_paths_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client._request("/estimate", {"graph": "g"})
        with pytest.raises(ServingError, match="400"):
            client._request("/estimate", {"graph": "g", "paths": []})

    def test_closed_scheduler_is_503(self, server, client):
        client.warm("g")
        server.scheduler.close()
        with pytest.raises(ServingError, match="503"):
            client.estimate("g", ["1/2"])
