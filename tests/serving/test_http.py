"""Round-trip tests for the stdlib HTTP endpoint and client."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import EngineConfig, EstimationSession
from repro.exceptions import ServingError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import ServiceClient, SessionRegistry, make_server

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture()
def server():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


@pytest.fixture()
def client(server):
    host, port = server.server_address[:2]
    return ServiceClient(f"http://{host}:{port}", timeout=30.0)


class TestRoundTrip:
    def test_healthz_lists_graphs(self, client):
        document = client.healthz()
        assert document["status"] == "ok"
        assert document["graphs"] == ["g"]

    def test_estimate_matches_direct_session(self, server, client):
        paths = ["1/2", "2", "3/3"]
        estimates = client.estimate("g", paths)
        expected = server.registry.get("g").estimate_batch(paths)
        assert np.allclose(estimates, expected)

    def test_single_path_field_accepted(self, server, client):
        document = client._request("/v1/estimate", {"graph": "g", "path": "1/2"})
        expected = server.registry.get("g").estimate("1/2")
        assert document["count"] == 1
        assert document["estimates"][0] == pytest.approx(expected)

    def test_warm_then_stats_reflect_traffic(self, client):
        build = client.warm("g")
        assert build["domain_size"] > 0
        client.estimate("g", ["1/2", "2"])
        stats = client.stats()
        assert stats["scheduler"]["requests_total"] >= 1
        assert stats["scheduler"]["batch_paths_total"] >= 2
        assert stats["registry"]["sessions_resident"] == 1

    def test_graphs_and_evict(self, client):
        client.warm("g")
        rows = client.graphs()
        assert rows[0]["name"] == "g" and rows[0]["built"] is True
        assert client.evict("g") is True
        assert client.evict("g") is False
        rows = client.graphs()
        assert rows[0]["built"] is False

    def test_concurrent_http_clients_agree_with_direct_batch(self, server, client):
        session = server.registry.get("g")
        paths = ["1/2", "2", "3/3", "1", "2/1", "3"] * 3
        results: dict[int, float] = {}
        errors = []

        def fire(position, path):
            try:
                results[position] = client.estimate("g", [path])[0]
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(position, path))
            for position, path in enumerate(paths)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        expected = session.estimate_batch(paths)
        got = [results[position] for position in range(len(paths))]
        assert np.allclose(got, expected)


class TestUpdateRoute:
    def test_update_swaps_and_keeps_serving(self, server, client):
        old_session = server.registry.get("g")
        edge = next(iter(old_session.graph.edges()))
        row = client.update("g", remove=[list(edge)])
        assert row["built"] is True
        assert row["removals"] == 1
        assert row["graph"] == "g"
        new_session = server.registry.get("g")
        assert new_session is not old_session
        cold = EstimationSession.build(new_session.graph.copy(), CONFIG)
        paths = ["1/2", "2", "3/3"]
        assert np.allclose(client.estimate("g", paths), cold.estimate_batch(paths))

    def test_update_unbuilt_graph_stays_lazy(self, server, client):
        row = client.update("g", add=[["extra-u", "1", "extra-v"]])
        assert row["built"] is False
        assert row["additions"] == 1
        assert client.graphs()[0]["built"] is False

    def test_update_unknown_graph_is_404(self, client):
        with pytest.raises(ServingError, match="404"):
            client.update("missing", add=[["u", "1", "v"]])

    def test_update_empty_delta_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/update", {"graph": "g"})

    def test_update_malformed_delta_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/update", {"graph": "g", "add": "not-a-list"})
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/update", {"graph": "g", "add": [["u", "1"]]})
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/update", {"graph": "g", "add": [42]})
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/update", {"graph": "g", "add": [[["x"], "1", "y"]]})


class TestErrors:
    def test_unknown_graph_is_404(self, client):
        with pytest.raises(ServingError, match="404"):
            client.estimate("missing", ["1/2"])
        with pytest.raises(ServingError, match="404"):
            client.warm("missing")
        with pytest.raises(ServingError, match="404"):
            client.evict("missing")

    def test_invalid_path_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client.estimate("g", ["99/88"])

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServingError, match="404"):
            client._request("/nope")

    def test_malformed_body_is_400(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/estimate",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_missing_paths_is_400(self, client):
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/estimate", {"graph": "g"})
        with pytest.raises(ServingError, match="400"):
            client._request("/v1/estimate", {"graph": "g", "paths": []})

    def test_non_object_body_is_400(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/estimate",
            data=b"[1, 2, 3]",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "must be an object" in body["error"]

    def test_invalid_content_length_is_400(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/estimate",
            data=b"{}",
            headers={"Content-Type": "application/json"},
        )
        request.add_unredirected_header("Content-Length", "not-a-number")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "Content-Length" in body["error"]

    def test_closed_scheduler_is_503(self, server, client):
        client.warm("g")
        server.scheduler.close()
        with pytest.raises(ServingError, match="503"):
            client.estimate("g", ["1/2"])

    def test_backpressure_queue_full_is_503(self):
        """A full scheduler queue maps to HTTP 503 for the overflowing client.

        The worker is pinned inside a build whose loader blocks on an event;
        requests then pile up to ``max_pending`` and the next one overflows.
        """
        release = threading.Event()
        started = threading.Event()

        def slow_loader():
            started.set()
            release.wait(timeout=30)
            return zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="slow")

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("slow", loader=slow_loader)
        server = make_server(
            registry, port=0, window_seconds=0.0, max_pending=2
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        fire_results: list[object] = []

        def fire():
            try:
                fire_results.append(client.estimate("slow", ["1"]))
            except ServingError as exc:  # pragma: no cover - depends on timing
                fire_results.append(exc)

        try:
            # First request: the worker picks it up and blocks in the build.
            blocked = threading.Thread(target=fire, daemon=True)
            blocked.start()
            assert started.wait(timeout=30)
            # Fill the queue to max_pending while the worker is pinned.
            queued = [threading.Thread(target=fire, daemon=True) for _ in range(2)]
            for t in queued:
                t.start()
            deadline = 30.0
            while server.scheduler._queue.qsize() < 2 and deadline > 0:
                threading.Event().wait(0.01)
                deadline -= 0.01
            assert server.scheduler._queue.qsize() == 2
            # The next request overflows the bounded queue -> 503.
            with pytest.raises(ServingError, match="503"):
                client.estimate("slow", ["1"])
            stats = server.scheduler.stats.snapshot()
            assert stats["rejected_total"] >= 1
        finally:
            release.set()
            blocked.join(timeout=30)
            for t in queued:
                t.join(timeout=30)
            server.shutdown()
            server.close()
            thread.join(timeout=10)
