"""The versioned ``/v1/`` API surface, its removed aliases, and the
uniform error envelope.

Every API route lives under :data:`repro.serving.http.API_PREFIX`.  The
unversioned spellings served one release as deprecated aliases and are now
removed: they answer the 404 envelope pointing at the ``/v1`` route while
still bumping ``repro_http_deprecated_requests_total``, so a straggler
client stays visible on the migration dashboard.  Every non-2xx response
carries the envelope ``{"error", "code", "retry_after", "request_id"}``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.exceptions import ServingError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import API_PREFIX, ServiceClient, SessionRegistry, make_server

CONFIG = EngineConfig(max_length=2, bucket_count=8)

ENVELOPE_KEYS = {"error", "code", "retry_after", "request_id"}


@pytest.fixture()
def server():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


@pytest.fixture()
def base(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture()
def client(base):
    return ServiceClient(base, timeout=30.0)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return (
            response.status,
            dict(response.headers),
            json.loads(response.read().decode("utf-8")),
        )


def _post(url: str, document: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.status,
            dict(response.headers),
            json.loads(response.read().decode("utf-8")),
        )


def _error(url: str, document: dict | None = None):
    data = (
        json.dumps(document).encode("utf-8") if document is not None else None
    )
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    exc = excinfo.value
    return exc.code, json.loads(exc.read().decode("utf-8"))


class TestVersionedRoutes:
    def test_all_api_routes_answer_under_v1(self, base, server):
        status, headers, stats = _get(f"{base}{API_PREFIX}/stats")
        assert status == 200 and "scheduler" in stats
        status, headers, rows = _get(f"{base}{API_PREFIX}/graphs")
        assert status == 200 and rows["graphs"][0]["name"] == "g"
        status, headers, answer = _post(
            f"{base}{API_PREFIX}/estimate", {"graph": "g", "paths": ["1/2"]}
        )
        assert status == 200 and answer["count"] == 1
        status, headers, build = _post(
            f"{base}{API_PREFIX}/warm", {"graph": "g"}
        )
        assert status == 200 and build["stats"]["domain_size"] > 0
        status, headers, update = _post(
            f"{base}{API_PREFIX}/update",
            {"graph": "g", "add": [["u", "1", "v"]]},
        )
        assert status == 200 and update["additions"] == 1
        status, headers, evicted = _post(
            f"{base}{API_PREFIX}/evict", {"graph": "g"}
        )
        assert status == 200

    def test_v1_responses_are_not_marked_deprecated(self, base):
        status, headers, _ = _get(f"{base}{API_PREFIX}/stats")
        assert status == 200
        assert "Deprecation" not in headers

    def test_health_routes_stay_unversioned(self, base):
        status, headers, health = _get(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok"
        assert "Deprecation" not in headers


class TestRemovedAliases:
    def test_post_alias_is_gone_with_envelope(self, base):
        status, envelope = _error(
            f"{base}/estimate", {"graph": "g", "paths": ["1/2", "2"]}
        )
        assert status == 404
        assert set(envelope) >= ENVELOPE_KEYS
        assert envelope["code"] == "not_found"
        assert f"{API_PREFIX}/estimate" in envelope["error"]

    def test_get_alias_is_gone_with_envelope(self, base):
        status, envelope = _error(f"{base}/stats")
        assert status == 404
        assert envelope["code"] == "not_found"
        assert f"{API_PREFIX}/stats" in envelope["error"]

    def test_alias_usage_is_still_counted(self, base, server):
        _error(f"{base}/stats")
        _error(f"{base}/graphs")
        _error(f"{base}/evict", {"graph": "g"})
        metrics = urllib.request.urlopen(f"{base}/metrics", timeout=30).read()
        text = metrics.decode("utf-8")
        # The series survives the alias removal so dashboards watching the
        # migration keep working — and now show stragglers hitting 404.
        assert "repro_http_deprecated_requests_total" in text
        assert 'repro_http_deprecated_requests_total{route="/stats"} 1' in text
        assert 'repro_http_deprecated_requests_total{route="/evict"} 1' in text

    def test_versioned_spelling_still_answers(self, base):
        status, _, answer = _post(
            f"{base}{API_PREFIX}/estimate", {"graph": "g", "paths": ["1/2", "2"]}
        )
        assert status == 200
        assert answer["count"] == 2


class TestErrorEnvelope:
    def test_unknown_graph(self, base):
        status, envelope = _error(
            f"{base}{API_PREFIX}/estimate", {"graph": "missing", "paths": ["1"]}
        )
        assert status == 404
        assert set(envelope) >= ENVELOPE_KEYS
        assert envelope["code"] == "unknown_graph"
        assert envelope["request_id"]

    def test_unknown_route(self, base):
        status, envelope = _error(f"{base}{API_PREFIX}/nope", {})
        assert status == 404
        assert set(envelope) >= ENVELOPE_KEYS
        assert envelope["code"] == "not_found"

    def test_bad_request(self, base):
        status, envelope = _error(f"{base}{API_PREFIX}/estimate", {"graph": "g"})
        assert status == 400
        assert set(envelope) >= ENVELOPE_KEYS
        assert envelope["code"] == "bad_request"
        assert envelope["retry_after"] is None

    def test_invalid_path_is_bad_request(self, base):
        status, envelope = _error(
            f"{base}{API_PREFIX}/estimate", {"graph": "g", "paths": ["99/88"]}
        )
        assert status == 400
        assert set(envelope) >= ENVELOPE_KEYS


class TestClientSpeaksV1:
    def test_round_trip_and_request_id(self, server, client):
        values = client.estimate("g", ["1/2", "2"])
        expected = server.registry.get("g").estimate_batch(["1/2", "2"])
        assert np.allclose(values, expected)
        assert client.last_request_id

    def test_client_exposes_code_and_envelope(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.estimate("missing", ["1"])
        error = excinfo.value
        assert error.code == "unknown_graph"
        assert set(error.envelope) >= ENVELOPE_KEYS
        assert error.status == 404
