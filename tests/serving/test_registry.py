"""Tests for the multi-graph session registry (single-flight + eviction)."""

from __future__ import annotations

import threading

import pytest

from repro.engine import ArtifactCache, EngineConfig
from repro.exceptions import ServingError, UnknownGraphError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import SessionRegistry

CONFIG = EngineConfig(max_length=2, bucket_count=8)


def _graph(seed: int, labels: int = 3):
    return zipf_labeled_graph(30, 100, labels, skew=1.0, seed=seed, name=f"g{seed}")


class TestRegistration:
    def test_register_requires_exactly_one_source(self):
        registry = SessionRegistry(default_config=CONFIG)
        with pytest.raises(ServingError):
            registry.register("g")
        with pytest.raises(ServingError):
            registry.register("g", graph=_graph(1), path="also.tsv")
        with pytest.raises(ServingError):
            registry.register("", graph=_graph(1))

    def test_unknown_graph_raises_with_available_names(self):
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("known", graph=_graph(1))
        with pytest.raises(UnknownGraphError) as excinfo:
            registry.get("missing")
        assert "known" in str(excinfo.value)

    def test_register_from_edge_list_path(self, tmp_path):
        from repro.graph.io import write_edge_list

        graph = _graph(4)
        target = tmp_path / "graph.tsv"
        write_edge_list(graph, target)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("file", path=target)
        session = registry.get("file")
        assert session.domain_size == registry.get("file").domain_size
        assert registry.stats.builds == 1

    def test_describe_reports_built_state(self):
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("a", graph=_graph(1))
        rows = registry.describe()
        assert rows[0]["name"] == "a" and rows[0]["built"] is False
        registry.get("a")
        rows = registry.describe()
        assert rows[0]["built"] is True and rows[0]["domain_size"] > 0


class TestSingleFlight:
    def test_concurrent_first_access_builds_exactly_once(self):
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=_graph(7))
        thread_count = 12
        barrier = threading.Barrier(thread_count)
        sessions = []
        errors = []

        def request():
            try:
                barrier.wait()
                sessions.append(registry.get("g"))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=request) for _ in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert registry.stats.builds == 1
        assert len(sessions) == thread_count
        assert all(session is sessions[0] for session in sessions)

    def test_same_graph_under_two_names_shares_one_session(self):
        graph = _graph(9)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("first", graph=graph)
        registry.register("second", graph=graph)
        assert registry.get("first") is registry.get("second")
        assert registry.stats.builds == 1
        assert registry.session_count() == 1


class TestEviction:
    def test_lru_by_session_count(self):
        registry = SessionRegistry(default_config=CONFIG, max_sessions=1)
        registry.register("a", graph=_graph(1))
        registry.register("b", graph=_graph(2))
        first = registry.get("a")
        registry.get("b")
        assert registry.session_count() == 1
        assert registry.stats.evictions == 1
        # "a" still serves — it just rebuilds.
        rebuilt = registry.get("a")
        assert rebuilt is not first
        assert registry.stats.builds == 3

    def test_byte_budget_eviction_keeps_most_recent(self):
        registry = SessionRegistry(default_config=CONFIG, max_bytes=1)
        registry.register("a", graph=_graph(1))
        registry.register("b", graph=_graph(2))
        registry.get("a")
        session_b = registry.get("b")
        # Both sessions exceed one byte, but the newest always survives.
        assert registry.session_count() == 1
        assert registry.get("b") is session_b
        assert registry.stats.evictions == 1

    def test_eviction_under_load_serves_correct_results(self):
        registry = SessionRegistry(default_config=CONFIG, max_sessions=1)
        graph_a, graph_b = _graph(1), _graph(2)
        registry.register("a", graph=graph_a)
        registry.register("b", graph=graph_b)
        expected_a = registry.get("a").estimate_batch(["1/2", "2"])
        expected_b = registry.get("b").estimate_batch(["1/2", "2"])
        errors = []

        def hammer(name, expected):
            try:
                for _ in range(10):
                    got = registry.get(name).estimate_batch(["1/2", "2"])
                    assert list(got) == list(expected)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(name, expected))
            for name, expected in (("a", expected_a), ("b", expected_b)) * 3
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert registry.stats.evictions > 0

    def test_explicit_evict_and_rebuild_warm_starts_from_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        registry = SessionRegistry(default_config=CONFIG, cache_dir=cache)
        registry.register("g", graph=_graph(3))
        built = registry.get("g")
        assert registry.evict("g") is True
        assert registry.evict("g") is False
        assert registry.session_count() == 0
        rebuilt = registry.get("g")
        assert rebuilt is not built
        assert rebuilt.stats.catalog_from_cache is True
        with pytest.raises(UnknownGraphError):
            registry.evict("missing")

    def test_prune_cache_bytes_keeps_cache_dir_bounded(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        registry = SessionRegistry(
            default_config=CONFIG, cache_dir=cache, prune_cache_bytes=0
        )
        registry.register("g", graph=_graph(3))
        registry.get("g")
        # Budget 0 prunes everything right after the build wrote it.
        assert cache.total_bytes() == 0


class TestUpdateGraph:
    def test_update_swaps_session_in_place(self):
        import numpy as np

        from repro.engine import EstimationSession
        from repro.graph.delta import GraphDelta

        graph = _graph(31)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=graph.copy())
        old_session = registry.get("g")
        edge = next(iter(old_session.graph.edges()))
        row = registry.update_graph("g", GraphDelta(removals=[tuple(edge)]))
        assert row["built"] is True
        assert row["removals"] == 1
        assert row["graph_digest"] != old_session.stats.graph_digest
        new_session = registry.get("g")
        assert new_session is not old_session
        cold = EstimationSession.build(new_session.graph.copy(), CONFIG)
        assert np.array_equal(
            new_session.catalog.frequency_vector(),
            cold.catalog.frequency_vector(),
        )
        assert registry.stats.updates == 1
        assert registry.session_count() == 1  # old entry retired

    def test_old_session_usable_while_update_swaps(self):
        from repro.graph.delta import GraphDelta

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=_graph(32))
        old_session = registry.get("g")
        before = old_session.catalog.frequency_vector().copy()
        edge = next(iter(old_session.graph.edges()))
        registry.update_graph("g", GraphDelta(removals=[tuple(edge)]))
        # References handed out before the swap keep answering against the
        # pre-delta snapshot.
        import numpy as np

        assert np.array_equal(old_session.catalog.frequency_vector(), before)
        assert old_session.estimate_batch(["1", "2"]).shape == (2,)

    def test_update_unbuilt_name_pins_mutated_graph(self):
        from repro.graph.delta import GraphDelta

        graph = _graph(33)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=graph.copy())
        edge = next(iter(graph.edges()))
        row = registry.update_graph("g", GraphDelta(removals=[tuple(edge)]))
        assert row["built"] is False
        assert row["removals"] == 1
        # Lazy build afterwards sees the post-delta graph.
        session = registry.get("g")
        assert registry.stats.builds == 1
        assert (
            session.true_selectivity(edge.label)
            == graph.label_edge_count(edge.label) - 1
        )

    def test_update_file_backed_source_survives_rebuild(self, tmp_path):
        from repro.graph.delta import GraphDelta
        from repro.graph.io import write_edge_list

        graph = _graph(34)
        target = tmp_path / "graph.tsv"
        write_edge_list(graph, target)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("file", path=target)
        built = registry.get("file")
        edge = next(iter(built.graph.edges()))
        delta = GraphDelta(removals=[(str(edge.source), edge.label, str(edge.target))])
        registry.update_graph("file", delta)
        updated = registry.get("file")
        # Evict and rebuild: the pinned in-memory graph (not the stale file)
        # must be the source, so the delta survives.
        registry.evict("file")
        rebuilt = registry.get("file")
        import numpy as np

        assert np.array_equal(
            rebuilt.catalog.frequency_vector(),
            updated.catalog.frequency_vector(),
        )

    def test_update_keeps_shared_session_for_sibling_names(self):
        import numpy as np

        from repro.graph.delta import GraphDelta

        graph = _graph(36)
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("a", graph=graph)
        registry.register("b", graph=graph)
        shared = registry.get("a")
        assert registry.get("b") is shared  # one session for both names
        snapshot = shared.catalog.frequency_vector().copy()
        edge_count = graph.edge_count
        edge = next(iter(shared.graph.edges()))
        registry.update_graph("a", GraphDelta(removals=[tuple(edge)]))
        # "b" was never updated: it must keep its consistent pre-delta
        # session, and the shared (operator-owned) graph object must not be
        # mutated under it — the update worked on a private copy.
        assert registry.get("b") is shared
        assert np.array_equal(shared.catalog.frequency_vector(), snapshot)
        assert graph.edge_count == edge_count
        updated = registry.get("a")
        assert updated is not shared
        assert updated.graph.edge_count == edge_count - 1
        assert registry.session_count() == 2

    def test_update_sibling_registered_object_not_mutated(self):
        from repro.graph.delta import GraphDelta

        ga = _graph(38)
        gb = _graph(38)  # byte-identical, distinct object
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("a", graph=ga)
        registry.register("b", graph=gb)
        shared = registry.get("a")  # retains ga
        assert registry.get("b") is shared
        edge = next(iter(shared.graph.edges()))
        registry.update_graph("b", GraphDelta(removals=[tuple(edge)]))
        # Neither operator-owned object changed: "b"'s update ran on a copy
        # because the session's retained graph is "a"'s registered object.
        assert ga.edge_count == gb.edge_count == _graph(38).edge_count
        assert registry.get("b").graph.edge_count == ga.edge_count - 1

    def test_update_noop_removal_with_unknown_label_is_clean(self):
        from repro.graph.delta import GraphDelta

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=_graph(37))
        session = registry.get("g")
        edge = next(iter(session.graph.edges()))
        delta = GraphDelta(
            additions=[(edge.source, edge.label, "brand-new-vertex")],
            removals=[("u", "no-such-label", "v")],
        )
        row = registry.update_graph("g", delta)
        assert row["built"] is True
        assert row["removals"] == 0
        assert registry.get("g").estimate_batch(["1", "2"]).shape == (2,)

    def test_update_unknown_name_raises(self):
        from repro.graph.delta import GraphDelta

        registry = SessionRegistry(default_config=CONFIG)
        with pytest.raises(UnknownGraphError):
            registry.update_graph("missing", GraphDelta())

    def test_update_counters_in_as_row(self):
        from repro.graph.delta import GraphDelta

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("g", graph=_graph(35))
        session = registry.get("g")
        edge = next(iter(session.graph.edges()))
        registry.update_graph("g", GraphDelta(removals=[tuple(edge)]))
        row = registry.as_row()
        assert row["updates"] == 1
        assert row["update_seconds_total"] > 0


class TestStats:
    def test_as_row_merges_counters_and_state(self):
        registry = SessionRegistry(default_config=CONFIG)
        registry.register("a", graph=_graph(1))
        registry.get("a")
        registry.get("a")
        row = registry.as_row()
        assert row["graphs_registered"] == 1
        assert row["sessions_resident"] == 1
        assert row["builds"] == 1
        assert row["hits"] >= 1
        assert row["sessions_bytes"] > 0


def test_unknown_graph_error_message_has_no_stray_quotes():
    from repro.exceptions import UnknownGraphError

    message = str(UnknownGraphError("g", ("a", "b")))
    assert message == "unknown graph: 'g' (registered: a, b)"
