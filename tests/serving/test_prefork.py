"""The pre-fork serving tier: socket strategy, supervision, drain.

The integration tests fork real worker processes (each running the full
handler/scheduler stack) from the test process, so they are skipped on
platforms without ``os.fork``.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.exceptions import ServingError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import ServiceClient, SessionRegistry, make_server
from repro.serving.prefork import PreforkServer, _bind_socket

CONFIG = EngineConfig(max_length=2, bucket_count=8)

fork_only = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="pre-fork serving requires os.fork"
)


def _graph():
    return zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")


def _registry_factory():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register("g", graph=_graph())
    return registry


def _server_factory(registry, inherited_socket):
    return make_server(
        registry,
        window_seconds=0.0,
        inherited_socket=inherited_socket,
    )


class TestBindSocket:
    def test_resolves_ephemeral_port(self):
        sock = _bind_socket("127.0.0.1", 0, reuse_port=False, listen=False)
        try:
            host, port = sock.getsockname()[:2]
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            sock.close()

    def test_listen_false_socket_is_not_accepting(self):
        sock = _bind_socket("127.0.0.1", 0, reuse_port=False, listen=False)
        try:
            _, port = sock.getsockname()[:2]
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.settimeout(2.0)
            with pytest.raises(OSError):
                probe.connect(("127.0.0.1", port))
            probe.close()
        finally:
            sock.close()

    def test_bound_port_is_claimed(self):
        sock = _bind_socket("127.0.0.1", 0, reuse_port=False, listen=True)
        try:
            _, port = sock.getsockname()[:2]
            other = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            other.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            with pytest.raises(OSError):
                other.bind(("127.0.0.1", port))
            other.close()
        finally:
            sock.close()


class TestInheritedSocket:
    def test_http_server_adopts_prebound_socket(self):
        sock = _bind_socket("127.0.0.1", 0, reuse_port=False, listen=False)
        registry = _registry_factory()
        server = make_server(registry, window_seconds=0.0, inherited_socket=sock)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = sock.getsockname()[:2]
            assert server.server_address[:2] == (host, port)
            client = ServiceClient(f"http://{host}:{port}", timeout=30.0)
            values = client.estimate("g", ["1/2", "2"])
            expected = registry.get("g").estimate_batch(["1/2", "2"])
            assert np.allclose(values, expected)
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


class TestValidation:
    def test_worker_count_must_be_positive(self):
        with pytest.raises(ServingError, match="worker_count"):
            PreforkServer(
                host="127.0.0.1",
                port=0,
                worker_count=0,
                registry_factory=_registry_factory,
                server_factory=_server_factory,
            )

    def test_constructor_resolves_port_before_forking(self):
        prefork = PreforkServer(
            host="127.0.0.1",
            port=0,
            worker_count=1,
            registry_factory=_registry_factory,
            server_factory=_server_factory,
        )
        try:
            assert prefork.port > 0
            assert prefork.address == ("127.0.0.1", prefork.port)
        finally:
            prefork._socket.close()


@fork_only
class TestSupervision:
    @pytest.fixture()
    def prefork(self):
        prefork = PreforkServer(
            host="127.0.0.1",
            port=0,
            worker_count=1,
            registry_factory=_registry_factory,
            server_factory=_server_factory,
            backoff_seconds=0.05,
            drain_seconds=10.0,
        )
        # run() is driven from a thread, so its signal.signal calls are
        # no-ops (caught ValueError); the tests drain by flipping the flag
        # and signalling children directly, exactly what the handler does.
        thread = threading.Thread(target=prefork.run, daemon=True)
        thread.start()
        try:
            yield prefork
        finally:
            prefork._draining = True
            prefork._terminate_children()
            thread.join(timeout=30)
            assert not thread.is_alive()

    def _wait_healthy(self, prefork, deadline_seconds=30.0):
        client = ServiceClient(f"http://127.0.0.1:{prefork.port}", timeout=30.0)
        deadline = time.perf_counter() + deadline_seconds
        while True:
            try:
                return client, client.healthz()
            except ServingError:
                if time.perf_counter() > deadline:
                    raise
                time.sleep(0.1)

    def test_worker_serves_traffic(self, prefork):
        client, health = self._wait_healthy(prefork)
        assert health["status"] == "ok"
        values = client.estimate("g", ["1/2", "2", "3"])
        assert len(values) == 3

    def test_killed_worker_is_respawned(self, prefork):
        client, _ = self._wait_healthy(prefork)
        original = set(prefork._children)
        assert len(original) == 1
        os.kill(next(iter(original)), signal.SIGKILL)
        deadline = time.perf_counter() + 30.0
        while True:
            replacement = set(prefork._children) - original
            if replacement:
                break
            assert time.perf_counter() < deadline, "worker never respawned"
            time.sleep(0.05)
        client, health = self._wait_healthy(prefork)
        assert health["status"] == "ok"
        assert client.estimate("g", ["1/2"])
