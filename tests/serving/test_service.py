"""Tests for the asyncio front-end."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.exceptions import UnknownGraphError
from repro.graph.generators import zipf_labeled_graph
from repro.serving import EstimationService, SessionRegistry

CONFIG = EngineConfig(max_length=2, bucket_count=8)


def _registry():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    return registry


def test_concurrent_estimates_coalesce_and_agree():
    registry = _registry()
    session = registry.get("g")
    paths = ["1/2", "2", "3/3", "1", "2/1", "3"]

    async def main():
        async with EstimationService(registry, window_seconds=0.05) as service:
            results = await asyncio.gather(
                *[service.estimate("g", path) for path in paths]
            )
            return results, service.stats()

    results, stats = asyncio.run(main())
    assert np.allclose(results, session.estimate_batch(paths))
    assert stats["scheduler"]["batch_requests_total"] == len(paths)
    assert stats["scheduler"]["batches_total"] < len(paths)
    assert stats["registry"]["sessions_resident"] == 1


def test_estimate_many_and_warm_and_evict():
    registry = _registry()

    async def main():
        async with EstimationService(registry, window_seconds=0.0) as service:
            build_stats = await service.warm("g")
            assert build_stats.domain_size > 0
            estimates = await service.estimate_many("g", ["1/2", "2"])
            assert len(estimates) == 2
            assert await service.evict("g") is True
            assert await service.evict("g") is False
            # Eviction only drops the resident session: estimates still work.
            again = await service.estimate("g", "1/2")
            assert again == pytest.approx(estimates[0])

    asyncio.run(main())


def test_unknown_graph_propagates_to_awaiter():
    registry = _registry()

    async def main():
        async with EstimationService(registry, window_seconds=0.0) as service:
            with pytest.raises(UnknownGraphError):
                await service.estimate("missing", "1/2")

    asyncio.run(main())


def test_default_registry_and_register_passthrough():
    graph = zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")

    async def main():
        async with EstimationService(window_seconds=0.0) as service:
            service.register("g", graph=graph, config=CONFIG)
            value = await service.estimate("g", "1/2")
            assert value >= 0.0

    asyncio.run(main())


def test_async_update_swaps_session_off_loop():
    from repro.graph.delta import GraphDelta

    registry = _registry()
    session = registry.get("g")
    edge = next(iter(session.graph.edges()))
    delta = GraphDelta(removals=[tuple(edge)])

    async def main():
        async with EstimationService(registry, window_seconds=0.0) as service:
            row = await service.update("g", delta)
            assert row["built"] is True
            assert row["removals"] == 1
            # Estimates keep flowing against the swapped session.
            value = await service.estimate("g", "1/2")
            assert value >= 0.0
            return service.stats()

    stats = asyncio.run(main())
    assert stats["registry"]["updates"] == 1
