"""Fault-tolerance tests: retries, supervision, circuit breaker, drain."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import EngineConfig
from repro.exceptions import (
    CircuitOpenError,
    EngineError,
    GraphOverloadedError,
    SchedulerCrashError,
    ServiceRequestError,
)
from repro.graph.generators import zipf_labeled_graph
from repro.serving import (
    EstimateScheduler,
    ServiceClient,
    SessionRegistry,
    make_server,
)
from repro.testing import injector

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture(autouse=True)
def _clean_injector():
    injector.reset()
    yield
    injector.reset()


def _registry(**kwargs) -> SessionRegistry:
    registry = SessionRegistry(default_config=CONFIG, **kwargs)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    return registry


@pytest.fixture()
def server():
    server = make_server(_registry(), port=0, window_seconds=0.001)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def _url(server) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


class TestSchedulerSupervision:
    def test_crash_fails_futures_and_restarts_worker(self):
        with EstimateScheduler(_registry(), window_seconds=0.001) as scheduler:
            with injector.armed(
                "scheduler.worker", error=RuntimeError("chaos"), times=1
            ):
                future = scheduler.submit("g", "1/2")
                with pytest.raises(SchedulerCrashError, match="worker crashed"):
                    future.result(timeout=5)
            # No stranded futures, and the restarted worker keeps serving.
            assert scheduler.submit("g", "1/2").result(timeout=5) > 0
            snapshot = scheduler.stats.snapshot()
            assert snapshot["worker_restarts"] == 1
            assert snapshot["crashed_requests_total"] >= 1

    def test_repeated_crashes_never_strand_a_future(self):
        with EstimateScheduler(_registry(), window_seconds=0.001) as scheduler:
            with injector.armed(
                "scheduler.worker", error=lambda: RuntimeError("chaos"), times=3
            ):
                for _ in range(3):
                    future = scheduler.submit("g", "2")
                    with pytest.raises(SchedulerCrashError):
                        future.result(timeout=5)
            assert scheduler.submit("g", "2").result(timeout=5) > 0
            assert scheduler.stats.snapshot()["worker_restarts"] == 3

    def test_http_layer_maps_crash_to_retryable_503(self, server):
        injector.arm("scheduler.worker", error=RuntimeError("chaos"), times=1)
        client = ServiceClient(_url(server), timeout=10, backoff_seconds=0.01)
        # The first attempt dies with the worker; the retry succeeds.
        estimates = client.estimate("g", ["1/2"])
        assert estimates[0] > 0
        assert client.stats()["scheduler"]["worker_restarts"] == 1


class TestPerGraphAdmission:
    def test_hot_graph_gets_429_while_budget_is_spent(self):
        scheduler = EstimateScheduler(
            _registry(), window_seconds=0.001, max_pending_per_graph=1
        )
        try:
            scheduler.registry.get("g")  # pre-build: the delay is the only stall
            with injector.armed("scheduler.worker", delay=0.4, times=1):
                first = scheduler.submit("g", "1/2")
                _wait_for(lambda: injector.fired("scheduler.worker") == 1)
                with pytest.raises(GraphOverloadedError) as excinfo:
                    scheduler.submit("g", "2")
                assert excinfo.value.graph == "g"
                assert excinfo.value.budget == 1
                assert first.result(timeout=5) > 0
            # Budget released with the batch: submissions flow again.
            assert scheduler.submit("g", "2").result(timeout=5) > 0
            assert scheduler.stats.snapshot()["rejected_graph_total"] == 1
        finally:
            scheduler.close()

    def test_http_maps_graph_admission_to_429(self):
        server = make_server(
            _registry(), port=0, window_seconds=0.001, max_pending_per_graph=1
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            ServiceClient(_url(server)).warm("g")
            with injector.armed("scheduler.worker", delay=0.4, times=1):
                blocked = ServiceClient(_url(server), max_retries=0)
                background = threading.Thread(
                    target=lambda: blocked.estimate("g", ["1/2"]), daemon=True
                )
                background.start()
                _wait_for(lambda: injector.fired("scheduler.worker") == 1)
                request = urllib.request.Request(
                    f"{_url(server)}/v1/estimate",
                    data=json.dumps({"graph": "g", "paths": ["2"]}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=5)
                assert excinfo.value.code == 429
                assert float(excinfo.value.headers["Retry-After"]) >= 0
                background.join(timeout=10)
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


class TestCircuitBreaker:
    def _failing_registry(self, **kwargs) -> SessionRegistry:
        registry = _registry(**kwargs)
        injector.arm(
            "registry.build",
            error=lambda: EngineError("build exploded"),
            times=-1,
            match=lambda ctx: ctx.get("graph") == "g",
        )
        return registry

    def test_threshold_failures_trip_the_circuit(self):
        registry = self._failing_registry(
            breaker_threshold=2, breaker_reset_seconds=60.0
        )
        for _ in range(2):
            with pytest.raises(EngineError, match="build exploded"):
                registry.get("g")
        with pytest.raises(CircuitOpenError) as excinfo:
            registry.get("g")
        assert excinfo.value.retry_after > 0
        assert registry.stats.circuits_opened == 1
        assert registry.stats.circuit_fast_failures >= 1
        assert registry.stats.build_failures == 2
        row = next(r for r in registry.describe() if r["name"] == "g")
        assert row["circuit"] == "open"
        assert row["retry_after_seconds"] > 0

    def test_open_circuit_fast_fails_without_building(self):
        registry = self._failing_registry(
            breaker_threshold=1, breaker_reset_seconds=60.0
        )
        injector.reset()
        injector.arm(
            "registry.build",
            error=lambda: EngineError("build exploded"),
            delay=0.2,
            times=-1,
        )
        with pytest.raises(EngineError):
            registry.get("g")  # slow doomed build trips the breaker
        started = time.perf_counter()
        with pytest.raises(CircuitOpenError):
            registry.get("g")
        assert time.perf_counter() - started < 0.05

    def test_half_open_probe_success_closes_the_circuit(self):
        registry = self._failing_registry(
            breaker_threshold=1, breaker_reset_seconds=0.15
        )
        with pytest.raises(EngineError):
            registry.get("g")
        with pytest.raises(CircuitOpenError):
            registry.get("g")
        time.sleep(0.2)
        injector.reset()  # the graph is healthy again: the probe succeeds
        session = registry.get("g")
        assert session.estimate("1/2") >= 0
        row = next(r for r in registry.describe() if r["name"] == "g")
        assert row["circuit"] == "closed"
        assert row["consecutive_build_failures"] == 0

    def test_failed_probe_reopens_immediately(self):
        registry = self._failing_registry(
            breaker_threshold=5, breaker_reset_seconds=0.15
        )
        for _ in range(5):
            with pytest.raises(EngineError):
                registry.get("g")
        with pytest.raises(CircuitOpenError):
            registry.get("g")
        time.sleep(0.2)
        with pytest.raises(EngineError):
            registry.get("g")  # the half-open probe fails...
        with pytest.raises(CircuitOpenError):
            registry.get("g")  # ...and one failure re-opened the circuit
        assert registry.stats.circuits_opened == 2

    def test_breaker_disabled_never_trips(self):
        registry = self._failing_registry(breaker_threshold=0)
        for _ in range(5):
            with pytest.raises(EngineError, match="build exploded"):
                registry.get("g")
        assert registry.stats.circuits_opened == 0

    def test_http_maps_open_circuit_to_503_with_hint(self):
        registry = self._failing_registry(
            breaker_threshold=1, breaker_reset_seconds=60.0
        )
        server = make_server(registry, port=0, window_seconds=0.001)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(_url(server), max_retries=0)
            with pytest.raises(ServiceRequestError, match="HTTP 400"):
                client.warm("g")  # trips the breaker (EngineError -> 400)
            with pytest.raises(ServiceRequestError, match="circuit open") as excinfo:
                client.warm("g")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after > 0
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


class TestClientRetries:
    def test_retry_recovers_across_backpressure(self, server):
        injector.arm("scheduler.worker", delay=0.2, times=1)
        quick = ServiceClient(_url(server), max_retries=0)
        quick.warm("g")
        patient = ServiceClient(
            _url(server), max_retries=5, backoff_seconds=0.05, timeout=10
        )
        threads = [
            threading.Thread(
                target=lambda: patient.estimate("g", ["1/2"]), daemon=True
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert not any(thread.is_alive() for thread in threads)

    def test_deadline_caps_the_retry_loop(self, server):
        server.scheduler.close()  # every estimate now answers 503
        client = ServiceClient(
            _url(server),
            max_retries=50,
            backoff_seconds=0.2,
            backoff_max_seconds=0.2,
        )
        started = time.monotonic()
        with pytest.raises(ServiceRequestError, match="503"):
            client.estimate("g", ["1/2"], deadline_seconds=0.6)
        assert time.monotonic() - started < 2.0

    def test_non_retryable_status_fails_fast(self, server):
        client = ServiceClient(_url(server), backoff_seconds=0.01)
        with pytest.raises(ServiceRequestError, match="HTTP 404") as excinfo:
            client.estimate("nope", ["1/2"])
        assert excinfo.value.status == 404
        assert excinfo.value.attempts == 1

    def test_connection_errors_consume_the_retry_budget(self):
        client = ServiceClient(
            "http://127.0.0.1:9", max_retries=2, backoff_seconds=0.001, timeout=0.2
        )
        with pytest.raises(ServiceRequestError, match="cannot reach") as excinfo:
            client.healthz()
        assert excinfo.value.attempts == 3

    def test_retry_after_header_on_backpressure_503(self, server):
        server.scheduler.close()
        request = urllib.request.Request(
            f"{_url(server)}/v1/estimate",
            data=json.dumps({"graph": "g", "paths": ["1"]}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 503
        assert float(excinfo.value.headers["Retry-After"]) >= 0
        assert "retry_after" in json.loads(excinfo.value.read().decode())


class TestRequestBodyCap:
    def test_oversized_body_is_413(self):
        server = make_server(_registry(), port=0, max_body_bytes=1024)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(_url(server))
            huge = ["1/2"] * 2000
            with pytest.raises(ServiceRequestError, match="HTTP 413") as excinfo:
                client.estimate("g", huge)
            assert excinfo.value.status == 413
            assert excinfo.value.attempts == 1  # not retryable
            assert client.estimate("g", ["1/2"])[0] > 0  # small bodies still fine
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


class TestGracefulClose:
    def test_close_alone_stops_a_running_server(self):
        server = make_server(_registry(), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        ServiceClient(_url(server)).healthz()
        server.close()  # no explicit shutdown(): close must do it itself
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_close_without_serve_forever_does_not_hang(self):
        server = make_server(_registry(), port=0)
        done = threading.Event()

        def _close() -> None:
            server.close()
            done.set()

        thread = threading.Thread(target=_close, daemon=True)
        thread.start()
        assert done.wait(timeout=5), "close() hung without a serve loop"
