"""Tests for the micro-batching scheduler (coalescing + backpressure)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.exceptions import (
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownGraphError,
)
from repro.graph.generators import zipf_labeled_graph
from repro.paths.enumeration import enumerate_label_paths
from repro.serving import EstimateScheduler, SessionRegistry

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture()
def registry():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    return registry


class TestCoalescing:
    def test_results_equal_direct_estimate_batch(self, registry):
        session = registry.get("g")
        domain = [str(path) for path in enumerate_label_paths(session.catalog.labels, 2)]
        with EstimateScheduler(registry, window_seconds=0.05) as scheduler:
            futures = [scheduler.submit("g", path) for path in domain]
            got = [future.result(timeout=10) for future in futures]
        expected = session.estimate_batch(domain)
        assert np.allclose(got, expected)
        snapshot = scheduler.stats.snapshot()
        assert snapshot["batch_requests_total"] == len(domain)
        # A generous window coalesces the burst into far fewer batches than
        # requests — that is the whole point of the scheduler.
        assert snapshot["batches_total"] < len(domain) / 2
        assert snapshot["mean_coalesced_requests"] > 2

    def test_submit_many_is_one_request(self, registry):
        session = registry.get("g")
        paths = ["1/2", "2", "3/3", "1"]
        with EstimateScheduler(registry, window_seconds=0.0) as scheduler:
            result = scheduler.submit_many("g", paths).result(timeout=10)
        assert result == [float(v) for v in session.estimate_batch(paths)]
        assert scheduler.stats.snapshot()["requests_total"] == 1

    def test_mixed_graphs_in_one_window_group_by_session(self, registry):
        registry.register(
            "h", graph=zipf_labeled_graph(25, 80, 3, skew=0.5, seed=11, name="h")
        )
        expected_g = registry.get("g").estimate_batch(["1/2", "2"])
        expected_h = registry.get("h").estimate_batch(["1/2", "2"])
        with EstimateScheduler(registry, window_seconds=0.05) as scheduler:
            futures = [
                scheduler.submit("g", "1/2"),
                scheduler.submit("h", "1/2"),
                scheduler.submit("g", "2"),
                scheduler.submit("h", "2"),
            ]
            got = [future.result(timeout=10) for future in futures]
        assert got[0] == pytest.approx(expected_g[0])
        assert got[2] == pytest.approx(expected_g[1])
        assert got[1] == pytest.approx(expected_h[0])
        assert got[3] == pytest.approx(expected_h[1])

    def test_max_batch_paths_splits_bursts(self, registry):
        registry.get("g")
        with EstimateScheduler(
            registry, window_seconds=0.05, max_batch_paths=4
        ) as scheduler:
            futures = [scheduler.submit("g", "1/2") for _ in range(16)]
            for future in futures:
                future.result(timeout=10)
        snapshot = scheduler.stats.snapshot()
        assert snapshot["batches_total"] >= 4
        assert snapshot["batch_paths_max"] <= 4


class TestErrorIsolation:
    def test_unknown_graph_fails_only_its_requests(self, registry):
        expected = registry.get("g").estimate("1/2")
        with EstimateScheduler(registry, window_seconds=0.05) as scheduler:
            good = scheduler.submit("g", "1/2")
            bad = scheduler.submit("missing", "1/2")
            assert good.result(timeout=10) == pytest.approx(expected)
            with pytest.raises(UnknownGraphError):
                bad.result(timeout=10)

    def test_invalid_path_fails_only_its_request(self, registry):
        expected = registry.get("g").estimate("1/2")
        with EstimateScheduler(registry, window_seconds=0.05) as scheduler:
            good = scheduler.submit("g", "1/2")
            bad = scheduler.submit("g", "99/77")
            assert good.result(timeout=10) == pytest.approx(expected)
            with pytest.raises(KeyError):
                bad.result(timeout=10)
        assert scheduler.stats.snapshot()["errors_total"] == 1


class TestBackpressure:
    def test_full_queue_raises_service_overloaded(self):
        release = threading.Event()
        started = threading.Event()
        graph = zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="slow")

        def slow_loader():
            started.set()
            release.wait(timeout=30)
            return graph

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("slow", loader=slow_loader)
        scheduler = EstimateScheduler(
            registry, window_seconds=0.0, max_pending=4
        )
        try:
            # The worker dequeues this request and blocks inside the build...
            blocked = scheduler.submit("slow", "1/2")
            assert started.wait(timeout=10)
            # ...so these fill the bounded queue...
            queued = [scheduler.submit("slow", "1/2") for _ in range(4)]
            # ...and the next submission is rejected, not buffered.
            with pytest.raises(ServiceOverloadedError):
                scheduler.submit("slow", "1/2")
            assert scheduler.stats.snapshot()["rejected_total"] == 1
            release.set()
            for future in [blocked, *queued]:
                assert future.result(timeout=30) >= 0.0
        finally:
            release.set()
            scheduler.close()

    def test_submit_after_close_raises(self, registry):
        scheduler = EstimateScheduler(registry, window_seconds=0.0)
        scheduler.close()
        with pytest.raises(ServiceClosedError):
            scheduler.submit("g", "1/2")

    def test_close_drains_queued_work(self, registry):
        registry.get("g")
        scheduler = EstimateScheduler(registry, window_seconds=0.2)
        futures = [scheduler.submit("g", "1/2") for _ in range(8)]
        scheduler.close(timeout=30)
        for future in futures:
            assert future.result(timeout=0.1) >= 0.0


class TestStats:
    def test_latency_counters_populate(self, registry):
        registry.get("g")
        with EstimateScheduler(registry, window_seconds=0.01) as scheduler:
            futures = [scheduler.submit("g", "1/2") for _ in range(8)]
            for future in futures:
                future.result(timeout=10)
            time.sleep(0.01)
        snapshot = scheduler.stats.snapshot()
        assert snapshot["paths_total"] == 8
        assert snapshot["batch_seconds_total"] > 0
        assert snapshot["wait_seconds_max"] >= 0
        assert snapshot["paths_per_second"] > 0
        assert snapshot["uptime_seconds"] > 0


class TestCloseRace:
    def test_requests_stranded_behind_the_sentinel_are_failed(self):
        release = threading.Event()
        graph = zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="slow")

        def slow_loader():
            release.wait(timeout=30)
            return graph

        registry = SessionRegistry(default_config=CONFIG)
        registry.register("slow", loader=slow_loader)
        scheduler = EstimateScheduler(registry, window_seconds=0.0)
        # The worker dequeues the first request and blocks in the build;
        # the next two sit in the queue when close() gives up joining.
        in_flight = scheduler.submit("slow", "1/2")
        time.sleep(0.05)
        stranded = [scheduler.submit("slow", "1/2") for _ in range(2)]
        scheduler.close(timeout=0.2)
        for future in stranded:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=5)
        # The in-flight request still completes once the build unblocks.
        release.set()
        assert in_flight.result(timeout=30) >= 0.0
