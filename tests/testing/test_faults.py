"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import time

import pytest

from repro.testing import (
    FaultInjector,
    bitflip_bytes,
    corrupt_file,
    truncate_bytes,
)


class TestArmAndFire:
    def test_unarmed_fire_is_a_noop(self):
        injector = FaultInjector()
        injector.fire("anything", graph="g")
        assert not injector.active
        assert injector.fired("anything") == 0

    def test_armed_error_raises_and_counts(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("boom"), times=1)
        with pytest.raises(RuntimeError, match="boom"):
            injector.fire("p")
        assert injector.fired("p") == 1
        injector.fire("p")  # budget of 1 is spent: no longer raises
        assert injector.fired("p") == 1

    def test_unlimited_times_keeps_raising(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("boom"), times=-1)
        for _ in range(5):
            with pytest.raises(RuntimeError):
                injector.fire("p")
        assert injector.fired("p") == 5

    def test_error_factory_builds_fresh_instances(self):
        injector = FaultInjector()
        injector.arm("p", error=lambda: ValueError("fresh"), times=2)
        with pytest.raises(ValueError) as first:
            injector.fire("p")
        with pytest.raises(ValueError) as second:
            injector.fire("p")
        assert first.value is not second.value

    def test_match_filters_by_context(self):
        injector = FaultInjector()
        injector.arm(
            "p",
            error=RuntimeError("only-g"),
            times=-1,
            match=lambda ctx: ctx.get("graph") == "g",
        )
        injector.fire("p", graph="other")  # no match, no raise
        with pytest.raises(RuntimeError):
            injector.fire("p", graph="g")
        assert injector.fired("p") == 1

    def test_delay_only_fault_sleeps_without_raising(self):
        injector = FaultInjector()
        injector.arm("p", delay=0.05, times=1)
        started = time.perf_counter()
        injector.fire("p")
        assert time.perf_counter() - started >= 0.04

    def test_invalid_specs_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("p", times=0)
        with pytest.raises(ValueError):
            injector.arm("p", times=-2)
        with pytest.raises(ValueError):
            injector.arm("p", delay=-1.0)


class TestLifecycle:
    def test_disarm_removes_the_spec(self):
        injector = FaultInjector()
        spec = injector.arm("p", error=RuntimeError("x"), times=-1)
        injector.disarm(spec)
        injector.fire("p")
        assert not injector.active
        injector.disarm(spec)  # idempotent

    def test_reset_clears_specs_and_counters(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("x"))
        with pytest.raises(RuntimeError):
            injector.fire("p")
        injector.reset()
        assert not injector.active
        assert injector.fired("p") == 0

    def test_armed_context_manager_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.armed("p", error=RuntimeError("x"), times=-1):
            with pytest.raises(RuntimeError):
                injector.fire("p")
        injector.fire("p")  # disarmed now

    def test_two_specs_first_match_wins(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("first"), times=1)
        injector.arm("p", error=ValueError("second"), times=1)
        with pytest.raises(RuntimeError):
            injector.fire("p")
        with pytest.raises(ValueError):
            injector.fire("p")


class TestCorruptFile:
    def test_truncate_halves_the_file(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(bytes(range(100)))
        corrupt_file(target, mode="truncate")
        assert target.read_bytes() == bytes(range(50))

    def test_bitflip_is_deterministic_and_changes_one_byte(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        payload = bytes(range(200))
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a, mode="bitflip", seed=3)
        corrupt_file(b, mode="bitflip", seed=3)
        assert a.read_bytes() == b.read_bytes()
        diff = [i for i, (x, y) in enumerate(zip(a.read_bytes(), payload)) if x != y]
        assert len(diff) == 1
        assert diff[0] >= 16  # magic bytes left intact

    def test_empty_file_and_bad_mode_rejected(self, tmp_path):
        target = tmp_path / "empty.bin"
        target.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(target)
        target.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(target, mode="nonsense")


class TestPayloadFaults:
    def test_mutate_is_exclusive_with_error(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="either an error or a payload"):
            injector.arm(
                "p", error=RuntimeError("boom"), mutate=lambda data: data
            )

    def test_unarmed_mutate_passes_bytes_through(self):
        injector = FaultInjector()
        assert injector.mutate_payload("p", b"payload") == b"payload"
        assert injector.fired("p") == 0

    def test_armed_mutate_damages_within_budget(self):
        injector = FaultInjector()
        injector.arm("p", mutate=lambda data: data[:1], times=1)
        assert injector.mutate_payload("p", b"payload") == b"p"
        assert injector.mutate_payload("p", b"payload") == b"payload"
        assert injector.fired("p") == 1

    def test_mutate_and_error_specs_consume_independently(self):
        # fire() must never consume a payload spec, and mutate_payload()
        # must never consume an error spec: a point can carry both.
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("boom"), times=1)
        injector.arm("p", mutate=lambda data: b"damaged", times=1)
        assert injector.mutate_payload("p", b"payload") == b"damaged"
        with pytest.raises(RuntimeError, match="boom"):
            injector.fire("p")
        # Both budgets are now spent.
        injector.fire("p")
        assert injector.mutate_payload("p", b"payload") == b"payload"

    def test_mutate_respects_match_predicate(self):
        injector = FaultInjector()
        injector.arm(
            "p",
            mutate=lambda data: b"damaged",
            times=-1,
            match=lambda ctx: ctx.get("name") == "catalog-x.npz",
        )
        assert injector.mutate_payload("p", b"ok", name="positions-x.npy") == b"ok"
        assert (
            injector.mutate_payload("p", b"ok", name="catalog-x.npz")
            == b"damaged"
        )


class TestPayloadHelpers:
    def test_truncate_keeps_a_prefix(self):
        data = bytes(range(100))
        cut = truncate_bytes(data)
        assert cut == data[:50]
        assert truncate_bytes(b"x", keep=0.0) == b"x"  # at least one byte
        with pytest.raises(ValueError):
            truncate_bytes(b"")

    def test_bitflip_is_deterministic_single_byte(self):
        data = bytes(100)
        flipped = bitflip_bytes(data, seed=3)
        assert flipped == bitflip_bytes(data, seed=3)
        assert len(flipped) == len(data)
        diffs = [i for i, (a, b) in enumerate(zip(data, flipped)) if a != b]
        assert len(diffs) == 1
        assert diffs[0] >= 16  # lands past any leading format magic
        assert bitflip_bytes(data, seed=4) != flipped
        with pytest.raises(ValueError):
            bitflip_bytes(b"")
