"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import time

import pytest

from repro.testing import FaultInjector, corrupt_file


class TestArmAndFire:
    def test_unarmed_fire_is_a_noop(self):
        injector = FaultInjector()
        injector.fire("anything", graph="g")
        assert not injector.active
        assert injector.fired("anything") == 0

    def test_armed_error_raises_and_counts(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("boom"), times=1)
        with pytest.raises(RuntimeError, match="boom"):
            injector.fire("p")
        assert injector.fired("p") == 1
        injector.fire("p")  # budget of 1 is spent: no longer raises
        assert injector.fired("p") == 1

    def test_unlimited_times_keeps_raising(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("boom"), times=-1)
        for _ in range(5):
            with pytest.raises(RuntimeError):
                injector.fire("p")
        assert injector.fired("p") == 5

    def test_error_factory_builds_fresh_instances(self):
        injector = FaultInjector()
        injector.arm("p", error=lambda: ValueError("fresh"), times=2)
        with pytest.raises(ValueError) as first:
            injector.fire("p")
        with pytest.raises(ValueError) as second:
            injector.fire("p")
        assert first.value is not second.value

    def test_match_filters_by_context(self):
        injector = FaultInjector()
        injector.arm(
            "p",
            error=RuntimeError("only-g"),
            times=-1,
            match=lambda ctx: ctx.get("graph") == "g",
        )
        injector.fire("p", graph="other")  # no match, no raise
        with pytest.raises(RuntimeError):
            injector.fire("p", graph="g")
        assert injector.fired("p") == 1

    def test_delay_only_fault_sleeps_without_raising(self):
        injector = FaultInjector()
        injector.arm("p", delay=0.05, times=1)
        started = time.perf_counter()
        injector.fire("p")
        assert time.perf_counter() - started >= 0.04

    def test_invalid_specs_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("p", times=0)
        with pytest.raises(ValueError):
            injector.arm("p", times=-2)
        with pytest.raises(ValueError):
            injector.arm("p", delay=-1.0)


class TestLifecycle:
    def test_disarm_removes_the_spec(self):
        injector = FaultInjector()
        spec = injector.arm("p", error=RuntimeError("x"), times=-1)
        injector.disarm(spec)
        injector.fire("p")
        assert not injector.active
        injector.disarm(spec)  # idempotent

    def test_reset_clears_specs_and_counters(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("x"))
        with pytest.raises(RuntimeError):
            injector.fire("p")
        injector.reset()
        assert not injector.active
        assert injector.fired("p") == 0

    def test_armed_context_manager_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.armed("p", error=RuntimeError("x"), times=-1):
            with pytest.raises(RuntimeError):
                injector.fire("p")
        injector.fire("p")  # disarmed now

    def test_two_specs_first_match_wins(self):
        injector = FaultInjector()
        injector.arm("p", error=RuntimeError("first"), times=1)
        injector.arm("p", error=ValueError("second"), times=1)
        with pytest.raises(RuntimeError):
            injector.fire("p")
        with pytest.raises(ValueError):
            injector.fire("p")


class TestCorruptFile:
    def test_truncate_halves_the_file(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(bytes(range(100)))
        corrupt_file(target, mode="truncate")
        assert target.read_bytes() == bytes(range(50))

    def test_bitflip_is_deterministic_and_changes_one_byte(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "b.bin"
        payload = bytes(range(200))
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_file(a, mode="bitflip", seed=3)
        corrupt_file(b, mode="bitflip", seed=3)
        assert a.read_bytes() == b.read_bytes()
        diff = [i for i, (x, y) in enumerate(zip(a.read_bytes(), payload)) if x != y]
        assert len(diff) == 1
        assert diff[0] >= 16  # magic bytes left intact

    def test_empty_file_and_bad_mode_rejected(self, tmp_path):
        target = tmp_path / "empty.bin"
        target.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(target)
        target.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(target, mode="nonsense")
