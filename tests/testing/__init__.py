"""Tests for the shipped testing utilities (fault injection)."""
