"""Tests for the synopsis-free baseline estimators (independence, Markov, sampling)."""

from __future__ import annotations

import pytest

from repro.estimation.baselines import IndependenceEstimator, MarkovEstimator
from repro.estimation.errors import mean_error_rate
from repro.estimation.sampling import SamplingEstimator
from repro.estimation.workload import full_domain_workload
from repro.exceptions import EstimationError
from repro.paths.catalog import SelectivityCatalog


class TestIndependenceEstimator:
    def test_length_one_is_exact(self, small_graph, small_catalog):
        estimator = IndependenceEstimator.from_catalog(
            small_catalog, small_graph.vertex_count
        )
        for label in small_catalog.labels:
            assert estimator.estimate(label) == small_catalog.label_selectivity(label)

    def test_formula(self):
        estimator = IndependenceEstimator({"a": 10, "b": 20}, vertex_count=100)
        assert estimator.estimate("a/b") == pytest.approx(10 * 20 / 100)
        assert estimator.estimate("a/b/a") == pytest.approx(10 * (20 / 100) * (10 / 100))

    def test_unknown_label_gives_zero(self):
        estimator = IndependenceEstimator({"a": 10}, vertex_count=50)
        assert estimator.estimate("q") == 0.0
        assert estimator.estimate("a/q") == 0.0

    def test_storage(self):
        estimator = IndependenceEstimator({"a": 1, "b": 2, "c": 3}, vertex_count=10)
        assert estimator.storage_entries() == 4

    def test_validation(self):
        with pytest.raises(EstimationError):
            IndependenceEstimator({"a": 1}, vertex_count=0)
        with pytest.raises(EstimationError):
            IndependenceEstimator({}, vertex_count=10)


class TestMarkovEstimator:
    def test_lengths_one_and_two_are_exact(self, small_catalog):
        estimator = MarkovEstimator(small_catalog)
        labels = small_catalog.labels
        for first in labels:
            assert estimator.estimate(first) == small_catalog.selectivity(first)
            for second in labels:
                assert estimator.estimate(f"{first}/{second}") == small_catalog.selectivity(
                    f"{first}/{second}"
                )

    def test_chained_estimate_is_nonnegative_and_zero_propagates(self, small_catalog):
        estimator = MarkovEstimator(small_catalog)
        for path in full_domain_workload(small_catalog):
            assert estimator.estimate(path) >= 0.0

    def test_requires_length_two_statistics(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 1)
        with pytest.raises(EstimationError):
            MarkovEstimator(catalog)

    def test_storage(self, small_catalog):
        estimator = MarkovEstimator(small_catalog)
        label_count = len(small_catalog.labels)
        assert estimator.storage_entries() == label_count + label_count**2

    def test_markov_beats_independence_on_longer_paths(self, small_graph, small_catalog):
        """Using pair statistics should not be worse than pure independence."""
        workload = [p for p in full_domain_workload(small_catalog) if p.length == 3]
        markov = MarkovEstimator(small_catalog)
        independence = IndependenceEstimator.from_catalog(
            small_catalog, small_graph.vertex_count
        )
        markov_error = mean_error_rate(
            [(markov.estimate(p), float(small_catalog.selectivity(p))) for p in workload]
        )
        independence_error = mean_error_rate(
            [
                (independence.estimate(p), float(small_catalog.selectivity(p)))
                for p in workload
            ]
        )
        assert markov_error <= independence_error + 0.05


class TestSamplingEstimator:
    def test_length_one_is_exact(self, small_graph, small_catalog):
        estimator = SamplingEstimator(small_graph, sample_size=10, seed=2)
        for label in small_catalog.labels:
            assert estimator.estimate(label) == small_catalog.label_selectivity(label)

    def test_unknown_label_is_zero(self, small_graph):
        estimator = SamplingEstimator(small_graph, sample_size=10)
        assert estimator.estimate("zzz") == 0.0
        assert estimator.estimate("zzz/zzz") == 0.0

    def test_deterministic_per_seed(self, small_graph):
        labels = small_graph.labels()
        path = f"{labels[0]}/{labels[1]}"
        first = SamplingEstimator(small_graph, sample_size=30, seed=5).estimate(path)
        second = SamplingEstimator(small_graph, sample_size=30, seed=5).estimate(path)
        assert first == second

    def test_estimates_bounded_by_start_edges(self, small_graph, small_catalog):
        estimator = SamplingEstimator(small_graph, sample_size=50, seed=3)
        for path in full_domain_workload(small_catalog):
            estimate = estimator.estimate(path)
            assert 0.0 <= estimate <= small_catalog.label_selectivity(path.first)

    def test_zero_truth_paths_estimated_low(self, small_graph, small_catalog):
        estimator = SamplingEstimator(small_graph, sample_size=50, seed=3)
        zero_paths = [
            path
            for path in full_domain_workload(small_catalog)
            if small_catalog.selectivity(path) == 0 and path.length >= 2
        ]
        if zero_paths:
            # Walks can only fail to complete on truly empty paths whose prefix
            # exists; a handful may overestimate, but most must return 0.
            zeros = sum(1 for path in zero_paths if estimator.estimate(path) == 0.0)
            assert zeros >= len(zero_paths) * 0.5

    def test_validation_and_storage(self, small_graph):
        with pytest.raises(EstimationError):
            SamplingEstimator(small_graph, sample_size=0)
        assert SamplingEstimator(small_graph).storage_entries() == 0
