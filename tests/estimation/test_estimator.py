"""Tests for the path-selectivity estimator and the exact oracle."""

from __future__ import annotations

import pytest

from repro.estimation.estimator import (
    EstimatorReport,
    ExactOracle,
    PathSelectivityEstimator,
)
from repro.estimation.workload import full_domain_workload
from repro.exceptions import EstimationError
from repro.ordering.registry import make_ordering


class TestExactOracle:
    def test_returns_truth(self, small_catalog):
        oracle = ExactOracle(small_catalog)
        for path in list(small_catalog.paths())[:20]:
            assert oracle.estimate(path) == small_catalog.selectivity(path)

    def test_storage_is_whole_domain(self, small_catalog):
        assert ExactOracle(small_catalog).storage_entries() == len(small_catalog)


class TestBuild:
    def test_build_with_named_ordering(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="sum-based", bucket_count=8
        )
        assert estimator.method_name == "sum-based"
        assert estimator.bucket_count == 8
        assert estimator.storage_entries() == 16

    def test_build_with_ordering_instance(self, small_catalog):
        ordering = make_ordering("lex-card", catalog=small_catalog)
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering=ordering, bucket_count=4
        )
        assert estimator.ordering is ordering

    def test_build_with_other_histogram_kind(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog,
            ordering="num-alph",
            histogram_kind="equi-width",
            bucket_count=6,
        )
        assert estimator.histogram.histogram.kind == "equi-width"

    def test_estimates_are_non_negative(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="sum-based", bucket_count=8
        )
        for path in full_domain_workload(small_catalog):
            assert estimator.estimate(path) >= 0.0

    def test_single_bucket_estimates_global_average(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=1
        )
        expected = small_catalog.total_selectivity() / small_catalog.domain_size
        values = {estimator.estimate(p) for p in full_domain_workload(small_catalog)}
        # Every path maps to the same single bucket, whose average is the
        # global average frequency.
        assert len(values) == 1
        assert values.pop() == pytest.approx(expected)

    def test_max_buckets_reproduces_truth(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog,
            ordering="num-card",
            bucket_count=small_catalog.domain_size,
        )
        for path in full_domain_workload(small_catalog):
            assert estimator.estimate(path) == pytest.approx(
                small_catalog.selectivity(path)
            )

    def test_estimate_many(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=4
        )
        workload = full_domain_workload(small_catalog)[:10]
        batch = estimator.estimate_many(workload)
        assert batch == [estimator.estimate(p) for p in workload]


class TestEvaluate:
    def test_report_fields(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="sum-based", bucket_count=8
        )
        workload = full_domain_workload(small_catalog)
        report = estimator.evaluate(small_catalog, workload, repetitions=2)
        assert isinstance(report, EstimatorReport)
        assert report.method_name == "sum-based"
        assert report.bucket_count == 8
        assert 0.0 <= report.mean_error_rate < 1.0
        assert report.mean_estimation_seconds > 0.0
        assert report.mean_estimation_millis == pytest.approx(
            report.mean_estimation_seconds * 1000.0
        )
        assert report.errors.query_count == len(workload)

    def test_as_row(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=4
        )
        row = estimator.evaluate(small_catalog, full_domain_workload(small_catalog)).as_row()
        assert row["method"] == "num-alph"
        assert row["buckets"] == 4
        assert "mean_error_rate" in row and "mean_estimation_ms" in row

    def test_perfect_estimator_has_zero_error(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog,
            ordering="num-alph",
            bucket_count=small_catalog.domain_size,
        )
        report = estimator.evaluate(small_catalog, full_domain_workload(small_catalog))
        assert report.mean_error_rate == pytest.approx(0.0)

    def test_validation(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=4
        )
        with pytest.raises(EstimationError):
            estimator.evaluate(small_catalog, [])
        with pytest.raises(EstimationError):
            estimator.evaluate(small_catalog, ["1"], repetitions=0)
