"""Tests for the experiment sweep runner."""

from __future__ import annotations

import pytest

from repro.estimation.evaluation import SweepResult, run_sweep
from repro.exceptions import EstimationError
from repro.ordering.registry import PAPER_ORDERINGS


class TestRunSweep:
    def test_grid_is_complete(self, small_catalog):
        results = run_sweep(small_catalog, bucket_counts=[4, 16])
        assert len(results) == len(PAPER_ORDERINGS) * 2
        methods = {result.method for result in results}
        assert methods == set(PAPER_ORDERINGS)

    def test_include_ideal(self, small_catalog):
        results = run_sweep(
            small_catalog, bucket_counts=[8], include_ideal=True
        )
        assert {result.method for result in results} == set(PAPER_ORDERINGS) | {"ideal"}

    def test_records_have_expected_fields(self, small_catalog):
        result = run_sweep(small_catalog, bucket_counts=[8])[0]
        assert isinstance(result, SweepResult)
        row = result.as_row()
        for key in ("dataset", "method", "histogram", "k", "buckets",
                    "mean_error_rate", "mean_estimation_ms", "total_sse"):
            assert key in row

    def test_bucket_count_clamped_to_domain(self, small_catalog):
        oversized = small_catalog.domain_size * 10
        results = run_sweep(
            small_catalog, methods=["num-alph"], bucket_counts=[oversized]
        )
        assert results[0].mean_error_rate == pytest.approx(0.0)

    def test_errors_decrease_with_more_buckets(self, small_catalog):
        results = run_sweep(
            small_catalog,
            methods=["sum-based"],
            bucket_counts=[2, small_catalog.domain_size // 2],
        )
        by_beta = {result.bucket_count: result.mean_error_rate for result in results}
        few, many = sorted(by_beta)
        assert by_beta[many] <= by_beta[few] + 1e-9

    def test_dataset_name_defaults_to_catalog_graph(self, small_catalog):
        results = run_sweep(small_catalog, methods=["num-alph"], bucket_counts=[4])
        assert results[0].dataset == small_catalog.graph_name

    def test_custom_workload_and_histogram(self, small_catalog):
        workload = ["1", "2", "1/2"]
        workload = [p for p in workload if all(l in small_catalog.labels for l in p.split("/"))]
        if not workload:
            workload = [str(next(iter(small_catalog.paths())))]
        results = run_sweep(
            small_catalog,
            methods=["num-alph"],
            bucket_counts=[4],
            histogram_kind="equi-width",
            workload=workload,
            repetitions=2,
        )
        assert results[0].histogram_kind == "equi-width"

    def test_empty_bucket_counts_rejected(self, small_catalog):
        with pytest.raises(EstimationError):
            run_sweep(small_catalog, bucket_counts=[])

    def test_vopt_strategy_override(self, small_catalog):
        results = run_sweep(
            small_catalog,
            methods=["num-alph"],
            bucket_counts=[8],
            vopt_strategy="greedy",
        )
        assert results[0].mean_error_rate >= 0.0
