"""Tests for the error metrics (Equation 6, q-error, summaries)."""

from __future__ import annotations

import math

import pytest

from repro.estimation.errors import (
    absolute_error,
    error_rate,
    mean_error_rate,
    q_error,
    summarize_errors,
)
from repro.exceptions import EstimationError


class TestErrorRate:
    def test_exact_estimate_is_zero(self):
        assert error_rate(10.0, 10.0) == 0.0
        assert error_rate(0.0, 0.0) == 0.0

    def test_overestimate_is_positive(self):
        assert error_rate(20.0, 10.0) == pytest.approx(0.5)

    def test_underestimate_is_negative(self):
        assert error_rate(10.0, 20.0) == pytest.approx(-0.5)

    def test_bounded_in_open_unit_interval(self):
        assert -1.0 < error_rate(1.0, 1e9) < 1.0
        assert -1.0 < error_rate(1e9, 1.0) < 1.0

    def test_zero_truth_nonzero_estimate(self):
        assert error_rate(5.0, 0.0) == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(EstimationError):
            error_rate(-1.0, 2.0)
        with pytest.raises(EstimationError):
            error_rate(1.0, -2.0)


class TestQError:
    def test_perfect(self):
        assert q_error(7.0, 7.0) == 1.0
        assert q_error(0.0, 0.0) == 1.0

    def test_symmetric(self):
        assert q_error(10.0, 2.0) == q_error(2.0, 10.0) == 5.0

    def test_zero_vs_nonzero_is_infinite(self):
        assert math.isinf(q_error(0.0, 3.0))

    def test_negative_rejected(self):
        with pytest.raises(EstimationError):
            q_error(-1.0, 1.0)


class TestAbsoluteError:
    def test_value(self):
        assert absolute_error(3.0, 5.0) == 2.0


class TestMeanErrorRate:
    def test_uses_absolute_values(self):
        pairs = [(20.0, 10.0), (10.0, 20.0)]
        assert mean_error_rate(pairs) == pytest.approx(0.5)

    def test_perfect_workload_is_zero(self):
        assert mean_error_rate([(3.0, 3.0), (0.0, 0.0)]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            mean_error_rate([])


class TestSummaries:
    def test_summary_fields(self):
        pairs = [(10.0, 10.0), (20.0, 10.0), (0.0, 5.0)]
        summary = summarize_errors(pairs)
        assert summary.query_count == 3
        assert summary.mean_error_rate == pytest.approx((0.0 + 0.5 + 1.0) / 3)
        assert summary.max_error_rate == pytest.approx(1.0)
        assert summary.mean_absolute_error == pytest.approx((0 + 10 + 5) / 3)
        assert math.isinf(summary.max_q_error)
        # The infinite q-error is excluded from the mean.
        assert summary.mean_q_error == pytest.approx((1.0 + 2.0) / 2)

    def test_as_row(self):
        row = summarize_errors([(1.0, 1.0)]).as_row()
        assert row["queries"] == 1
        assert row["mean_error_rate"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            summarize_errors([])
