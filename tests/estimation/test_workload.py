"""Tests for workload generation."""

from __future__ import annotations

import pytest

from repro.estimation.workload import (
    fixed_length_workload,
    full_domain_workload,
    positive_workload,
    sampled_workload,
)
from repro.exceptions import EstimationError
from repro.ordering.registry import make_ordering


class TestFullDomainWorkload:
    def test_covers_domain_exactly_once(self, small_catalog):
        workload = full_domain_workload(small_catalog)
        assert len(workload) == small_catalog.domain_size
        assert len(set(workload)) == len(workload)

    def test_restricted_length(self, small_catalog):
        workload = full_domain_workload(small_catalog, max_length=1)
        assert len(workload) == len(small_catalog.labels)

    def test_too_long_rejected(self, small_catalog):
        with pytest.raises(EstimationError):
            full_domain_workload(small_catalog, max_length=small_catalog.max_length + 1)


class TestSampledWorkload:
    def test_size_and_membership(self, small_catalog):
        workload = sampled_workload(small_catalog, 50, seed=1)
        assert len(workload) == 50
        for path in workload:
            assert path.length <= small_catalog.max_length
            assert all(label in small_catalog.labels for label in path)

    def test_deterministic_per_seed(self, small_catalog):
        assert sampled_workload(small_catalog, 30, seed=5) == sampled_workload(
            small_catalog, 30, seed=5
        )
        assert sampled_workload(small_catalog, 30, seed=5) != sampled_workload(
            small_catalog, 30, seed=6
        )

    def test_with_ordering_unranks_indices(self, small_catalog):
        ordering = make_ordering("sum-based", catalog=small_catalog)
        workload = sampled_workload(small_catalog, 25, seed=2, ordering=ordering)
        assert len(workload) == 25
        assert all(0 <= ordering.index(path) < ordering.size for path in workload)

    def test_invalid_arguments(self, small_catalog):
        with pytest.raises(EstimationError):
            sampled_workload(small_catalog, 0)
        with pytest.raises(EstimationError):
            sampled_workload(small_catalog, 5, max_length=small_catalog.max_length + 1)


class TestPositiveWorkload:
    def test_all_nonzero_when_unsized(self, small_catalog):
        workload = positive_workload(small_catalog)
        assert workload
        assert all(small_catalog.selectivity(path) > 0 for path in workload)
        assert len(set(workload)) == len(workload)

    def test_sampled_positive(self, small_catalog):
        workload = positive_workload(small_catalog, 40, seed=3)
        assert len(workload) == 40
        assert all(small_catalog.selectivity(path) > 0 for path in workload)

    def test_weighted_prefers_frequent_paths(self, small_catalog):
        weighted = positive_workload(small_catalog, 300, weighted=True, seed=4)
        uniform = positive_workload(small_catalog, 300, weighted=False, seed=4)
        mean_weighted = sum(small_catalog.selectivity(p) for p in weighted) / 300
        mean_uniform = sum(small_catalog.selectivity(p) for p in uniform) / 300
        assert mean_weighted >= mean_uniform

    def test_invalid_size(self, small_catalog):
        with pytest.raises(EstimationError):
            positive_workload(small_catalog, 0)


class TestFixedLengthWorkload:
    def test_only_requested_length(self, small_catalog):
        workload = fixed_length_workload(small_catalog, 2)
        assert workload
        assert all(path.length == 2 for path in workload)
        assert len(workload) == len(small_catalog.labels) ** 2

    def test_out_of_range(self, small_catalog):
        with pytest.raises(EstimationError):
            fixed_length_workload(small_catalog, 0)
        with pytest.raises(EstimationError):
            fixed_length_workload(small_catalog, small_catalog.max_length + 1)
