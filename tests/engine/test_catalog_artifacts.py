"""Tests for the columnar catalog artifact (npz format + JSON fallback)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.exceptions import PathError
from repro.paths.catalog import CATALOG_NPZ_VERSION, SelectivityCatalog
from repro.paths.label_path import LabelPath


class TestNpzRoundTrip:
    def test_round_trip(self, small_catalog, tmp_path):
        target = tmp_path / "catalog.npz"
        small_catalog.save_npz(target)
        loaded = SelectivityCatalog.load_npz(target)
        assert loaded.labels == small_catalog.labels
        assert loaded.max_length == small_catalog.max_length
        assert loaded.graph_name == small_catalog.graph_name
        assert np.array_equal(
            loaded.frequency_vector(), small_catalog.frequency_vector()
        )

    def test_load_sniffs_npz(self, small_catalog, tmp_path):
        # ``load`` must accept both formats regardless of file name.
        target = tmp_path / "catalog.bin"
        small_catalog.save_npz(target)
        loaded = SelectivityCatalog.load(target)
        assert np.array_equal(
            loaded.frequency_vector(), small_catalog.frequency_vector()
        )

    def test_sparse_catalog_round_trips_mask(self, tmp_path):
        sparse = SelectivityCatalog(["a", "b"], 2, {"a": 3, "a/b": 1})
        target = tmp_path / "sparse.npz"
        sparse.save_npz(target)
        loaded = SelectivityCatalog.load_npz(target)
        assert len(loaded) == 2
        assert LabelPath.parse("a/b") in loaded
        assert LabelPath.parse("b/b") not in loaded
        assert loaded.selectivity("b/b") == 0

    def test_version_mismatch_rejected(self, small_catalog, tmp_path):
        target = tmp_path / "catalog.npz"
        small_catalog.save_npz(target)
        with np.load(target) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["format_version"] = np.asarray(CATALOG_NPZ_VERSION + 1, dtype=np.int64)
        with open(target, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(PathError):
            SelectivityCatalog.load_npz(target)

    def test_npz_fraction_of_json_at_scale(self, tmp_path):
        # |L|=6, k=4 (1554 paths) with a realistic mostly-sparse frequency
        # profile; the compressed columnar form must be at most a quarter of
        # the path-keyed JSON (the benchmark floor enforces the same bound).
        rng = np.random.default_rng(3)
        frequencies = np.where(
            rng.random(1554) < 0.15, rng.integers(0, 5000, 1554), 0
        ).astype(np.int64)
        catalog = SelectivityCatalog.from_frequencies(
            [str(i) for i in range(1, 7)], 4, frequencies, graph_name="size"
        )
        json_path = tmp_path / "catalog.json"
        npz_path = tmp_path / "catalog.npz"
        catalog.save(json_path)
        catalog.save_npz(npz_path)
        assert npz_path.stat().st_size <= 0.25 * json_path.stat().st_size


class TestArrayOwnership:
    def test_from_frequencies_default_copies(self):
        frequencies = np.arange(6, dtype=np.int64)
        catalog = SelectivityCatalog.from_frequencies(["a", "b"], 2, frequencies)
        frequencies[0] = 99  # caller's array must stay writable
        assert catalog.selectivity("a") == 0

    def test_from_frequencies_no_copy_adopts(self):
        frequencies = np.arange(6, dtype=np.int64)
        catalog = SelectivityCatalog.from_frequencies(
            ["a", "b"], 2, frequencies, copy=False
        )
        assert catalog.frequency_vector() is frequencies
        with pytest.raises(ValueError):
            frequencies[0] = 99  # adopted arrays are frozen


class TestCacheFallback:
    def test_legacy_json_artifact_still_loads(self, small_catalog, tmp_path):
        # A cache written by a pre-columnar release holds catalog-<key>.json;
        # the npz-first loader must fall back to it.
        cache = ArtifactCache(tmp_path)
        small_catalog.save(cache.legacy_catalog_path("k"))
        loaded = cache.load_catalog("k")
        assert loaded is not None
        assert cache.hits == 1 and cache.misses == 0
        assert np.array_equal(
            loaded.frequency_vector(), small_catalog.frequency_vector()
        )

    def test_npz_preferred_over_legacy(self, small_catalog, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_catalog("k", small_catalog)
        # Corrupt legacy file next to the valid npz artifact: must be ignored.
        cache.legacy_catalog_path("k").write_text("{broken", encoding="utf-8")
        loaded = cache.load_catalog("k")
        assert loaded is not None

    def test_truncated_npz_raises_engine_error(self, small_catalog, tmp_path):
        from repro.exceptions import EngineError

        cache = ArtifactCache(tmp_path)
        # Valid zip magic followed by garbage: np.load raises BadZipFile,
        # which must surface as the documented EngineError.
        cache.catalog_path("k").write_bytes(b"PK\x03\x04corrupt")
        with pytest.raises(EngineError):
            cache.load_catalog("k")

    def test_stored_artifact_is_npz(self, small_catalog, tmp_path):
        cache = ArtifactCache(tmp_path)
        path = cache.store_catalog("k", small_catalog)
        assert path.suffix == ".npz"
        with open(path, "rb") as handle:
            assert handle.read(2) == b"PK"

    def test_clear_removes_both_forms(self, small_catalog, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_catalog("k", small_catalog)
        small_catalog.save(cache.legacy_catalog_path("old"))
        assert cache.clear() == 2
        assert cache.artifact_files() == []


class TestSessionUsesColumnarArtifact:
    def test_warm_start_from_npz(self, small_graph, tmp_path):
        config = EngineConfig(max_length=2, bucket_count=8)
        cold = EstimationSession.build(small_graph, config, cache_dir=tmp_path)
        assert any(path.suffix == ".npz" for path in tmp_path.glob("catalog-*"))
        warm = EstimationSession.build(small_graph, config, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache
        assert np.array_equal(
            warm.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )

    def test_warm_start_from_legacy_json(self, small_graph, tmp_path):
        # Simulate a cache written by a pre-columnar release: the catalog
        # lives as JSON under the *old* key (no catalog_format field).
        from repro.engine import config_digest, graph_digest

        config = EngineConfig(max_length=2, bucket_count=8)
        cold = EstimationSession.build(small_graph, config)
        cache = ArtifactCache(tmp_path)
        legacy_key = (
            f"{graph_digest(small_graph)[:24]}"
            f"-{config_digest(config.legacy_catalog_fields())}"
        )
        cold.catalog.save(cache.legacy_catalog_path(legacy_key))
        warm = EstimationSession.build(small_graph, config, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache
        assert np.array_equal(
            warm.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )
        # The legacy hit is upgraded to the columnar artifact in place, so
        # the next start takes the npz fast path.
        assert cache.catalog_path(warm.stats.catalog_key).exists()

    def test_process_backend_session_matches_serial(self, small_graph):
        config = EngineConfig(max_length=2, bucket_count=8)
        serial = EstimationSession.build(small_graph, config)
        process = EstimationSession.build(
            small_graph, config, workers=2, backend="process"
        )
        assert process.stats.backend == "process"
        paths = [str(p) for p in serial.catalog.paths()]
        assert np.allclose(
            serial.estimate_batch(paths), process.estimate_batch(paths)
        )

    def test_catalog_format_version_in_cache_key(self):
        # The config digest must cover the artifact format so a layout change
        # re-keys the artifact instead of half-trusting a stale entry, and
        # the requested storage mode so dense and sparse sessions never
        # alias one artifact.
        fields = EngineConfig(max_length=3).catalog_fields()
        assert fields.get("catalog_format") == 3
        assert fields.get("storage") == "auto"
        sparse_fields = EngineConfig(max_length=3, storage="sparse").catalog_fields()
        assert sparse_fields.get("storage") == "sparse"
        assert fields != sparse_fields

    def test_json_artifact_content_is_legacy_schema(self, small_catalog, tmp_path):
        # Guards the fallback contract: ``save`` still writes the exact
        # pre-columnar JSON schema.
        target = tmp_path / "catalog.json"
        small_catalog.save(target)
        document = json.loads(target.read_text(encoding="utf-8"))
        assert set(document) == {
            "graph_name",
            "labels",
            "max_length",
            "selectivities",
        }
        assert document["selectivities"]["1"] == small_catalog.selectivity("1")
