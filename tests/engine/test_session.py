"""Tests for :class:`repro.engine.session.EstimationSession`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, EstimationSession
from repro.exceptions import EngineError, UnknownLabelError
from repro.paths.enumeration import enumerate_label_paths

CONFIG = EngineConfig(max_length=3, ordering="sum-based", bucket_count=16)


@pytest.fixture(scope="module")
def session(small_graph) -> EstimationSession:
    return EstimationSession.build(small_graph, CONFIG)


def domain_strings(session: EstimationSession) -> list[str]:
    return [
        str(path)
        for path in enumerate_label_paths(
            session.catalog.labels, session.config.max_length
        )
    ]


class TestEngineConfig:
    def test_rejects_bad_max_length(self):
        with pytest.raises(EngineError):
            EngineConfig(max_length=0)

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(EngineError):
            EngineConfig(bucket_count=0)

    def test_histogram_fields_cover_catalog_fields(self):
        config = EngineConfig(max_length=2)
        assert set(config.catalog_fields()) <= set(config.histogram_fields())


class TestBatchParity:
    def test_batch_matches_loop_on_full_domain(self, session):
        paths = domain_strings(session)
        batch = session.estimate_batch(paths)
        loop = np.array([session.estimate(path) for path in paths])
        assert batch.shape == (len(paths),)
        assert np.allclose(batch, loop)

    def test_batch_matches_estimator_on_random_workload(self, session):
        domain = domain_strings(session)
        rng = np.random.default_rng(13)
        workload = [domain[i] for i in rng.integers(0, len(domain), 500)]
        batch = session.estimate_batch(workload)
        reference = session.estimator.estimate_many(workload)
        assert np.allclose(batch, np.array(reference))

    def test_accepts_label_path_objects(self, session):
        from repro.paths.label_path import LabelPath

        paths = [LabelPath.parse(text) for text in domain_strings(session)[:20]]
        batch = session.estimate_batch(paths)
        loop = np.array([session.estimate(path) for path in paths])
        assert np.allclose(batch, loop)

    def test_empty_batch(self, session):
        assert session.estimate_batch([]).shape == (0,)

    def test_unknown_label_raises(self, session):
        with pytest.raises(UnknownLabelError):
            session.estimate_batch(["definitely-not-a-label"])

    def test_positions_agree_with_ordering(self, session):
        ordering = session.ordering
        for text in domain_strings(session)[:50]:
            assert session.position(text) == ordering.index(text)


class TestCacheBehavior:
    def test_cold_build_populates_cache(self, small_graph, tmp_path):
        session = EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        assert not session.stats.catalog_from_cache
        names = sorted(path.name for path in tmp_path.iterdir())
        assert any(name.startswith("catalog-") for name in names)
        assert any(name.startswith("histogram-") for name in names)
        assert any(name.startswith("positions-") for name in names)

    def test_warm_build_hits_every_artifact(self, small_graph, tmp_path):
        EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        warm = EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache
        assert warm.stats.histogram_from_cache
        assert warm.stats.positions_from_cache

    def test_warm_build_skips_catalog_construction(
        self, small_graph, tmp_path, monkeypatch
    ):
        EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("catalog construction ran on a warm cache")

        import repro.paths.catalog as catalog_module
        import repro.paths.enumeration as enumeration_module

        monkeypatch.setattr(catalog_module, "compute_selectivity_vector", explode)
        monkeypatch.setattr(enumeration_module, "compute_selectivities", explode)
        monkeypatch.setattr(enumeration_module, "compute_selectivities_parallel", explode)
        warm = EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache

    def test_warm_estimates_match_cold(self, small_graph, tmp_path):
        cold = EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        warm = EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        paths = domain_strings(cold)
        assert np.allclose(cold.estimate_batch(paths), warm.estimate_batch(paths))

    @pytest.mark.parametrize(
        "variant",
        [
            EngineConfig(max_length=2, ordering="sum-based", bucket_count=16),
            EngineConfig(max_length=3, ordering="num-alph", bucket_count=16),
            EngineConfig(max_length=3, ordering="sum-based", bucket_count=8),
            EngineConfig(
                max_length=3,
                ordering="sum-based",
                histogram_kind="equi-width",
                bucket_count=16,
            ),
        ],
    )
    def test_config_change_invalidates_histogram(
        self, small_graph, tmp_path, variant
    ):
        EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        rebuilt = EstimationSession.build(small_graph, variant, cache_dir=tmp_path)
        assert not rebuilt.stats.histogram_from_cache
        assert not rebuilt.stats.positions_from_cache
        # Only a change of k invalidates the catalog artifact.
        expected_catalog_hit = variant.max_length == CONFIG.max_length
        assert rebuilt.stats.catalog_from_cache == expected_catalog_hit

    def test_different_graph_misses(self, small_graph, triangle_graph, tmp_path):
        EstimationSession.build(small_graph, CONFIG, cache_dir=tmp_path)
        other = EstimationSession.build(triangle_graph, CONFIG, cache_dir=tmp_path)
        assert not other.stats.catalog_from_cache

    def test_ideal_ordering_builds_with_cache(self, small_graph, tmp_path):
        """Non-serialisable orderings must not abort a cached build."""
        config = EngineConfig(max_length=2, ordering="ideal", bucket_count=8)
        session = EstimationSession.build(small_graph, config, cache_dir=tmp_path)
        assert session.stats.extra.get("histogram_not_cacheable") is True
        # The catalog artifact is still cached, so a second build warm-starts
        # the expensive part even though the histogram is rebuilt.
        warm = EstimationSession.build(small_graph, config, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache
        paths = domain_strings(session)[:20]
        assert np.allclose(
            session.estimate_batch(paths), warm.estimate_batch(paths)
        )


class TestParallelCatalog:
    def test_parallel_equals_serial(self, small_graph):
        from repro.paths.enumeration import (
            compute_selectivities,
            compute_selectivities_parallel,
        )

        serial = compute_selectivities(small_graph, 3)
        parallel = compute_selectivities_parallel(small_graph, 3, workers=4)
        assert serial == parallel

    def test_from_graph_workers_equals_serial(self, small_graph):
        from repro.paths.catalog import SelectivityCatalog

        serial = SelectivityCatalog.from_graph(small_graph, 3)
        parallel = SelectivityCatalog.from_graph(small_graph, 3, workers=4)
        assert dict(serial.items()) == dict(parallel.items())

    def test_roots_restriction(self, small_graph):
        from repro.paths.enumeration import compute_selectivities

        labels = small_graph.labels()
        full = compute_selectivities(small_graph, 2)
        rooted = compute_selectivities(small_graph, 2, roots=labels[:1])
        assert set(rooted) == {
            path for path in full if path.first == labels[0]
        }
        assert all(full[path] == value for path, value in rooted.items())

    def test_bad_roots_rejected(self, small_graph):
        from repro.exceptions import PathError
        from repro.paths.enumeration import compute_selectivities

        with pytest.raises(PathError):
            compute_selectivities(small_graph, 2, roots=["nope"])

    def test_parallel_progress_reports_combined_total(self):
        # The callback fires every 1000 paths, so the domain must be large
        # enough for several ticks per first-label subtree (10^4 paths here).
        from repro.graph.generators import zipf_labeled_graph
        from repro.paths.enumeration import compute_selectivities_parallel, domain_size

        graph = zipf_labeled_graph(30, 150, 10, skew=1.0, seed=5, name="progress")
        labels = graph.labels()
        seen: list[int] = []
        compute_selectivities_parallel(graph, 4, workers=4, progress=seen.append)
        total = domain_size(len(labels), 4)
        assert seen, "progress callback never invoked"
        assert max(seen) <= total
        # combined counts must cross a single subtree's share of the domain
        assert max(seen) > total // len(labels)

    def test_bad_worker_count_rejected(self, small_graph):
        from repro.exceptions import PathError
        from repro.paths.enumeration import compute_selectivities_parallel

        with pytest.raises(PathError):
            compute_selectivities_parallel(small_graph, 2, workers=0)
