"""The remote artifact tier: server, client store, and cache integration.

Covers the fault-tolerance contract end to end: verified fetches (payload
digests checked before adoption), quarantine of corrupt remote payloads,
single-flight download dedup, the per-remote circuit breaker (dead store
fast-fails to cold build), best-effort pushes, and the artifact server's
validation surface (names, body cap, digest-verified uploads).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.engine.remote import RemoteArtifactStore
from repro.exceptions import RemoteStoreError
from repro.graph.generators import zipf_labeled_graph
from repro.obs.metrics import MetricsRegistry
from repro.paths.catalog import SelectivityCatalog
from repro.serving.artifacts import make_artifact_server
from repro.testing import bitflip_bytes, injector, truncate_bytes

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture(autouse=True)
def clean_injector():
    injector.reset()
    yield
    injector.reset()


@pytest.fixture()
def graph():
    return zipf_labeled_graph(30, 120, 3, skew=1.0, seed=11, name="g")


@pytest.fixture()
def server(tmp_path):
    store_dir = tmp_path / "store"
    server = make_artifact_server(
        store_dir, port=0, metrics=MetricsRegistry(), max_body_bytes=64 * 2**10
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture()
def url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture()
def catalog_file(tmp_path, graph):
    catalog = SelectivityCatalog.from_graph(graph, 2)
    path = tmp_path / "catalog-deadbeef-cafe.npz"
    catalog.save_npz(path)
    return path


def _store(url, **overrides):
    options = {
        "timeout": 5.0,
        "max_retries": 1,
        "backoff_seconds": 0.0,
        "backoff_max_seconds": 0.0,
    }
    options.update(overrides)
    return RemoteArtifactStore(url, **options)


class TestArtifactServer:
    def test_put_get_head_round_trip(self, url, catalog_file):
        store = _store(url)
        assert store.push(catalog_file) is True
        probe = store.head_artifact(catalog_file.name)
        assert probe is not None
        assert probe["bytes"] == catalog_file.stat().st_size
        assert probe["sha256"] == hashlib.sha256(
            catalog_file.read_bytes()
        ).hexdigest()
        rows = store.list_artifacts()
        assert [row["name"] for row in rows] == [catalog_file.name]

    def test_head_absent_artifact_is_none(self, url):
        assert _store(url).head_artifact("catalog-missing.npz") is None

    def test_invalid_names_are_rejected(self, url):
        request = urllib.request.Request(
            f"{url}/v1/artifacts/..%2Fescape.npz", data=b"x", method="PUT"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 404
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert set(envelope) >= {"error", "code", "retry_after", "request_id"}

    def test_oversized_put_is_413(self, url):
        request = urllib.request.Request(
            f"{url}/v1/artifacts/catalog-big.npz",
            data=b"x" * (65 * 2**10),
            method="PUT",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 413

    def test_digest_mismatch_put_is_refused(self, url, server):
        request = urllib.request.Request(
            f"{url}/v1/artifacts/catalog-x.npz",
            data=b"payload",
            method="PUT",
            headers={"X-Content-Sha256": "0" * 64},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read().decode("utf-8"))
        assert envelope["code"] == "digest_mismatch"
        assert not (server.directory / "catalog-x.npz").exists()

    def test_post_is_405_and_health_probes_answer(self, url):
        request = urllib.request.Request(
            f"{url}/v1/artifacts/catalog-x.npz", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 405
        with urllib.request.urlopen(f"{url}/healthz", timeout=5) as response:
            assert json.loads(response.read())["status"] == "ok"
        with urllib.request.urlopen(f"{url}/readyz", timeout=5) as response:
            assert json.loads(response.read())["writable"] is True
        with urllib.request.urlopen(f"{url}/metrics", timeout=5) as response:
            assert b"repro_artifact_requests_total" in response.read()


class TestRemoteFetch:
    def test_fetch_hit_adopts_verified_copy(self, url, catalog_file, tmp_path):
        store = _store(url)
        store.push(catalog_file)
        target = tmp_path / "local" / catalog_file.name
        target.parent.mkdir()
        assert store.fetch(catalog_file.name, target) == "hit"
        assert target.read_bytes() == catalog_file.read_bytes()
        assert store.hits == 1

    def test_fetch_miss_on_absent_artifact(self, url, tmp_path):
        store = _store(url)
        outcome = store.fetch("catalog-nope.npz", tmp_path / "catalog-nope.npz")
        assert outcome == "miss"
        assert not (tmp_path / "catalog-nope.npz").exists()

    def test_dead_store_is_unavailable_never_raises(self, tmp_path):
        store = _store("http://127.0.0.1:9")  # discard port: nothing listens
        outcome = store.fetch("catalog-x.npz", tmp_path / "catalog-x.npz")
        assert outcome == "unavailable"

    @pytest.mark.parametrize("damage", [truncate_bytes, bitflip_bytes])
    def test_corrupt_payload_is_parked_not_adopted(
        self, url, catalog_file, tmp_path, damage
    ):
        store = _store(url)
        store.push(catalog_file)
        injector.arm("remote.fetch", mutate=damage, times=1)
        target = tmp_path / "local" / catalog_file.name
        target.parent.mkdir()
        assert store.fetch(catalog_file.name, target) == "corrupt"
        assert not target.exists()
        parked = target.with_name(target.name + ".corrupt")
        assert parked.exists()
        # No temp debris either: the only sibling is the parked payload.
        assert list(target.parent.iterdir()) == [parked]

    def test_fetch_retries_transient_error_then_succeeds(
        self, url, catalog_file, tmp_path
    ):
        store = _store(url, max_retries=2)
        store.push(catalog_file)
        injector.arm(
            "remote.fetch", error=ConnectionResetError("mid-flight"), times=1
        )
        target = tmp_path / "local" / catalog_file.name
        target.parent.mkdir()
        assert store.fetch(catalog_file.name, target) == "hit"
        assert injector.fired("remote.fetch") >= 1

    def test_single_flight_deduplicates_concurrent_fetches(
        self, url, catalog_file, tmp_path
    ):
        store = _store(url)
        store.push(catalog_file)
        release = threading.Event()
        original_download = store._download

        calls = []

        def slow_download(name):
            calls.append(name)
            release.wait(timeout=10)
            return original_download(name)

        store._download = slow_download
        target = tmp_path / "local" / catalog_file.name
        target.parent.mkdir()
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda: outcomes.append(
                    store.fetch(catalog_file.name, target)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(outcomes) == ["hit"] * 4
        assert len(calls) == 1  # one download, three waiters adopt the file


class TestCircuitBreaker:
    def test_threshold_failures_trip_then_fast_fail(self, tmp_path):
        store = _store(
            "http://127.0.0.1:9",
            breaker_threshold=2,
            breaker_reset_seconds=60.0,
        )
        for _ in range(2):
            assert store.fetch("catalog-x.npz", tmp_path / "x.npz") == "unavailable"
        assert store.breaker_open is True
        started = time.perf_counter()
        outcome = store.fetch("catalog-x.npz", tmp_path / "x.npz")
        elapsed = time.perf_counter() - started
        assert outcome == "unavailable"
        assert elapsed < 0.010  # fast-fail: no socket, just a clock read
        assert store.describe()["breaker_open"] is True

    def test_half_open_probe_closes_on_recovery(self, url, catalog_file, tmp_path):
        store = _store(url, breaker_threshold=1, breaker_reset_seconds=0.05)
        store.push(catalog_file)
        injector.arm("remote.fetch", error=ConnectionError("down"), times=2)
        assert store.fetch(catalog_file.name, tmp_path / "a.npz") == "unavailable"
        assert store.breaker_open is True
        time.sleep(0.06)  # past the reset window: next call is the probe
        assert store.fetch(catalog_file.name, tmp_path / "b.npz") == "hit"
        assert store.breaker_open is False

    def test_push_respects_open_breaker(self, catalog_file):
        store = _store(
            "http://127.0.0.1:9", breaker_threshold=1, breaker_reset_seconds=60.0
        )
        assert store.push(catalog_file) is False  # trips the breaker
        started = time.perf_counter()
        assert store.push(catalog_file) is False  # fast-fail
        assert time.perf_counter() - started < 0.010


class TestPush:
    def test_push_failure_is_counted_never_raised(self, catalog_file):
        store = _store("http://127.0.0.1:9", breaker_threshold=0)
        assert store.push(catalog_file) is False
        assert store.push_failures == 1

    def test_push_async_flush_completes_the_upload(self, url, catalog_file):
        store = _store(url)
        store.push_async(catalog_file)
        store.flush(timeout=10)
        assert store.pushes == 1
        assert store.head_artifact(catalog_file.name) is not None

    def test_push_faults_fire_per_attempt(self, url, catalog_file):
        store = _store(url, max_retries=0)
        injector.arm("remote.push", error=ConnectionError("down"), times=1)
        assert store.push(catalog_file) is False
        assert injector.fired("remote.push") == 1


class TestCacheIntegration:
    def test_warm_start_from_remote_tier(self, url, graph, tmp_path):
        builder = ArtifactCache(tmp_path / "a", remote=_store(url))
        first = EstimationSession.build(graph, CONFIG, cache_dir=builder)
        assert first.stats.catalog_from_cache is False
        builder.remote.flush(timeout=10)
        warm_cache = ArtifactCache(tmp_path / "b", remote=_store(url))
        second = EstimationSession.build(graph, CONFIG, cache_dir=warm_cache)
        assert second.stats.catalog_from_cache is True
        assert warm_cache.remote_hits >= 1
        paths = ["1/2", "2", "3/3"]
        assert np.allclose(
            first.estimate_batch(paths), second.estimate_batch(paths)
        )

    def test_corrupt_remote_payload_quarantined_and_rebuilt(
        self, url, graph, tmp_path
    ):
        builder = ArtifactCache(tmp_path / "a", remote=_store(url))
        EstimationSession.build(graph, CONFIG, cache_dir=builder)
        builder.remote.flush(timeout=10)
        injector.arm(
            "remote.fetch",
            mutate=bitflip_bytes,
            times=-1,
            match=lambda ctx: str(ctx.get("name", "")).startswith("catalog-"),
        )
        cache = ArtifactCache(tmp_path / "b", remote=_store(url))
        session = EstimationSession.build(graph, CONFIG, cache_dir=cache)
        assert session.stats.catalog_from_cache is False  # never loaded
        assert cache.quarantined >= 1
        corrupt = list((tmp_path / "b").glob("*.corrupt"))
        assert corrupt  # the damaged payload is parked for inspection
        assert cache.temp_files() == []  # and no temp debris remains

    def test_remote_outage_degrades_to_cold_build(self, graph, tmp_path):
        cache = ArtifactCache(
            tmp_path / "a", remote=_store("http://127.0.0.1:9")
        )
        session = EstimationSession.build(graph, CONFIG, cache_dir=cache)
        assert session.stats.catalog_from_cache is False
        assert session.domain_size > 0

    def test_operator_surfaces_raise_on_dead_store(self):
        store = _store("http://127.0.0.1:9")
        with pytest.raises(RemoteStoreError):
            store.head_artifact("catalog-x.npz")
        with pytest.raises(RemoteStoreError):
            store.list_artifacts()
