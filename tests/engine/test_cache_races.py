"""Cache races and debris: eviction vs. load, fetch vs. prune, temp sweep.

Pruning, remote adoption and loads all touch the same directory with no
coordination beyond atomic renames, so the invariant under test is simple:
a load concurrent with eviction returns ``None`` (clean miss) or a fully
valid artifact — never a crash, never a half-written file — and in-flight
temp files are invisible to the artifact globs but swept once stale.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.engine.remote import RemoteArtifactStore
from repro.graph.generators import zipf_labeled_graph
from repro.obs.metrics import MetricsRegistry
from repro.paths.catalog import SelectivityCatalog
from repro.serving.artifacts import make_artifact_server
from repro.testing import injector

CONFIG = EngineConfig(max_length=2, bucket_count=8)


@pytest.fixture(autouse=True)
def clean_injector():
    injector.reset()
    yield
    injector.reset()


@pytest.fixture()
def graph():
    return zipf_labeled_graph(30, 120, 3, skew=1.0, seed=13, name="g")


@pytest.fixture()
def remote(tmp_path):
    server = make_artifact_server(
        tmp_path / "remote-store", port=0, metrics=MetricsRegistry()
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield RemoteArtifactStore(
            f"http://{host}:{port}", backoff_seconds=0.0, backoff_max_seconds=0.0
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestEvictionLoadRaces:
    def test_eviction_between_probe_and_open_is_clean_miss(
        self, tmp_path, graph, monkeypatch
    ):
        cache = ArtifactCache(tmp_path / "c")
        session = EstimationSession.build(graph, CONFIG, cache_dir=cache)
        key = session.stats.catalog_key
        real_load = SelectivityCatalog.load.__func__

        def vanish_then_load(cls, path):
            # The artifact disappears between the existence probe and the
            # open — exactly what a racing prune produces.
            os.unlink(path)
            return real_load(cls, path)

        monkeypatch.setattr(
            SelectivityCatalog, "load", classmethod(vanish_then_load)
        )
        assert cache.load_catalog(key) is None
        assert cache.misses >= 1
        assert cache.quarantined == 0  # a vanished file is not corruption

    def test_prune_during_slow_load_never_crashes(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path / "c")
        session = EstimationSession.build(graph, CONFIG, cache_dir=cache)
        key = session.stats.catalog_key
        # Every load sleeps at the fault point while a pruner deletes the
        # artifacts underneath it.
        injector.arm("cache.load_catalog", delay=0.02, times=-1)
        results: list[object] = []
        errors: list[BaseException] = []

        def load():
            try:
                results.append(cache.load_catalog(key))
            except BaseException as exc:  # noqa: BLE001 - the test records
                errors.append(exc)

        loaders = [threading.Thread(target=load) for _ in range(4)]
        for thread in loaders:
            thread.start()
        cache.prune(0)
        for thread in loaders:
            thread.join(timeout=30)
        assert not errors
        for catalog in results:
            assert catalog is None or isinstance(catalog, SelectivityCatalog)

    def test_remote_adoption_racing_prune(self, tmp_path, graph, remote):
        # Seed the remote tier from one build, then repeatedly warm-start a
        # second cache while pruning it to zero from another thread.
        seeder = ArtifactCache(tmp_path / "seed", remote=remote)
        session = EstimationSession.build(graph, CONFIG, cache_dir=seeder)
        key = session.stats.catalog_key
        remote.flush(timeout=30)
        cache = ArtifactCache(tmp_path / "warm", remote=remote)
        errors: list[BaseException] = []
        stop = threading.Event()

        def pruner():
            while not stop.is_set():
                cache.prune(0)

        thread = threading.Thread(target=pruner)
        thread.start()
        try:
            for _ in range(10):
                try:
                    catalog = cache.load_catalog(key)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    break
                if catalog is not None:
                    assert catalog.domain_size == session.catalog.domain_size
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        assert cache.temp_files() == []  # adoption never leaks temps


class TestTempDebris:
    def test_stale_temp_swept_at_init(self, tmp_path):
        root = tmp_path / "c"
        root.mkdir()
        stale = root / ".catalog-k.npz.999.deadbeef.tmp"
        stale.write_bytes(b"half-written")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        young = root / ".histogram-k.json.999.cafe.tmp"
        young.write_bytes(b"live writer")
        cache = ArtifactCache(root)
        assert not stale.exists()
        assert young.exists()  # may belong to a live writer: left alone
        assert cache.temp_cleaned == 1

    def test_temp_files_surface_and_globs_skip_them(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path / "c")
        EstimationSession.build(graph, CONFIG, cache_dir=cache)
        before = set(cache.artifact_files())
        debris = cache.root / ".catalog-k.npz.1.ff.tmp"
        debris.write_bytes(b"x")
        # Foreign debris that *does* match an artifact glob pattern is
        # still excluded by the explicit .tmp filter.
        foreign = cache.root / "catalog-k.tmp.npy"
        foreign.write_bytes(b"x")
        assert debris in cache.temp_files()
        assert set(cache.artifact_files()) == before
        assert cache.total_bytes() == sum(
            path.stat().st_size for path in before
        )


class TestRemoteSidecarBackfill:
    def test_warm_start_backfills_mmap_sidecars(self, tmp_path, remote):
        graph = zipf_labeled_graph(40, 160, 3, skew=1.0, seed=5, name="g5")
        config = EngineConfig(max_length=6, bucket_count=8)
        seeder = ArtifactCache(tmp_path / "seed", remote=remote)
        cold = EstimationSession.build(graph, config, cache_dir=seeder)
        key = cold.stats.catalog_key
        assert seeder.mmap_catalog_path(key).exists()
        remote.flush(timeout=30)
        # The remote tier ships only the primaries — sidecars are local.
        remote_names = {row["name"] for row in remote.list_artifacts()}
        assert f"catalog-{key}.npz" in remote_names
        assert f"catalog-{key}.npy" not in remote_names
        warm_cache = ArtifactCache(tmp_path / "warm", remote=remote)
        warm = EstimationSession.build(
            graph, config, cache_dir=warm_cache, mmap=True
        )
        assert warm.stats.catalog_from_cache is True
        # First warm start fetched the npz and backfilled the sidecar ...
        assert warm_cache.mmap_catalog_path(key).exists()
        # ... so the next one maps pages instead of decompressing.
        second = EstimationSession.build(
            graph, config, cache_dir=warm_cache, mmap=True
        )
        assert isinstance(second.catalog.frequency_vector(), np.memmap)
        assert np.allclose(
            second.estimate_batch(["1/2/3", "2/2"]),
            cold.estimate_batch(["1/2/3", "2/2"]),
        )
