"""Tests for the batch estimation API threaded through the stack.

Covers the vectorised paths added outside the engine package: the histogram
layer's ``estimate_batch``, the estimator's ``estimate_batch``, the
cardinality model's ``scan_cardinalities`` and the planner's up-front
batching, plus the ``repro engine`` CLI subcommands.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.estimation.estimator import PathSelectivityEstimator
from repro.exceptions import HistogramError, PlanningError
from repro.graph.io import write_edge_list
from repro.histogram.equiwidth import EquiWidthHistogram
from repro.optimizer.cardinality import (
    HistogramCardinalityModel,
    TrueCardinalityModel,
)
from repro.optimizer.planner import PathQueryPlanner


@pytest.fixture(scope="module")
def estimator(small_catalog) -> PathSelectivityEstimator:
    return PathSelectivityEstimator.build(
        small_catalog, ordering="sum-based", bucket_count=12
    )


class TestHistogramBatch:
    def test_estimate_batch_matches_pointwise(self):
        histogram = EquiWidthHistogram(np.arange(40, dtype=float), 5)
        indices = np.array([0, 7, 8, 13, 39, 20])
        batch = histogram.estimate_batch(indices)
        assert np.allclose(
            batch, [histogram.estimate(int(i)) for i in indices]
        )

    def test_estimate_batch_rejects_out_of_domain(self):
        histogram = EquiWidthHistogram(np.arange(10, dtype=float), 2)
        with pytest.raises(HistogramError):
            histogram.estimate_batch([0, 10])
        with pytest.raises(HistogramError):
            histogram.estimate_batch([-1])

    def test_estimate_batch_empty(self):
        histogram = EquiWidthHistogram(np.arange(10, dtype=float), 2)
        assert histogram.estimate_batch(np.empty(0, dtype=np.int64)).shape == (0,)


class TestEstimatorBatch:
    def test_matches_estimate_many(self, estimator, small_catalog):
        paths = [str(path) for path in small_catalog.paths()][:200]
        batch = estimator.estimate_batch(paths)
        assert np.allclose(batch, np.array(estimator.estimate_many(paths)))

    def test_restored_histogram_supports_batch(self, estimator, tmp_path):
        from repro.histogram.serialization import load_histogram, save_histogram

        target = tmp_path / "hist.json"
        save_histogram(estimator.histogram, target)
        restored = load_histogram(target)
        paths = ["1", "2", "1/1", "2/1/2"]
        assert np.allclose(
            restored.estimate_batch(paths), estimator.estimate_batch(paths)
        )


class TestCardinalityBatch:
    def test_histogram_model_batch_matches_scalar(self, estimator, small_catalog):
        model = HistogramCardinalityModel(
            estimator, max_length=small_catalog.max_length, vertex_count=40
        )
        paths = [str(path) for path in small_catalog.paths()][:50]
        batch = model.scan_cardinalities(paths)
        assert batch == [model.scan_cardinality(path) for path in paths]

    def test_histogram_model_batch_rejects_long_paths(self, estimator):
        model = HistogramCardinalityModel(estimator, max_length=3, vertex_count=40)
        with pytest.raises(PlanningError):
            model.scan_cardinalities(["1/1/1/1"])

    def test_true_model_uses_default_loop(self, small_catalog):
        model = TrueCardinalityModel(small_catalog, vertex_count=40)
        paths = [str(path) for path in small_catalog.paths()][:20]
        assert model.scan_cardinalities(paths) == [
            model.scan_cardinality(path) for path in paths
        ]


class TestPlannerBatching:
    def test_plan_unchanged_by_batching(self, estimator, small_catalog):
        """The up-front batch must produce the same plans as per-call scans."""

        class CountingModel(HistogramCardinalityModel):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.batch_calls = 0

            def scan_cardinalities(self, paths):
                self.batch_calls += 1
                return super().scan_cardinalities(paths)

        model = CountingModel(
            estimator, max_length=small_catalog.max_length, vertex_count=40
        )
        planner = PathQueryPlanner(model)
        planned = planner.plan("1/2/1/2/1")
        assert model.batch_calls == 1
        assert planned.estimated_cost >= 0

        reference = PathQueryPlanner(
            HistogramCardinalityModel(
                estimator, max_length=small_catalog.max_length, vertex_count=40
            )
        ).plan("1/2/1/2/1")
        assert planned.plan.describe() == reference.plan.describe()
        assert planned.estimated_cost == pytest.approx(reference.estimated_cost)


class TestEngineCli:
    @pytest.fixture()
    def graph_file(self, small_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(small_graph, path)
        return path

    def test_build_then_warm_estimate(self, graph_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        base = [str(graph_file), "-k", "2", "--buckets", "8", "--cache-dir", str(cache_dir)]
        assert main(["engine", "build", *base]) == 0
        output = capsys.readouterr().out
        assert "catalog built" in output

        assert main(["engine", "build", *base, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["catalog_from_cache"] is True

        assert (
            main(
                [
                    "engine",
                    "estimate",
                    str(graph_file),
                    "1/2",
                    "2/1",
                    "-k",
                    "2",
                    "--buckets",
                    "8",
                    "--cache-dir",
                    str(cache_dir),
                    "--truth",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "1/2" in output and "true" in output

    def test_estimate_json_and_paths_file(self, graph_file, tmp_path, capsys):
        paths_file = tmp_path / "workload.txt"
        paths_file.write_text("1\n2/2\n\n", encoding="utf-8")
        assert (
            main(
                [
                    "engine",
                    "estimate",
                    str(graph_file),
                    "-k",
                    "2",
                    "--buckets",
                    "8",
                    "--paths-file",
                    str(paths_file),
                    "--json",
                ]
            )
            == 0
        )
        records = json.loads(capsys.readouterr().out)
        assert [record["path"] for record in records] == ["1", "2/2"]
        assert all(record["estimate"] >= 0 for record in records)

    def test_estimate_without_paths_errors(self, graph_file, capsys):
        code = main(["engine", "estimate", str(graph_file), "-k", "2"])
        assert code == 2
        assert "no paths" in capsys.readouterr().err
