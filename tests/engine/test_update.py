"""Tests for `EstimationSession.update`: incremental rebuilds, artifact
patching, derived-histogram invalidation and stats provenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.exceptions import EngineError
from repro.graph.delta import GraphDelta
from repro.graph.generators import ring_labeled_graph, zipf_labeled_graph

CONFIG = EngineConfig(max_length=3, ordering="sum-based", bucket_count=16)


@pytest.fixture()
def ring_graph():
    return ring_labeled_graph(8, 25, 120, seed=5, name="update-ring")


@pytest.fixture()
def ring_delta(ring_graph):
    edges = list(ring_graph.edges_with_label("4"))
    return GraphDelta(removals=edges[:10])


class TestSessionUpdate:
    def test_update_matches_cold_build(self, ring_graph, ring_delta):
        session = EstimationSession.build(ring_graph, CONFIG)
        updated = session.update(ring_delta)
        cold = EstimationSession.build(updated.graph.copy(), CONFIG)
        assert np.array_equal(
            updated.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )
        probe = ["1", "4/5", "3/4/5", "2/3", "8/1/2"]
        assert np.allclose(updated.estimate_batch(probe), cold.estimate_batch(probe))

    def test_update_refingerprints_and_patches_cache(
        self, ring_graph, ring_delta, tmp_path
    ):
        session = EstimationSession.build(ring_graph, CONFIG, cache_dir=tmp_path)
        updated = session.update(ring_delta)
        assert updated.stats.graph_digest != session.stats.graph_digest
        assert updated.stats.catalog_key != session.stats.catalog_key
        cache = ArtifactCache(tmp_path)
        # Both the old and the patched catalog artifacts exist, content-addressed.
        assert cache.catalog_path(session.stats.catalog_key).exists()
        assert cache.catalog_path(updated.stats.catalog_key).exists()
        # Derived artifacts were rebuilt under the new histogram key.
        assert cache.histogram_path(updated.stats.histogram_key).exists()
        assert cache.positions_path(updated.stats.histogram_key).exists()
        # A later cold start warm-loads the patched artifact.
        warm = EstimationSession.build(updated.graph, CONFIG, cache_dir=tmp_path)
        assert warm.stats.catalog_from_cache
        assert np.array_equal(
            warm.catalog.frequency_vector(), updated.catalog.frequency_vector()
        )

    def test_update_invalidates_derived_histogram(self, ring_graph):
        session = EstimationSession.build(ring_graph, CONFIG)
        # Remove every edge of one label: its paths' frequencies collapse,
        # so the histogram must be rebuilt, not reused.
        delta = GraphDelta(removals=list(ring_graph.edges_with_label("4")))
        # Removing a whole label changes the alphabet -> full rebuild path.
        updated = session.update(delta)
        assert updated.histogram is not session.histogram
        assert updated.stats.extra["delta_full_rebuild"]
        cold = EstimationSession.build(updated.graph.copy(), CONFIG)
        assert np.array_equal(
            updated.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )

    def test_old_session_keeps_serving_pre_delta_snapshot(
        self, ring_graph, ring_delta
    ):
        session = EstimationSession.build(ring_graph, CONFIG)
        before = session.catalog.frequency_vector().copy()
        session.update(ring_delta)
        assert np.array_equal(session.catalog.frequency_vector(), before)

    def test_update_stats_provenance(self, ring_graph, ring_delta):
        session = EstimationSession.build(ring_graph, CONFIG)
        updated = session.update(ring_delta)
        stats = updated.stats
        assert stats.updated_from_delta
        assert not stats.catalog_from_cache
        extra = stats.extra
        assert extra["delta_removals"] == 10
        assert extra["delta_additions"] == 0
        assert 0 < extra["delta_affected_subtrees"] < extra["delta_subtrees_total"]
        assert not extra["delta_full_rebuild"]
        row = stats.as_row()
        assert row["updated_from_delta"] is True
        assert row["delta_affected_subtrees"] == extra["delta_affected_subtrees"]

    def test_update_without_graph_reference_raises(self, ring_graph):
        built = EstimationSession.build(ring_graph, CONFIG)
        orphan = EstimationSession(
            built.catalog,
            built.histogram,
            position_of={},
            config=CONFIG,
        )
        with pytest.raises(EngineError, match="retains no graph"):
            orphan.update(GraphDelta(additions=[(0, "1", 1)]))

    def test_update_without_cache_works(self, ring_graph, ring_delta):
        session = EstimationSession.build(ring_graph, CONFIG)
        assert session.cache is None
        updated = session.update(ring_delta)
        assert updated.cache is None
        assert updated.domain_size == session.domain_size

    def test_updating_a_superseded_session_raises(self, ring_graph, tmp_path):
        """A second update on the *old* session must fail loudly, not poison
        the cache with a half-patched catalog under a valid digest key."""
        session = EstimationSession.build(ring_graph, CONFIG, cache_dir=tmp_path)
        edges_4 = list(ring_graph.edges_with_label("4"))
        edges_8 = list(ring_graph.edges_with_label("8"))
        session.update(GraphDelta(removals=[tuple(edges_4[0])]))
        with pytest.raises(EngineError, match="stale session"):
            session.update(GraphDelta(removals=[tuple(edges_8[0])]))
        # Nothing was written for the would-be second update: the cache holds
        # exactly the original and first-update catalogs.
        cache = ArtifactCache(tmp_path)
        catalogs = [p for p in cache.artifact_files() if p.name.startswith("catalog-")]
        assert len(catalogs) == 2

    def test_update_with_graph_copy_leaves_retained_graph_untouched(
        self, ring_graph, ring_delta
    ):
        session = EstimationSession.build(ring_graph, CONFIG)
        edge_count = ring_graph.edge_count
        updated = session.update(ring_delta, graph=ring_graph.copy())
        assert ring_graph.edge_count == edge_count  # original not mutated
        assert updated.graph is not ring_graph
        cold = EstimationSession.build(updated.graph.copy(), CONFIG)
        assert np.array_equal(
            updated.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )

    def test_update_rejects_mismatched_graph_override(self, ring_graph, ring_delta):
        session = EstimationSession.build(ring_graph, CONFIG)
        other = ring_labeled_graph(8, 25, 120, seed=99)
        with pytest.raises(EngineError, match="stale session"):
            session.update(ring_delta, graph=other)

    def test_chained_updates(self, tmp_path):
        graph = zipf_labeled_graph(40, 200, 4, skew=0.6, seed=11)
        session = EstimationSession.build(graph, CONFIG, cache_dir=tmp_path)
        edges = list(graph.edges())
        first = GraphDelta(removals=[tuple(edges[0])])
        second = GraphDelta(removals=[tuple(edges[1])])
        session = session.update(first)
        session = session.update(second)
        cold = EstimationSession.build(session.graph.copy(), CONFIG)
        assert np.array_equal(
            session.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )
