"""Self-healing artifact cache: corrupt artifacts quarantine and rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.engine import EngineConfig, EstimationSession
from repro.engine.cache import ArtifactCache
from repro.exceptions import EngineError
from repro.graph.generators import zipf_labeled_graph
from repro.testing import corrupt_file, injector

CONFIG = EngineConfig(max_length=2, bucket_count=8)
PATHS = ["1/2", "2", "3/3", "2/1"]


@pytest.fixture(autouse=True)
def _clean_injector():
    injector.reset()
    yield
    injector.reset()


@pytest.fixture()
def graph():
    return zipf_labeled_graph(30, 90, 3, skew=1.0, seed=11, name="heal")


def _build(graph, cache, **kwargs):
    return EstimationSession.build(graph, CONFIG, cache_dir=cache, **kwargs)


def _npz_members(path):
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name].copy() for name in archive.files}


class TestCatalogHealing:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_npz_is_quarantined_and_rebuilt(self, graph, tmp_path, mode):
        cache = ArtifactCache(tmp_path)
        session = _build(graph, cache)
        key = session.stats.catalog_key
        npz = cache.catalog_path(key)
        reference = session.estimate_batch(PATHS)
        clean_members = _npz_members(npz)

        corrupt_file(npz, mode=mode)
        # The cache itself still *detects* — healing is the session's job.
        with pytest.raises(EngineError, match="corrupt cached catalog"):
            cache.load_catalog(key)

        healed = _build(graph, cache)
        assert healed.stats.extra["catalog_quarantined"] >= 1
        assert cache.quarantined >= 1
        assert npz.with_name(npz.name + ".corrupt").exists()
        assert np.array_equal(healed.estimate_batch(PATHS), reference)
        # The rebuilt artifact carries identical content to the original.
        rebuilt_members = _npz_members(npz)
        assert rebuilt_members.keys() == clean_members.keys()
        for name in clean_members:
            assert np.array_equal(rebuilt_members[name], clean_members[name])

    def test_corrupt_mmap_sidecar_is_quarantined(self, graph, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = _build(graph, cache)
        key = session.stats.catalog_key
        cache.store_catalog(key, session.catalog, mmap_sidecar=True)
        sidecar = cache.mmap_catalog_path(key)
        assert sidecar.exists()
        reference = session.estimate_batch(PATHS)

        corrupt_file(sidecar, mode="truncate")
        healed = _build(graph, cache, mmap=True)
        assert healed.stats.extra["catalog_quarantined"] >= 1
        assert not sidecar.exists()
        assert np.array_equal(healed.estimate_batch(PATHS), reference)

    def test_injected_load_error_also_heals(self, graph, tmp_path):
        cache = ArtifactCache(tmp_path)
        reference = _build(graph, cache).estimate_batch(PATHS)
        error = EngineError("corrupt cached catalog (injected)")
        with injector.armed("cache.load_catalog", error=error, times=1):
            healed = _build(graph, cache)
        assert healed.stats.extra["catalog_quarantined"] >= 1
        assert np.array_equal(healed.estimate_batch(PATHS), reference)


class TestSidecarArtifacts:
    def test_corrupt_histogram_is_quarantined(self, graph, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = _build(graph, cache)
        histograms = list(tmp_path.glob("histogram-*.json"))
        if not histograms:
            pytest.skip("this config caches no histogram artifact")
        reference = session.estimate_batch(PATHS)
        corrupt_file(histograms[0], mode="truncate")
        healed = _build(graph, cache)
        assert healed.stats.extra["histogram_quarantined"] >= 1
        assert np.array_equal(healed.estimate_batch(PATHS), reference)

    def test_corrupt_positions_is_quarantined(self, graph, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = _build(graph, cache)
        positions = list(tmp_path.glob("positions-*.npy"))
        if not positions:
            pytest.skip("this config caches no position-table artifact")
        reference = session.estimate_batch(PATHS)
        corrupt_file(positions[0], mode="truncate")
        healed = _build(graph, cache)
        assert healed.stats.extra["positions_quarantined"] >= 1
        assert np.array_equal(healed.estimate_batch(PATHS), reference)


class TestQuarantineVisibility:
    def test_artifact_files_and_cache_list_skip_quarantined(
        self, graph, tmp_path, capsys
    ):
        cache = ArtifactCache(tmp_path)
        session = _build(graph, cache)
        npz = cache.catalog_path(session.stats.catalog_key)
        corrupt_file(npz, mode="truncate")
        _build(graph, cache)

        marked = cache.quarantined_files()
        assert marked and all(path.suffix == ".corrupt" for path in marked)
        listed = cache.artifact_files()
        assert listed and not any(path.suffix == ".corrupt" for path in listed)
        assert cache.total_bytes() == sum(path.stat().st_size for path in listed)

        assert main(["engine", "cache", "list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert ".corrupt" not in out

    def test_quarantine_path_handles_missing_file(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.quarantine_path(tmp_path / "nope.npz") is None
        assert cache.quarantined == 0
