"""Tests for the artifact cache and the content fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArtifactCache, config_digest, graph_digest
from repro.exceptions import EngineError
from repro.graph.digraph import LabeledDiGraph


def edges():
    return [
        ("a", "x", "b"),
        ("b", "y", "c"),
        ("c", "x", "a"),
    ]


class TestGraphDigest:
    def test_deterministic(self):
        assert graph_digest(LabeledDiGraph(edges())) == graph_digest(
            LabeledDiGraph(edges())
        )

    def test_insertion_order_independent(self):
        assert graph_digest(LabeledDiGraph(edges())) == graph_digest(
            LabeledDiGraph(list(reversed(edges())))
        )

    def test_name_does_not_matter(self):
        assert graph_digest(LabeledDiGraph(edges(), name="one")) == graph_digest(
            LabeledDiGraph(edges(), name="two")
        )

    def test_edge_change_changes_digest(self):
        changed = edges() + [("a", "y", "c")]
        assert graph_digest(LabeledDiGraph(edges())) != graph_digest(
            LabeledDiGraph(changed)
        )

    def test_isolated_vertex_changes_digest(self):
        graph = LabeledDiGraph(edges())
        isolated = LabeledDiGraph(edges())
        isolated.add_vertex("zzz")
        assert graph_digest(graph) != graph_digest(isolated)

    def test_non_string_vertices(self):
        graph = LabeledDiGraph([(1, "x", 2), ((3, 4), "y", 1)])
        assert len(graph_digest(graph)) == 64


class TestConfigDigest:
    def test_key_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_value_change_changes_digest(self):
        assert config_digest({"a": 1}) != config_digest({"a": 2})


class TestArtifactCache:
    def test_roundtrip_catalog(self, small_catalog, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load_catalog("k") is None
        cache.store_catalog("k", small_catalog)
        loaded = cache.load_catalog("k")
        assert loaded is not None
        assert dict(loaded.items()) == dict(small_catalog.items())
        assert cache.hits == 1 and cache.misses == 1

    def test_roundtrip_positions(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        table = np.arange(37, dtype=np.int64)[::-1].copy()
        cache.store_positions("p", table)
        loaded = cache.load_positions("p")
        assert np.array_equal(loaded, table)

    def test_corrupt_catalog_raises(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.catalog_path("bad").write_text("{not json", encoding="utf-8")
        with pytest.raises(EngineError):
            cache.load_catalog("bad")

    def test_clear(self, small_catalog, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store_catalog("k", small_catalog)
        cache.store_positions("p", np.zeros(3, dtype=np.int64))
        assert len(cache.artifact_files()) == 2
        assert cache.clear() == 2
        assert cache.artifact_files() == []

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "deep" / "cache"
        ArtifactCache(nested)
        assert nested.is_dir()
