"""Round trips for the uncompressed mmap sidecars in the artifact cache.

``store_catalog(..., mmap_sidecar=True)`` writes ``.npy`` sidecars next to
the compressed ``.npz`` — a frequency vector for dense catalogs, the
``.nzi.npy``/``.nzv.npy`` nonzero pair for sparse ones — and
``load_catalog(..., mmap=True)`` adopts them as read-only memory maps.
Missing or stale sidecars fall back silently to the in-memory npz load;
fresh-but-damaged ones raise through the corrupt-artifact path so the
session quarantines the whole family.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine.cache import ArtifactCache
from repro.exceptions import EngineError
from repro.graph.generators import zipf_labeled_graph
from repro.paths.catalog import SelectivityCatalog

MAX_LENGTH = 3


@pytest.fixture()
def graph():
    return zipf_labeled_graph(40, 120, 4, skew=1.0, seed=13, name="g")


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


def _probe_indices(catalog: SelectivityCatalog) -> np.ndarray:
    """A few nonzero domain indices plus a zero one."""
    indices, _ = catalog.nonzero_arrays()
    probe = list(indices[:5])
    for candidate in range(catalog.domain_size):
        if candidate not in set(indices.tolist()):
            probe.append(candidate)
            break
    return np.asarray(probe, dtype=np.int64)


class TestDenseSidecar:
    def test_round_trip_is_mmap_backed_and_equal(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="dense")
        cache.store_catalog("k", original, mmap_sidecar=True)
        assert cache.mmap_catalog_path("k").exists()

        loaded = cache.load_catalog("k", mmap=True)
        assert loaded is not None
        assert loaded.mmap_backed
        assert loaded.storage == "dense"
        assert loaded.labels == original.labels
        assert np.array_equal(loaded.frequency_vector(), original.frequency_vector())
        probe = _probe_indices(original)
        assert np.array_equal(
            loaded.selectivities_at(probe), original.selectivities_at(probe)
        )

    def test_plain_load_ignores_sidecar(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="dense")
        cache.store_catalog("k", original, mmap_sidecar=True)
        loaded = cache.load_catalog("k")
        assert loaded is not None
        assert not loaded.mmap_backed

    def test_missing_sidecar_falls_back_to_npz(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="dense")
        cache.store_catalog("k", original, mmap_sidecar=True)
        cache.mmap_catalog_path("k").unlink()

        loaded = cache.load_catalog("k", mmap=True)
        assert loaded is not None
        assert not loaded.mmap_backed
        assert np.array_equal(loaded.frequency_vector(), original.frequency_vector())

    def test_stale_sidecar_falls_back_to_npz(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="dense")
        cache.store_catalog("k", original, mmap_sidecar=True)
        # Make the archive strictly newer than the sidecar: a store that
        # rewrote the npz without refreshing the sidecar must not be
        # served stale bytes.
        sidecar = cache.mmap_catalog_path("k")
        past = time.time() - 60
        os.utime(sidecar, (past, past))

        loaded = cache.load_catalog("k", mmap=True)
        assert loaded is not None
        assert not loaded.mmap_backed

    def test_fresh_corrupt_sidecar_raises_corrupt_artifact(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="dense")
        cache.store_catalog("k", original, mmap_sidecar=True)
        sidecar = cache.mmap_catalog_path("k")
        sidecar.write_bytes(b"not a npy file")

        with pytest.raises(EngineError, match="corrupt cached catalog"):
            cache.load_catalog("k", mmap=True)


class TestSparseSidecar:
    def test_round_trip_is_mmap_backed_and_equal(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
        cache.store_catalog("k", original, mmap_sidecar=True)
        assert cache.sparse_indices_path("k").exists()
        assert cache.sparse_values_path("k").exists()

        loaded = cache.load_catalog("k", mmap=True)
        assert loaded is not None
        assert loaded.mmap_backed
        assert loaded.storage == "sparse"
        assert loaded.nnz == original.nnz
        for mine, theirs in zip(loaded.nonzero_arrays(), original.nonzero_arrays()):
            assert np.array_equal(mine, theirs)
        probe = _probe_indices(original)
        assert np.array_equal(
            loaded.selectivities_at(probe), original.selectivities_at(probe)
        )

    def test_missing_half_of_pair_falls_back_to_npz(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
        cache.store_catalog("k", original, mmap_sidecar=True)
        cache.sparse_values_path("k").unlink()

        loaded = cache.load_catalog("k", mmap=True)
        assert loaded is not None
        assert not loaded.mmap_backed
        assert loaded.nnz == original.nnz

    def test_fresh_corrupt_pair_raises_corrupt_artifact(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
        cache.store_catalog("k", original, mmap_sidecar=True)
        cache.sparse_indices_path("k").write_bytes(b"garbage")

        with pytest.raises(EngineError, match="corrupt cached catalog"):
            cache.load_catalog("k", mmap=True)

    def test_mismatched_pair_raises_corrupt_artifact(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
        cache.store_catalog("k", original, mmap_sidecar=True)
        # A values sidecar of the wrong length is fresh and readable but
        # cannot belong to the indices next to it.
        np.save(
            cache.sparse_values_path("k"),
            np.arange(original.nnz + 3, dtype=np.int64),
        )
        # np.save appends .npy to a path that already ends differently —
        # make sure we actually overwrote the sidecar.
        assert cache.sparse_values_path("k").exists()

        with pytest.raises(EngineError, match="corrupt cached catalog"):
            cache.load_catalog("k", mmap=True)

    def test_quarantine_removes_sidecars(self, graph, cache):
        original = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
        cache.store_catalog("k", original, mmap_sidecar=True)
        assert cache.quarantine("k", kind="catalog")
        assert not cache.catalog_path("k").exists()
        assert not cache.sparse_indices_path("k").exists()
        assert not cache.sparse_values_path("k").exists()
