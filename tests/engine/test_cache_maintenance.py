"""Tests for artifact-cache eviction, pruning and memory-mapped loads."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.exceptions import EngineError
from repro.graph.generators import zipf_labeled_graph


def _graph(seed: int = 5, labels: int = 3):
    return zipf_labeled_graph(40, 160, labels, skew=1.0, seed=seed, name=f"g{seed}")


def _build(cache, *, seed: int = 5, max_length: int = 3, mmap: bool = False):
    config = EngineConfig(max_length=max_length, bucket_count=8)
    return EstimationSession.build(_graph(seed), config, cache_dir=cache, mmap=mmap)


class TestEvict:
    def test_evict_removes_exactly_one_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = _build(cache, seed=1)
        second = _build(cache, seed=2)
        assert first.stats.catalog_key != second.stats.catalog_key
        removed = cache.evict(first.stats.catalog_key)
        assert removed >= 1
        assert not cache.catalog_path(first.stats.catalog_key).exists()
        assert cache.catalog_path(second.stats.catalog_key).exists()
        assert cache.evict("no-such-key") == 0

    def test_total_bytes_tracks_artifacts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.total_bytes() == 0
        _build(cache)
        total = cache.total_bytes()
        assert total == sum(path.stat().st_size for path in cache.artifact_files())
        assert total > 0


class TestPrune:
    def test_prune_within_budget_is_a_no_op(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _build(cache)
        assert cache.prune(cache.total_bytes()) == []

    def test_prune_zero_clears_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        _build(cache)
        removed = cache.prune(0)
        assert len(removed) == len(set(removed)) >= 3
        assert cache.total_bytes() == 0

    def test_prune_negative_budget_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(EngineError):
            cache.prune(-1)

    def test_prune_removes_least_recently_used_first(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = _build(cache, seed=1)
        second = _build(cache, seed=2)
        old = time.time() - 3600
        for key in (first.stats.catalog_key,):
            os.utime(cache.catalog_path(key), (old, old))
        for key in (first.stats.histogram_key,):
            os.utime(cache.histogram_path(key), (old, old))
            os.utime(cache.positions_path(key), (old, old))
        fresh_bytes = sum(
            path.stat().st_size
            for path in (
                cache.catalog_path(second.stats.catalog_key),
                cache.histogram_path(second.stats.histogram_key),
                cache.positions_path(second.stats.histogram_key),
            )
        )
        removed = cache.prune(fresh_bytes)
        # Only the artificially aged artifacts of the first session go.
        assert {path.name for path in removed} == {
            cache.catalog_path(first.stats.catalog_key).name,
            cache.histogram_path(first.stats.histogram_key).name,
            cache.positions_path(first.stats.histogram_key).name,
        }
        assert cache.load_catalog(second.stats.catalog_key) is not None

    def test_loads_refresh_recency(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = _build(cache)
        key = session.stats.catalog_key
        old = time.time() - 3600
        os.utime(cache.catalog_path(key), (old, old))
        before = cache.catalog_path(key).stat().st_mtime
        assert cache.load_catalog(key) is not None
        after = cache.catalog_path(key).stat().st_mtime
        assert after > before


class TestMmap:
    def test_sidecar_written_for_large_domains(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        # |L|=3, k=6: domain 1092 >= 3^6 = 729 -> sidecar expected.
        session = _build(cache, max_length=6)
        assert cache.mmap_catalog_path(session.stats.catalog_key).exists()

    def test_no_sidecar_for_small_domains(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        session = _build(cache, max_length=3)
        assert not cache.mmap_catalog_path(session.stats.catalog_key).exists()

    def test_mmap_load_equals_regular_load(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = _build(cache, max_length=6)
        warm = _build(cache, max_length=6, mmap=True)
        vector = warm.catalog.frequency_vector()
        assert isinstance(vector, np.memmap)
        assert warm.stats.extra.get("catalog_mmap") is True
        assert np.array_equal(np.asarray(vector), cold.catalog.frequency_vector())
        paths = ["1/2/3", "2/2", "1/1/1/1/1/1"]
        assert np.allclose(warm.estimate_batch(paths), cold.estimate_batch(paths))
        assert warm.catalog.selectivity("1/2") == cold.catalog.selectivity("1/2")
        # The memory accounting treats mapped pages as reclaimable.
        assert warm.memory_bytes() < cold.memory_bytes()

    def test_mmap_request_without_sidecar_falls_back(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = _build(cache, max_length=3)  # small domain: no sidecar
        warm = _build(cache, max_length=3, mmap=True)
        assert not isinstance(warm.catalog.frequency_vector(), np.memmap)
        assert warm.stats.catalog_from_cache is True
        assert np.array_equal(
            warm.catalog.frequency_vector(), cold.catalog.frequency_vector()
        )

    def test_forced_sidecar_roundtrip(self, tmp_path):
        from repro.paths.catalog import SelectivityCatalog

        cache = ArtifactCache(tmp_path)
        catalog = SelectivityCatalog.from_graph(_graph(), 2)
        cache.store_catalog("forced", catalog, mmap_sidecar=True)
        loaded = cache.load_catalog("forced", mmap=True)
        assert isinstance(loaded.frequency_vector(), np.memmap)
        assert np.array_equal(
            np.asarray(loaded.frequency_vector()), catalog.frequency_vector()
        )
        assert loaded.labels == catalog.labels
        assert loaded.max_length == catalog.max_length


def test_no_sidecar_for_sparse_catalogs(tmp_path):
    from repro.engine import ArtifactCache
    from repro.paths.catalog import SelectivityCatalog

    cache = ArtifactCache(tmp_path)
    # |L|=2, k=7: domain 254 >= 2^6, but the explicit mask makes the mmap
    # load path fall back, so the sidecar must be suppressed.
    sparse = SelectivityCatalog(["a", "b"], 7, {"a": 3, "a/b": 1})
    assert not sparse.is_dense
    cache.store_catalog("sparse", sparse)
    assert not cache.mmap_catalog_path("sparse").exists()
    loaded = cache.load_catalog("sparse", mmap=True)
    assert loaded.selectivity("a") == 3 and loaded.selectivity("b/b") == 0
