"""Sparse-storage estimation sessions: lazy ranking, O(nnz) accounting,
artifact round trips and incremental updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.exceptions import EngineError
from repro.graph.delta import GraphDelta
from repro.graph.generators import zipf_labeled_graph
from repro.serving import SessionRegistry


@pytest.fixture(scope="module")
def graph():
    return zipf_labeled_graph(150, 220, 10, skew=0.8, seed=13, name="sparse-eng")


@pytest.fixture(scope="module")
def configs():
    shared = dict(max_length=4, ordering="sum-based", bucket_count=32)
    return (
        EngineConfig(storage="dense", **shared),
        EngineConfig(storage="sparse", **shared),
    )


@pytest.fixture(scope="module")
def sessions(graph, configs):
    dense_config, sparse_config = configs
    return (
        EstimationSession.build(graph, dense_config),
        EstimationSession.build(graph, sparse_config),
    )


class TestSparseSession:
    def test_storage_and_stats(self, sessions):
        dense, sparse = sessions
        assert dense.catalog.storage == "dense"
        assert sparse.catalog.storage == "sparse"
        assert sparse.stats.extra.get("lazy_positions") is True
        assert sparse.stats.extra.get("catalog_storage") == "sparse"
        assert sparse.stats.extra.get("catalog_nnz") == sparse.catalog.nnz

    def test_estimates_agree_with_dense_session(self, sessions):
        dense, sparse = sessions
        workload = [str(path) for path in dense.catalog.paths()][::7]
        assert np.allclose(
            dense.estimate_batch(workload), sparse.estimate_batch(workload)
        )

    def test_batch_agrees_with_scalar_loop(self, sessions):
        _, sparse = sessions
        workload = [str(path) for path in sparse.catalog.nonzero_paths()[:40]]
        batch = sparse.estimate_batch(workload)
        assert np.allclose(batch, [sparse.estimate(path) for path in workload])

    def test_positions_agree_with_ordering(self, sessions):
        _, sparse = sessions
        workload = ["1", "2/3", "4/5/6"]
        expected = [sparse.ordering.index(path) for path in workload]
        assert sparse.positions(workload).tolist() == expected
        assert sparse.position("2/3") == sparse.ordering.index("2/3")

    def test_memory_accounting_is_o_nnz(self, sessions):
        dense, sparse = sessions
        assert sparse.memory_bytes() < dense.memory_bytes() / 10
        assert sparse.memory_bytes() >= sparse.catalog.memory_bytes()

    def test_true_selectivity_served_from_sparse_catalog(self, sessions):
        dense, sparse = sessions
        for path in list(dense.catalog.nonzero_paths())[:10]:
            assert sparse.true_selectivity(path) == dense.true_selectivity(path)


class TestSparseArtifacts:
    def test_warm_start_round_trips_sparse_catalog(self, graph, configs, tmp_path):
        _, sparse_config = configs
        cache = ArtifactCache(tmp_path)
        cold = EstimationSession.build(graph, sparse_config, cache_dir=cache)
        assert not cold.stats.catalog_from_cache
        warm = EstimationSession.build(graph, sparse_config, cache_dir=cache)
        assert warm.stats.catalog_from_cache
        assert warm.catalog.storage == "sparse"
        assert np.array_equal(
            warm.catalog.nonzero_arrays()[0], cold.catalog.nonzero_arrays()[0]
        )
        workload = [str(path) for path in cold.catalog.nonzero_paths()[:25]]
        assert np.allclose(
            warm.estimate_batch(workload), cold.estimate_batch(workload)
        )

    def test_no_position_artifact_for_sparse_sessions(self, graph, configs, tmp_path):
        dense_config, sparse_config = configs
        cache = ArtifactCache(tmp_path)
        EstimationSession.build(graph, sparse_config, cache_dir=cache)
        assert not any(tmp_path.glob("positions-*.npy"))
        EstimationSession.build(graph, dense_config, cache_dir=cache)
        assert any(tmp_path.glob("positions-*.npy"))

    def test_no_mmap_sidecar_for_sparse_catalogs(self, graph, configs, tmp_path):
        _, sparse_config = configs
        cache = ArtifactCache(tmp_path)
        session = EstimationSession.build(graph, sparse_config, cache_dir=cache)
        cache.store_catalog("forced", session.catalog, mmap_sidecar=True)
        assert not cache.mmap_catalog_path("forced").exists()
        loaded = cache.load_catalog("forced", mmap=True)
        assert loaded.storage == "sparse"

    def test_storage_modes_do_not_alias_artifacts(self, graph, configs, tmp_path):
        dense_config, sparse_config = configs
        cache = ArtifactCache(tmp_path)
        dense = EstimationSession.build(graph, dense_config, cache_dir=cache)
        sparse = EstimationSession.build(graph, sparse_config, cache_dir=cache)
        assert dense.stats.catalog_key != sparse.stats.catalog_key
        assert not sparse.stats.catalog_from_cache


class TestSparseUpdate:
    def test_update_matches_cold_rebuild(self, graph, configs, tmp_path):
        _, sparse_config = configs
        session = EstimationSession.build(
            graph.copy(), sparse_config, cache_dir=ArtifactCache(tmp_path)
        )
        label = sorted(graph.labels())[2]
        removals = list(graph.edges_with_label(label))[:3]
        delta = GraphDelta(removals=removals)
        updated = session.update(delta)
        assert updated.catalog.storage == "sparse"
        assert updated.stats.extra.get("delta_full_rebuild") is False
        cold_graph = graph.copy()
        delta.apply(cold_graph)
        cold = EstimationSession.build(cold_graph, sparse_config)
        assert np.array_equal(
            updated.catalog.nonzero_arrays()[0], cold.catalog.nonzero_arrays()[0]
        )
        assert np.array_equal(
            updated.catalog.nonzero_arrays()[1], cold.catalog.nonzero_arrays()[1]
        )
        workload = [str(path) for path in cold.catalog.nonzero_paths()[:20]]
        assert np.allclose(
            updated.estimate_batch(workload), cold.estimate_batch(workload)
        )

    def test_stale_update_still_guarded(self, graph, configs):
        _, sparse_config = configs
        session = EstimationSession.build(graph.copy(), sparse_config)
        delta = GraphDelta(removals=[tuple(next(iter(session.graph.edges())))])
        session.update(delta)  # mutates the retained graph
        with pytest.raises(EngineError, match="stale session"):
            session.update(delta)


class TestSparseServing:
    def test_registry_serves_sparse_sessions(self, graph, configs):
        _, sparse_config = configs
        registry = SessionRegistry(default_config=sparse_config)
        registry.register("sparse-graph", graph=graph)
        session = registry.get("sparse-graph")
        assert session.catalog.storage == "sparse"
        row = registry.describe()[0]
        assert row["storage"] == "sparse"
        assert row["catalog_storage"] == "sparse"
        assert row["memory_bytes"] == session.memory_bytes()
        assert registry.memory_bytes() == session.memory_bytes()
