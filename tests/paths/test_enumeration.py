"""Tests for label-path enumeration and bulk selectivity computation."""

from __future__ import annotations

import pytest

from repro.exceptions import PathError
from repro.paths.enumeration import (
    compute_selectivities,
    domain_size,
    enumerate_label_paths,
)
from repro.paths.evaluation import MatrixPathEvaluator
from repro.paths.label_path import LabelPath


class TestDomainSize:
    def test_paper_moreno_value(self):
        # 6 labels, k=6: 6 + 36 + ... + 6^6 = 55986 (the paper rounds to 55996).
        assert domain_size(6, 6) == sum(6**i for i in range(1, 7))

    def test_small_cases(self):
        assert domain_size(3, 2) == 12
        assert domain_size(2, 3) == 14
        assert domain_size(1, 5) == 5

    def test_validation(self):
        with pytest.raises(PathError):
            domain_size(0, 2)
        with pytest.raises(PathError):
            domain_size(3, 0)


class TestEnumeration:
    def test_order_is_length_then_alphabetical(self):
        paths = [str(p) for p in enumerate_label_paths(["b", "a"], 2)]
        assert paths == ["a", "b", "a/a", "a/b", "b/a", "b/b"]

    def test_count_matches_domain_size(self):
        paths = list(enumerate_label_paths(["1", "2", "3"], 3))
        assert len(paths) == domain_size(3, 3)
        assert len(set(paths)) == len(paths)

    def test_invalid_arguments(self):
        with pytest.raises(PathError):
            list(enumerate_label_paths(["a"], 0))
        with pytest.raises(PathError):
            list(enumerate_label_paths([], 2))


class TestComputeSelectivities:
    def test_matches_direct_evaluation(self, triangle_graph):
        selectivities = compute_selectivities(triangle_graph, 3)
        evaluator = MatrixPathEvaluator(triangle_graph)
        for path, value in selectivities.items():
            assert value == evaluator.selectivity(path), f"mismatch on {path}"

    def test_covers_whole_domain(self, triangle_graph):
        selectivities = compute_selectivities(triangle_graph, 2)
        assert len(selectivities) == domain_size(3, 2)

    def test_prune_empty_drops_zero_subtrees(self, triangle_graph):
        pruned = compute_selectivities(triangle_graph, 3, prune_empty=True)
        assert all(value > 0 for value in pruned.values())
        full = compute_selectivities(triangle_graph, 3)
        nonzero_full = {p: v for p, v in full.items() if v > 0}
        assert pruned == nonzero_full

    def test_zero_subtree_recorded_when_not_pruned(self, triangle_graph):
        selectivities = compute_selectivities(triangle_graph, 3)
        # z/z is empty, and so must every extension of it be.
        assert selectivities[LabelPath.parse("z/z")] == 0
        assert selectivities[LabelPath.parse("z/z/x")] == 0

    def test_label_restriction(self, triangle_graph):
        selectivities = compute_selectivities(triangle_graph, 2, labels=["x", "y"])
        assert len(selectivities) == domain_size(2, 2)
        assert all(set(path.labels) <= {"x", "y"} for path in selectivities)

    def test_progress_callback_invoked(self, small_graph):
        calls: list[int] = []
        compute_selectivities(small_graph, 2, progress=calls.append)
        # The callback fires every 1000 paths; the k=2 domain of 4 labels has
        # only 20 paths, so it may legitimately never fire — use k=3 instead.
        calls_k3: list[int] = []
        compute_selectivities(small_graph, 3, progress=calls_k3.append)
        assert calls == [] and calls_k3 == []  # 84 paths < 1000: never fires

    def test_invalid_max_length(self, triangle_graph):
        with pytest.raises(PathError):
            compute_selectivities(triangle_graph, 0)
