"""Tests for the canonical path ↔ domain-index arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PathError, UnknownLabelError
from repro.paths.enumeration import domain_size, enumerate_label_paths
from repro.paths.index import (
    domain_block_starts,
    domain_index_to_path,
    domain_indices_to_paths,
    path_to_domain_index,
    paths_to_domain_indices,
)
from repro.paths.label_path import LabelPath

ALPHABET = ("a", "b", "c")


class TestBlockStarts:
    def test_values(self):
        starts = domain_block_starts(3, 4)
        assert starts.tolist() == [0, 3, 12, 39, 120]
        assert starts[-1] == domain_size(3, 4)

    def test_single_label(self):
        assert domain_block_starts(1, 5).tolist() == [0, 1, 2, 3, 4, 5]

    def test_validation(self):
        with pytest.raises(PathError):
            domain_block_starts(0, 2)
        with pytest.raises(PathError):
            domain_block_starts(2, 0)


class TestScalarRoundTrip:
    def test_matches_enumeration_order(self):
        # The arithmetic must agree index-for-index with the canonical
        # enumeration — this is the contract the columnar catalog rests on.
        for expected, path in enumerate(enumerate_label_paths(ALPHABET, 3)):
            assert path_to_domain_index(path, ALPHABET) == expected
            assert domain_index_to_path(expected, ALPHABET) == path

    def test_domain_boundaries(self):
        # First/last path of every length block, and the domain edges.
        base, k = len(ALPHABET), 4
        starts = domain_block_starts(base, k)
        for length in range(1, k + 1):
            first = LabelPath(("a",) * length)
            last = LabelPath(("c",) * length)
            assert path_to_domain_index(first, ALPHABET) == starts[length - 1]
            assert path_to_domain_index(last, ALPHABET) == starts[length] - 1
            assert domain_index_to_path(int(starts[length - 1]), ALPHABET) == first
            assert domain_index_to_path(int(starts[length]) - 1, ALPHABET) == last

    def test_unsorted_alphabet_is_canonicalised(self):
        assert path_to_domain_index("a", ("c", "b", "a")) == 0
        assert domain_index_to_path(0, ("c", "b", "a")) == LabelPath.parse("a")

    def test_string_input(self):
        assert path_to_domain_index("a/b", ALPHABET) == 3 + 1

    def test_unknown_label(self):
        with pytest.raises(UnknownLabelError):
            path_to_domain_index("z", ALPHABET)

    def test_negative_index(self):
        with pytest.raises(PathError):
            domain_index_to_path(-1, ALPHABET)

    def test_label_path_methods(self):
        path = LabelPath.parse("b/c/a")
        index = path.domain_index(ALPHABET)
        assert LabelPath.from_domain_index(index, ALPHABET) == path


class TestVectorised:
    def test_batch_matches_scalar(self):
        paths = list(enumerate_label_paths(ALPHABET, 3))
        indices = paths_to_domain_indices(paths, ALPHABET)
        assert indices.tolist() == list(range(domain_size(3, 3)))

    def test_batch_unrank_round_trip(self):
        size = domain_size(3, 4)
        indices = np.arange(size)
        paths = domain_indices_to_paths(indices, ALPHABET, 4)
        recovered = paths_to_domain_indices(paths, ALPHABET)
        assert np.array_equal(recovered, indices)

    def test_batch_boundary_indices(self):
        starts = domain_block_starts(3, 3)
        boundary = [0, 2, 3, 11, 12, int(starts[-1]) - 1]
        paths = domain_indices_to_paths(boundary, ALPHABET, 3)
        assert [str(p) for p in paths] == ["a", "c", "a/a", "c/c", "a/a/a", "c/c/c"]

    def test_batch_rejects_out_of_range(self):
        with pytest.raises(PathError):
            domain_indices_to_paths([domain_size(3, 2)], ALPHABET, 2)
        with pytest.raises(PathError):
            domain_indices_to_paths([-1], ALPHABET, 2)

    def test_batch_rejects_too_long(self):
        with pytest.raises(PathError):
            paths_to_domain_indices(["a/a/a"], ALPHABET, max_length=2)

    def test_batch_unknown_label(self):
        with pytest.raises(UnknownLabelError):
            paths_to_domain_indices(["a", "z"], ALPHABET)

    def test_empty_batch(self):
        assert paths_to_domain_indices([], ALPHABET).size == 0
        assert domain_indices_to_paths([], ALPHABET, 2) == []

    def test_mixed_lengths_in_input_order(self):
        texts = ["c/c", "a", "b/a/c", "b"]
        indices = paths_to_domain_indices(texts, ALPHABET)
        expected = [path_to_domain_index(t, ALPHABET) for t in texts]
        assert indices.tolist() == expected
