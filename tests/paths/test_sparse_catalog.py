"""Sparse/dense storage equivalence of :class:`SelectivityCatalog`.

Every test here pins the tentpole contract: the two storage modes are the
same logical catalog — identical lookups, aggregates, persistence and delta
patches — differing only in memory shape (O(nnz) vs O(|Lk|)).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PathError
from repro.graph.delta import GraphDelta
from repro.graph.generators import zipf_labeled_graph
from repro.paths.catalog import (
    SPARSE_AUTO_MIN_DOMAIN,
    SelectivityCatalog,
)
from repro.paths.enumeration import compute_selectivity_vector


@pytest.fixture(scope="module")
def sparse_graph():
    """A 10-label graph whose k=4 domain (11,110 paths) is mostly zero."""
    return zipf_labeled_graph(150, 220, 10, skew=0.8, seed=13, name="sparse-mod")


@pytest.fixture(scope="module")
def catalog_pair(sparse_graph):
    dense = SelectivityCatalog.from_graph(sparse_graph, 4, storage="dense")
    sparse = SelectivityCatalog.from_graph(sparse_graph, 4, storage="sparse")
    return dense, sparse


class TestStorageModes:
    def test_from_graph_modes_agree(self, catalog_pair):
        dense, sparse = catalog_pair
        assert dense.storage == "dense"
        assert sparse.storage == "sparse"
        assert np.array_equal(dense.frequency_vector(), sparse.frequency_vector())
        di, dv = dense.nonzero_arrays()
        si, sv = sparse.nonzero_arrays()
        assert np.array_equal(di, si)
        assert np.array_equal(dv, sv)

    def test_auto_resolves_sparse_for_large_sparse_domain(self, sparse_graph):
        auto = SelectivityCatalog.from_graph(sparse_graph, 4)
        assert auto.domain_size >= SPARSE_AUTO_MIN_DOMAIN
        assert auto.storage == "sparse"

    def test_auto_resolves_dense_for_small_domain(self, sparse_graph):
        auto = SelectivityCatalog.from_graph(sparse_graph, 2)
        assert auto.domain_size < SPARSE_AUTO_MIN_DOMAIN
        assert auto.storage == "dense"

    def test_auto_on_dense_vector_respects_density(self):
        # |L|=2, k=12 -> domain 8190, above the auto threshold.
        domain = 2**13 - 2
        assert domain >= SPARSE_AUTO_MIN_DOMAIN
        dense_vector = np.arange(1, domain + 1, dtype=np.int64)
        assert SelectivityCatalog(["a", "b"], 12, dense_vector).storage == "dense"
        sparse_vector = np.zeros(domain, dtype=np.int64)
        sparse_vector[7] = 5
        assert SelectivityCatalog(["a", "b"], 12, sparse_vector).storage == "sparse"

    def test_point_and_batch_lookups_agree(self, catalog_pair):
        dense, sparse = catalog_pair
        for path in dense.nonzero_paths()[:25]:
            assert sparse.selectivity(path) == dense.selectivity(path)
        assert sparse.label_selectivities() == dense.label_selectivities()
        indices = np.arange(0, dense.domain_size, 97, dtype=np.int64)
        assert np.array_equal(
            sparse.selectivities_at(indices), dense.selectivities_at(indices)
        )

    def test_aggregates_and_len_agree(self, catalog_pair):
        dense, sparse = catalog_pair
        assert sparse.total_selectivity() == dense.total_selectivity()
        assert sparse.max_selectivity() == dense.max_selectivity()
        assert len(sparse) == len(dense) == dense.domain_size
        assert sparse.nnz == dense.nnz
        assert sparse.density == dense.density
        assert sparse.is_dense and dense.is_dense

    def test_memory_bytes_is_o_nnz(self, catalog_pair):
        dense, sparse = catalog_pair
        assert sparse.memory_bytes() == 16 * sparse.nnz
        assert dense.memory_bytes() == 8 * dense.domain_size
        assert sparse.memory_bytes() < dense.memory_bytes() / 4

    def test_restrict_preserves_storage_and_values(self, catalog_pair):
        dense, sparse = catalog_pair
        restricted = sparse.restrict(2)
        assert restricted.storage == "sparse"
        assert np.array_equal(
            restricted.frequency_vector(), dense.restrict(2).frequency_vector()
        )

    def test_nonzero_paths_agree(self, catalog_pair):
        dense, sparse = catalog_pair
        assert sparse.nonzero_paths() == dense.nonzero_paths()

    def test_conversions_round_trip(self, catalog_pair):
        dense, sparse = catalog_pair
        assert sparse.to_sparse() is sparse
        assert dense.to_dense() is dense
        assert np.array_equal(
            sparse.to_dense().frequency_vector(), dense.frequency_vector()
        )
        back = dense.to_sparse()
        assert back.storage == "sparse"
        assert np.array_equal(
            back.nonzero_arrays()[0], sparse.nonzero_arrays()[0]
        )

    def test_explicit_mask_catalog_refuses_sparse_conversion(self):
        pruned = SelectivityCatalog(["a", "b"], 2, {"a": 3})
        assert not pruned.is_dense
        with pytest.raises(PathError):
            pruned.to_sparse()


class TestSparseValidation:
    def test_rejects_unsorted_indices(self):
        with pytest.raises(PathError, match="strictly increasing"):
            SelectivityCatalog(
                ["a", "b"], 3, (np.array([5, 2]), np.array([1, 1])), storage="sparse"
            )

    def test_rejects_duplicate_indices(self):
        with pytest.raises(PathError, match="strictly increasing"):
            SelectivityCatalog(
                ["a", "b"], 3, (np.array([2, 2]), np.array([1, 1])), storage="sparse"
            )

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(PathError, match="out of range"):
            SelectivityCatalog(
                ["a", "b"], 2, (np.array([6]), np.array([1])), storage="sparse"
            )

    def test_rejects_negative_values(self):
        with pytest.raises(PathError, match="negative selectivity"):
            SelectivityCatalog(
                ["a", "b"], 2, (np.array([1]), np.array([-4])), storage="sparse"
            )

    def test_rejects_unknown_storage_mode(self):
        with pytest.raises(PathError, match="storage mode"):
            SelectivityCatalog(["a"], 1, {"a": 1}, storage="columnar")

    def test_explicit_zero_values_are_dropped(self):
        catalog = SelectivityCatalog(
            ["a", "b"], 2, (np.array([0, 3]), np.array([2, 0])), storage="sparse"
        )
        assert catalog.nnz == 1
        assert catalog.selectivity("a") == 2


class TestMappingBranch:
    def test_duplicate_paths_are_detected(self):
        with pytest.raises(PathError, match="duplicate path"):
            SelectivityCatalog(["a", "b"], 2, {"a/b": 1, ("a", "b"): 2})

    def test_negative_value_names_the_path(self):
        with pytest.raises(PathError, match="negative selectivity for a/b"):
            SelectivityCatalog(["a", "b"], 2, {"a": 1, "a/b": -3})

    def test_mapping_defaults_to_dense_with_mask(self):
        catalog = SelectivityCatalog(["a", "b"], 2, {"a": 3, "a/b": 0})
        assert catalog.storage == "dense"
        assert not catalog.is_dense
        assert len(catalog) == 2

    def test_mapping_with_sparse_storage_covers_domain(self):
        catalog = SelectivityCatalog(
            ["a", "b"], 2, {"a": 3, "a/b": 0}, storage="sparse"
        )
        assert catalog.storage == "sparse"
        assert catalog.is_dense
        assert len(catalog) == catalog.domain_size
        assert catalog.nnz == 1
        assert catalog.selectivity("a/b") == 0

    def test_full_mapping_sparse_matches_dense(self, catalog_pair):
        dense, _ = catalog_pair
        mapping = {str(path): value for path, value in dense.items()}
        rebuilt = SelectivityCatalog(
            dense.labels, dense.max_length, mapping, storage="sparse"
        )
        assert np.array_equal(rebuilt.frequency_vector(), dense.frequency_vector())


class TestPersistence:
    def test_npz_round_trips_both_modes(self, catalog_pair, tmp_path):
        dense, sparse = catalog_pair
        for catalog, name in ((dense, "dense"), (sparse, "sparse")):
            target = tmp_path / f"{name}.npz"
            catalog.save_npz(target)
            loaded = SelectivityCatalog.load(target)
            assert loaded.storage == catalog.storage
            assert np.array_equal(
                loaded.frequency_vector(), catalog.frequency_vector()
            )
            assert loaded.graph_name == catalog.graph_name

    def test_sparse_npz_stores_only_nonzero_arrays(self, catalog_pair, tmp_path):
        # The on-disk layout must be O(nnz) too: no dense frequencies member.
        # (The *size* advantage only materialises at large domains — deflate
        # compresses runs of zeros extremely well — and is enforced by the
        # benchmark floor on the 64M-entry graph, not here.)
        _, sparse = catalog_pair
        target = tmp_path / "s.npz"
        sparse.save_npz(target)
        with np.load(target, allow_pickle=False) as archive:
            assert "nz_indices" in archive.files
            assert "nz_values" in archive.files
            assert "frequencies" not in archive.files
            assert archive["nz_indices"].size == sparse.nnz

    def test_legacy_v1_archive_still_loads(self, catalog_pair, tmp_path):
        dense, _ = catalog_pair
        target = tmp_path / "v1.npz"
        arrays = {
            "format_version": np.asarray(1, dtype=np.int64),
            "labels": np.asarray(dense.labels, dtype=np.str_),
            "max_length": np.asarray(dense.max_length, dtype=np.int64),
            "graph_name": np.asarray(dense.graph_name, dtype=np.str_),
            "frequencies": dense.frequency_vector(),
        }
        with open(target, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = SelectivityCatalog.load(target)
        assert loaded.storage == "dense"
        assert np.array_equal(loaded.frequency_vector(), dense.frequency_vector())

    def test_json_document_identical_across_modes(self, catalog_pair):
        dense, sparse = catalog_pair
        assert dense.to_dict() == sparse.to_dict()


class TestSparseDelta:
    def test_apply_delta_matches_cold_rebuild(self, sparse_graph, catalog_pair):
        dense, sparse = catalog_pair
        label = sorted(sparse_graph.labels())[1]
        removals = list(sparse_graph.edges_with_label(label))[:4]
        additions = [(0, label, 1)]
        additions = [
            triple
            for triple in additions
            if not sparse_graph.has_edge(*triple)
        ]
        delta = GraphDelta(additions=additions, removals=removals)
        updated = sparse_graph.copy()
        delta.apply(updated)

        patched_sparse = sparse.apply_delta(updated, delta)
        patched_dense = dense.apply_delta(updated, delta)
        cold = compute_selectivity_vector(updated, 4)
        assert patched_sparse.storage == "sparse"
        assert patched_dense.storage == "dense"
        assert np.array_equal(patched_sparse.frequency_vector(), cold)
        assert np.array_equal(patched_dense.frequency_vector(), cold)
        assert not sparse.delta_requires_full_rebuild(updated)

    def test_alphabet_change_falls_back_and_keeps_storage(self, sparse_graph, catalog_pair):
        _, sparse = catalog_pair
        delta = GraphDelta(additions=[(0, "zz-new", 1)])
        updated = sparse_graph.copy()
        delta.apply(updated)
        assert sparse.delta_requires_full_rebuild(updated)
        rebuilt = sparse.apply_delta(updated, delta)
        assert rebuilt.storage == "sparse"
        assert np.array_equal(
            rebuilt.frequency_vector(),
            compute_selectivity_vector(updated, 4),
        )


class TestEdgeCases:
    def test_all_zero_subtree_label(self):
        # A label in the alphabet with no edges at all: its whole first-label
        # subtree is zero and must simply be absent from the sparse arrays.
        graph = zipf_labeled_graph(40, 60, 3, skew=0.6, seed=5)
        labels = sorted(graph.labels()) + ["unused"]
        dense = SelectivityCatalog.from_graph(
            graph, 3, labels=labels, storage="dense"
        )
        sparse = SelectivityCatalog.from_graph(
            graph, 3, labels=labels, storage="sparse"
        )
        assert np.array_equal(dense.frequency_vector(), sparse.frequency_vector())
        assert sparse.selectivity("unused") == 0
        assert sparse.selectivity("unused/unused") == 0

    def test_empty_sparse_catalog(self):
        empty = SelectivityCatalog(
            ["a", "b"],
            3,
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
            storage="sparse",
        )
        assert empty.nnz == 0
        assert empty.total_selectivity() == 0
        assert empty.max_selectivity() == 0
        assert empty.selectivity("a/b/a") == 0
        assert np.array_equal(
            empty.selectivities_at([0, 1, 2]), np.zeros(3, dtype=np.int64)
        )
        assert empty.nonzero_paths() == []

    def test_single_nonzero_catalog(self):
        one = SelectivityCatalog(
            ["a", "b"], 3, (np.array([5]), np.array([7])), storage="sparse"
        )
        assert one.nnz == 1
        assert [str(path) for path in one.nonzero_paths()] == ["b/b"]
        assert one.selectivity("b/b") == 7
        assert one.total_selectivity() == 7
        items = dict(one.items())
        assert len(items) == one.domain_size
        assert sum(items.values()) == 7
