"""Tests for path-query evaluation (BFS and matrix evaluators)."""

from __future__ import annotations

import pytest

from repro.paths.enumeration import enumerate_label_paths
from repro.paths.evaluation import (
    BFSPathEvaluator,
    MatrixPathEvaluator,
    evaluate_path,
    path_selectivity,
)


class TestTriangleTruths:
    """Hand-checked truths on the fixture graph."""

    def test_single_labels(self, triangle_graph):
        assert path_selectivity(triangle_graph, "x") == 3
        assert path_selectivity(triangle_graph, "y") == 2
        assert path_selectivity(triangle_graph, "z") == 1

    def test_two_hop_pairs(self, triangle_graph):
        assert evaluate_path(triangle_graph, "x/y") == {("a", "c"), ("a", "d")}
        assert evaluate_path(triangle_graph, "y/y") == {("b", "d")}
        assert evaluate_path(triangle_graph, "z/x") == {("d", "b"), ("d", "c")}

    def test_three_hop(self, triangle_graph):
        # x/y/? : a-x->b-y->c-y->d ; a-x->c-y->d (no further y)
        assert evaluate_path(triangle_graph, "x/y/y") == {("a", "d")}

    def test_unknown_label_yields_empty(self, triangle_graph):
        assert evaluate_path(triangle_graph, "x/q") == set()
        assert path_selectivity(triangle_graph, "q") == 0

    def test_distinct_pairs_not_paths(self, triangle_graph):
        # Both a-x->b-y->c and (no other) — but a-x->c and a-x->b-?; ensure the
        # count is of distinct pairs even when multiple paths share endpoints.
        triangle_graph_copy = triangle_graph.copy()
        triangle_graph_copy.add_edge("a", "x", "d")
        triangle_graph_copy.add_edge("d", "y", "c")
        # Now a reaches c via b and via d with x/y, but the pair counts once.
        assert MatrixPathEvaluator(triangle_graph_copy).selectivity("x/y") == len(
            MatrixPathEvaluator(triangle_graph_copy).pairs("x/y")
        )


class TestEvaluatorAgreement:
    @pytest.mark.parametrize("max_length", [1, 2, 3])
    def test_bfs_and_matrix_agree_on_all_paths(self, small_graph, max_length):
        bfs = BFSPathEvaluator(small_graph)
        matrix = MatrixPathEvaluator(small_graph)
        for path in enumerate_label_paths(small_graph.labels(), max_length):
            if path.length != max_length:
                continue
            assert bfs.pairs(path) == matrix.pairs(path), f"mismatch on {path}"

    def test_selectivity_equals_pair_count(self, small_graph):
        matrix = MatrixPathEvaluator(small_graph)
        for path in enumerate_label_paths(small_graph.labels(), 2):
            assert matrix.selectivity(path) == len(matrix.pairs(path))

    def test_bfs_unknown_first_label(self, triangle_graph):
        assert BFSPathEvaluator(triangle_graph).pairs("q/x") == set()

    def test_bfs_unknown_middle_label(self, triangle_graph):
        assert BFSPathEvaluator(triangle_graph).pairs("x/q") == set()

    def test_matrix_store_shared(self, triangle_graph):
        from repro.graph.matrices import LabelMatrixStore

        store = LabelMatrixStore(triangle_graph)
        evaluator = MatrixPathEvaluator(triangle_graph, store=store)
        assert evaluator.store is store
        assert evaluator.graph is triangle_graph
