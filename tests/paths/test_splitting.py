"""Tests for base label sets and the greedy splitting rule."""

from __future__ import annotations

import pytest

from repro.exceptions import PathError
from repro.paths.label_path import LabelPath
from repro.paths.splitting import (
    BaseLabelSet,
    GreedySplitter,
    edge_label_base_set,
    length_bounded_base_set,
)


class TestBaseLabelSet:
    def test_edge_label_base_set(self):
        base = edge_label_base_set(["a", "b"])
        assert len(base) == 2
        assert LabelPath.parse("a") in base
        assert base.max_member_length == 1

    def test_length_bounded_base_set(self):
        base = length_bounded_base_set(["a", "b"], 2)
        assert len(base) == 6  # a, b, aa, ab, ba, bb
        assert LabelPath.parse("a/b") in base
        assert base.max_member_length == 2

    def test_missing_single_labels_rejected(self):
        with pytest.raises(PathError, match="missing"):
            BaseLabelSet([LabelPath.parse("a")], ["a", "b"])

    def test_member_with_foreign_label_rejected(self):
        with pytest.raises(PathError):
            BaseLabelSet([LabelPath.parse("a"), LabelPath.parse("c")], ["a"])

    def test_sorted_members_deterministic(self):
        base = length_bounded_base_set(["b", "a"], 2)
        members = base.sorted_members()
        assert members[0] == LabelPath.parse("a")
        assert members == sorted(members, key=lambda p: (p.length, p.labels))

    def test_invalid_bound(self):
        with pytest.raises(PathError):
            length_bounded_base_set(["a"], 0)


class TestGreedySplitter:
    def test_single_label_base_splits_into_labels(self):
        splitter = GreedySplitter(edge_label_base_set(["1", "2"]))
        assert splitter.split("1/2/1") == [
            LabelPath.parse("1"),
            LabelPath.parse("2"),
            LabelPath.parse("1"),
        ]

    def test_paper_example_over_l2(self):
        # "4/4/3/3/6" over B = L2 splits into "4/4", "3/3", "6" (Section 3.1).
        labels = ["3", "4", "6"]
        splitter = GreedySplitter(length_bounded_base_set(labels, 2))
        assert [str(piece) for piece in splitter.split("4/4/3/3/6")] == ["4/4", "3/3", "6"]

    def test_greedy_prefers_longest_piece(self):
        labels = ["a", "b"]
        splitter = GreedySplitter(length_bounded_base_set(labels, 2))
        assert [str(p) for p in splitter.split("a/b/a")] == ["a/b", "a"]

    def test_piece_count(self):
        splitter = GreedySplitter(length_bounded_base_set(["a", "b"], 2))
        assert splitter.piece_count("a/b/a/b") == 2
        assert splitter.piece_count("a") == 1

    def test_base_set_property(self):
        base = edge_label_base_set(["a"])
        assert GreedySplitter(base).base_set is base
