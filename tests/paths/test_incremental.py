"""Tests for incremental catalog updates (`update_selectivity_vector` /
`SelectivityCatalog.apply_delta`): patched results must be byte-identical to
cold rebuilds, across graph shapes, delta mixes and backends."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.exceptions import GraphError, PathError
from repro.graph.delta import GraphDelta, affected_first_labels
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import (
    erdos_renyi_graph,
    ring_labeled_graph,
    zipf_labeled_graph,
)
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import (
    compute_selectivity_vector,
    update_selectivity_vector,
)


def random_delta(
    graph: LabeledDiGraph, seed: int, *, additions: int, removals: int
) -> GraphDelta:
    """A mixed delta over the graph's existing alphabet and vertex ids."""
    rng = random.Random(seed)
    labels = graph.labels()
    removed = [
        tuple(edge) for edge in rng.sample(list(graph.edges()), removals)
    ]
    vertex_pool = list(graph.vertices())
    added: set[tuple[object, str, object]] = set()
    while len(added) < additions:
        triple = (
            rng.choice(vertex_pool),
            rng.choice(labels),
            rng.choice(vertex_pool),
        )
        if not graph.has_edge(*triple) and triple not in removed:
            added.add(triple)
    return GraphDelta(additions=sorted(added, key=repr), removals=removed)


def assert_incremental_matches_cold(graph, delta, max_length, **kwargs):
    old_vector = compute_selectivity_vector(graph, max_length)
    updated = graph.copy()
    delta.apply(updated)
    alphabet = sorted(graph.labels())
    cold = compute_selectivity_vector(updated, max_length, labels=alphabet)
    patched = update_selectivity_vector(
        updated, max_length, old_vector, delta, labels=alphabet, **kwargs
    )
    assert patched.dtype == np.int64
    assert np.array_equal(cold, patched)
    return updated, old_vector, cold, patched


class TestUpdateSelectivityVector:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_delta_on_random_graph(self, seed):
        graph = zipf_labeled_graph(50, 300, 4, skew=0.8, seed=seed)
        delta = random_delta(graph, seed + 10, additions=12, removals=12)
        assert_incremental_matches_cold(graph, delta, 3)

    def test_additions_only(self):
        graph = erdos_renyi_graph(40, 160, 3, seed=5)
        delta = random_delta(graph, 6, additions=15, removals=0)
        assert_incremental_matches_cold(graph, delta, 3)

    def test_removals_only(self):
        graph = erdos_renyi_graph(40, 160, 3, seed=7)
        delta = random_delta(graph, 8, additions=0, removals=15)
        assert_incremental_matches_cold(graph, delta, 3)

    def test_new_vertices_grow_the_matrices(self):
        graph = zipf_labeled_graph(30, 120, 3, seed=9)
        label = graph.labels()[0]
        delta = GraphDelta(additions=[("new-u", label, "new-v")])
        assert_incremental_matches_cold(graph, delta, 2)

    def test_ring_delta_only_touches_affected_slices(self):
        graph = ring_labeled_graph(8, 25, 120, seed=4)
        edges = list(graph.edges_with_label("4"))
        delta = GraphDelta(removals=edges[:6])
        updated, old_vector, cold, patched = assert_incremental_matches_cold(
            graph, delta, 3
        )
        # Unaffected subtree slices must be carried over from the old vector
        # (the analysis proves they cannot have changed).
        alphabet = sorted(graph.labels())
        affected = set(affected_first_labels(updated, delta, 3, labels=alphabet))
        assert 0 < len(affected) < len(alphabet)
        base = len(alphabet)
        starts = [0]
        for length in range(1, 4):
            starts.append(starts[-1] + base**length)
        for digit, label in enumerate(alphabet):
            if label in affected:
                continue
            for length in range(3):
                width = base**length
                offset = starts[length] + digit * width
                assert np.array_equal(
                    patched[offset:offset + width],
                    old_vector[offset:offset + width],
                )

    def test_empty_delta_returns_writable_copy(self):
        graph = zipf_labeled_graph(20, 80, 3, seed=2)
        old_vector = compute_selectivity_vector(graph, 2)
        old_vector.setflags(write=False)
        patched = update_selectivity_vector(graph, 2, old_vector, GraphDelta())
        assert np.array_equal(patched, old_vector)
        assert patched is not old_vector
        patched[0] = 123  # must be writable

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backends_agree(self, backend):
        graph = zipf_labeled_graph(40, 250, 4, skew=0.5, seed=13)
        delta = random_delta(graph, 14, additions=10, removals=10)
        assert_incremental_matches_cold(
            graph, delta, 3, backend=backend, workers=2
        )

    def test_wrong_vector_shape_raises(self):
        graph = zipf_labeled_graph(20, 80, 3, seed=2)
        with pytest.raises(PathError, match="old vector has shape"):
            update_selectivity_vector(
                graph, 2, np.zeros(5, dtype=np.int64), GraphDelta()
            )

    def test_delta_label_outside_alphabet_raises(self):
        graph = zipf_labeled_graph(20, 80, 3, seed=2)
        alphabet = sorted(graph.labels())
        old_vector = compute_selectivity_vector(graph, 2)
        delta = GraphDelta(additions=[(0, "zz", 1)])
        updated = graph.copy()
        delta.apply(updated)
        # The added label is present in the post-delta graph but outside the
        # pinned alphabet: a genuine domain mismatch (the caller should have
        # taken the full-rebuild path).
        with pytest.raises(GraphError, match="outside the alphabet"):
            update_selectivity_vector(updated, 2, old_vector, delta, labels=alphabet)


class TestCatalogApplyDelta:
    def test_apply_delta_matches_from_graph(self):
        graph = zipf_labeled_graph(40, 200, 4, skew=0.7, seed=21)
        catalog = SelectivityCatalog.from_graph(graph, 3)
        delta = random_delta(graph, 22, additions=10, removals=10)
        updated = graph.copy()
        delta.apply(updated)
        patched = catalog.apply_delta(updated, delta)
        cold = SelectivityCatalog.from_graph(updated, 3)
        assert np.array_equal(
            patched.frequency_vector(), cold.frequency_vector()
        )
        assert patched.labels == catalog.labels
        assert patched is not catalog  # catalogs stay immutable

    def test_alphabet_growth_falls_back_to_full_rebuild(self):
        graph = zipf_labeled_graph(30, 120, 3, seed=23)
        catalog = SelectivityCatalog.from_graph(graph, 2)
        delta = GraphDelta(additions=[(0, "brand-new", 1)])
        updated = graph.copy()
        delta.apply(updated)
        patched = catalog.apply_delta(updated, delta)
        cold = SelectivityCatalog.from_graph(updated, 2)
        assert patched.labels == cold.labels
        assert np.array_equal(
            patched.frequency_vector(), cold.frequency_vector()
        )

    def test_vanished_label_falls_back_to_full_rebuild(self):
        graph = LabeledDiGraph(
            [(0, "a", 1), (1, "b", 2), (0, "b", 2)], name="tiny"
        )
        catalog = SelectivityCatalog.from_graph(graph, 2)
        delta = GraphDelta(removals=[(0, "a", 1)])
        updated = graph.copy()
        delta.apply(updated)
        patched = catalog.apply_delta(updated, delta)
        cold = SelectivityCatalog.from_graph(updated, 2)
        assert patched.labels == ("b",)
        assert np.array_equal(
            patched.frequency_vector(), cold.frequency_vector()
        )

    def test_sparse_catalog_falls_back_to_full_rebuild(self):
        graph = zipf_labeled_graph(30, 120, 3, seed=25)
        sparse = SelectivityCatalog(
            sorted(graph.labels()), 2, {"1": 5}  # pruned mapping -> sparse
        )
        assert not sparse.is_dense
        delta = random_delta(graph, 26, additions=5, removals=5)
        updated = graph.copy()
        delta.apply(updated)
        patched = sparse.apply_delta(updated, delta)
        cold = SelectivityCatalog.from_graph(updated, 2)
        assert np.array_equal(
            patched.frequency_vector(), cold.frequency_vector()
        )

    def test_updated_catalog_round_trips_npz(self, tmp_path):
        graph = ring_labeled_graph(6, 20, 80, seed=27)
        catalog = SelectivityCatalog.from_graph(graph, 3)
        edges = list(graph.edges_with_label("3"))
        delta = GraphDelta(removals=edges[:4])
        updated = graph.copy()
        delta.apply(updated)
        patched = catalog.apply_delta(updated, delta)
        path = tmp_path / "patched.npz"
        patched.save_npz(path)
        loaded = SelectivityCatalog.load(path)
        assert np.array_equal(
            loaded.frequency_vector(), patched.frequency_vector()
        )
