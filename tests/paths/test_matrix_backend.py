"""Equality gate for the ``backend="matrix"`` catalog construction path.

The matrix-chain kernel must be byte-identical to the prefix-sharing DFS
builders everywhere: randomized graphs across generators and alphabet
sizes, degenerate domains (single label, labels with no edges, zero
subtrees), the dense columnar vector, delta-patched rebuilds, and the
catalog / backend-resolution plumbing around it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PathError
from repro.graph.delta import GraphDelta
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    ring_labeled_graph,
    zipf_labeled_graph,
)
from repro.graph.matrices import LabelMatrixStore, block_nonzero_counts, drop_zero_rows
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import (
    CATALOG_BACKENDS,
    compute_selectivity_nonzeros,
    compute_selectivity_vector,
    resolve_backend,
    update_selectivity_nonzeros,
    update_selectivity_vector,
)


def assert_streams_identical(left, right):
    """Byte-for-byte equality of two ``(indices, counts)`` stream pairs."""
    assert left[0].dtype == right[0].dtype == np.int64
    assert left[1].dtype == right[1].dtype == np.int64
    assert left[0].tobytes() == right[0].tobytes()
    assert left[1].tobytes() == right[1].tobytes()


GRAPH_CASES = [
    pytest.param(lambda: erdos_renyi_graph(120, 700, 4, seed=3), 4, id="erdos-renyi-4"),
    pytest.param(lambda: erdos_renyi_graph(60, 500, 2, seed=5), 5, id="erdos-renyi-2"),
    pytest.param(
        lambda: zipf_labeled_graph(400, 300, 12, skew=0.8, seed=29), 5, id="zipf-12"
    ),
    pytest.param(
        lambda: zipf_labeled_graph(200, 180, 6, skew=1.2, seed=11), 6, id="zipf-6"
    ),
    pytest.param(
        lambda: barabasi_albert_graph(150, 3, 5, seed=7), 4, id="barabasi-5"
    ),
    pytest.param(
        lambda: forest_fire_graph(120, 3, seed=13), 4, id="forest-fire-3"
    ),
    pytest.param(
        lambda: ring_labeled_graph(8, 40, 120, seed=17), 4, id="ring-8"
    ),
]


class TestMatrixNonzerosEquality:
    @pytest.mark.parametrize("make_graph, k", GRAPH_CASES)
    def test_matches_dfs_across_generators(self, make_graph, k):
        graph = make_graph()
        dfs = compute_selectivity_nonzeros(graph, k)
        matrix = compute_selectivity_nonzeros(graph, k, backend="matrix")
        assert_streams_identical(dfs, matrix)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_dfs_at_small_lengths(self, k):
        graph = erdos_renyi_graph(80, 300, 3, seed=23)
        dfs = compute_selectivity_nonzeros(graph, k)
        matrix = compute_selectivity_nonzeros(graph, k, backend="matrix")
        assert_streams_identical(dfs, matrix)

    def test_single_label_alphabet(self):
        graph = erdos_renyi_graph(50, 120, 1, seed=31)
        dfs = compute_selectivity_nonzeros(graph, 5)
        matrix = compute_selectivity_nonzeros(graph, 5, backend="matrix")
        assert_streams_identical(dfs, matrix)

    def test_alphabet_with_edgeless_labels_yields_zero_subtrees(self):
        # Labels in the alphabet but absent from the graph root empty
        # subtrees; the kernel must skip them exactly like the DFS does.
        graph = erdos_renyi_graph(60, 200, 2, seed=41)
        labels = sorted(graph.labels()) + ["zz-empty", "zz-empty-2"]
        dfs = compute_selectivity_nonzeros(graph, 4, labels=labels)
        matrix = compute_selectivity_nonzeros(graph, 4, labels=labels, backend="matrix")
        assert_streams_identical(dfs, matrix)

    def test_edgeless_graph_domain_is_all_zero(self):
        graph = LabeledDiGraph()
        graph.add_vertices_from(["a", "b", "c"])
        indices, counts = compute_selectivity_nonzeros(
            graph, 3, labels=["x", "y"], backend="matrix"
        )
        assert indices.size == 0
        assert counts.size == 0

    def test_deep_chain_prunes_exhausted_frontier(self):
        # A 3-vertex path with one label dies after two hops; levels past
        # the frontier's death must come back empty, not crash.
        graph = LabeledDiGraph()
        graph.add_edge("a", "e", "b")
        graph.add_edge("b", "e", "c")
        dfs = compute_selectivity_nonzeros(graph, 6)
        matrix = compute_selectivity_nonzeros(graph, 6, backend="matrix")
        assert_streams_identical(dfs, matrix)
        assert matrix[1].tolist() == [2, 1]

    def test_progress_totals_match_serial(self):
        graph = erdos_renyi_graph(80, 300, 4, seed=23)
        matrix_ticks: list[int] = []
        serial_ticks: list[int] = []
        compute_selectivity_nonzeros(graph, 4, backend="matrix", progress=matrix_ticks.append)
        compute_selectivity_nonzeros(graph, 4, progress=serial_ticks.append)
        assert matrix_ticks[-1] == serial_ticks[-1]


class TestMatrixVectorEquality:
    @pytest.mark.parametrize("make_graph, k", GRAPH_CASES)
    def test_matches_columnar_vector(self, make_graph, k):
        graph = make_graph()
        serial = compute_selectivity_vector(graph, k)
        matrix = compute_selectivity_vector(graph, k, backend="matrix")
        assert np.array_equal(serial, matrix)

    def test_matches_other_backends(self):
        graph = zipf_labeled_graph(200, 250, 8, skew=0.8, seed=19)
        reference = compute_selectivity_vector(graph, 4)
        for backend in ("thread", "matrix"):
            vector = compute_selectivity_vector(graph, 4, backend=backend, workers=4)
            assert np.array_equal(reference, vector), backend


class TestMatrixDeltaRebuilds:
    def _delta_for(self, graph, seed=101):
        rng = np.random.default_rng(seed)
        labels = sorted(graph.labels())
        vertices = list(graph.vertices())
        removal = next(iter(graph.edges()))
        additions = []
        while len(additions) < 5:
            source = vertices[int(rng.integers(len(vertices)))]
            target = vertices[int(rng.integers(len(vertices)))]
            label = labels[int(rng.integers(len(labels)))]
            if not graph.has_edge(source, label, target):
                additions.append((source, label, target))
        return GraphDelta(additions=additions, removals=(tuple(removal),))

    def test_patched_nonzeros_match_cold_dfs_rebuild(self):
        graph = zipf_labeled_graph(150, 200, 10, skew=0.8, seed=37)
        labels = sorted(graph.labels())
        old = compute_selectivity_nonzeros(graph, 4, labels=labels)
        delta = self._delta_for(graph)
        delta.apply(graph)
        patched = update_selectivity_nonzeros(
            graph, 4, old[0], old[1], delta, labels=labels, backend="matrix"
        )
        cold = compute_selectivity_nonzeros(graph, 4, labels=labels)
        assert_streams_identical(patched, cold)

    def test_patched_vector_matches_cold_rebuild(self):
        graph = erdos_renyi_graph(100, 500, 5, seed=43)
        labels = sorted(graph.labels())
        old = compute_selectivity_vector(graph, 4, labels=labels)
        delta = self._delta_for(graph, seed=7)
        delta.apply(graph)
        patched = update_selectivity_vector(
            graph, 4, old, delta, labels=labels, backend="matrix"
        )
        cold = compute_selectivity_vector(graph, 4, labels=labels)
        assert np.array_equal(patched, cold)

    def test_stale_entries_inside_affected_subtree_are_cleared(self):
        # A removal that zeroes previously nonzero paths exercises the
        # scatter path's slice-zeroing (stale counts must not survive).
        graph = LabeledDiGraph()
        graph.add_edge("a", "x", "b")
        graph.add_edge("b", "y", "c")
        labels = sorted(graph.labels())
        old = compute_selectivity_vector(graph, 3, labels=labels)
        delta = GraphDelta(removals=(("b", "y", "c"),))
        delta.apply(graph)
        patched = update_selectivity_vector(
            graph, 3, old, delta, labels=labels, backend="matrix"
        )
        cold = compute_selectivity_vector(graph, 3, labels=labels)
        assert np.array_equal(patched, cold)


class TestCatalogAndPlumbing:
    def test_catalog_from_graph_sparse_storage(self):
        graph = zipf_labeled_graph(200, 200, 8, skew=0.8, seed=53)
        dfs = SelectivityCatalog.from_graph(graph, 4, storage="sparse")
        matrix = SelectivityCatalog.from_graph(
            graph, 4, storage="sparse", backend="matrix"
        )
        assert_streams_identical(dfs.nonzero_arrays(), matrix.nonzero_arrays())

    def test_catalog_from_graph_dense_storage(self):
        graph = erdos_renyi_graph(80, 400, 4, seed=59)
        dfs = SelectivityCatalog.from_graph(graph, 3, storage="dense")
        matrix = SelectivityCatalog.from_graph(
            graph, 3, storage="dense", backend="matrix"
        )
        assert np.array_equal(dfs.frequency_vector(), matrix.frequency_vector())

    def test_matrix_is_a_registered_backend(self):
        assert "matrix" in CATALOG_BACKENDS

    def test_resolve_backend_matrix_is_single_worker(self):
        assert resolve_backend("matrix") == ("matrix", 1)
        # Unlike thread/process, a worker count of one must not degrade the
        # matrix backend to serial, and larger counts are ignored.
        assert resolve_backend("matrix", 1, 20) == ("matrix", 1)
        assert resolve_backend("matrix", 8, 20) == ("matrix", 1)

    def test_resolve_backend_rejects_bad_workers(self):
        with pytest.raises(PathError):
            resolve_backend("matrix", 0)


class TestStackedFrontierHelpers:
    def test_drop_zero_rows_keeps_nonzero_rows_in_order(self):
        from scipy import sparse

        matrix = sparse.csr_matrix(
            np.array(
                [[0, 0, 0], [1, 0, 1], [0, 0, 0], [0, 1, 0]], dtype=bool
            )
        )
        compressed = drop_zero_rows(matrix)
        assert compressed.shape == (2, 3)
        assert np.array_equal(
            compressed.toarray(), np.array([[1, 0, 1], [0, 1, 0]], dtype=bool)
        )

    def test_drop_zero_rows_is_identity_without_zero_rows(self):
        from scipy import sparse

        matrix = sparse.csr_matrix(np.eye(3, dtype=bool))
        assert drop_zero_rows(matrix) is matrix

    def test_block_nonzero_counts(self):
        from scipy import sparse

        stacked = sparse.csr_matrix(
            np.array(
                [[1, 1, 0], [0, 0, 0], [0, 1, 0], [1, 1, 1]], dtype=bool
            )
        )
        block_ptr = np.array([0, 2, 3, 4], dtype=np.int64)
        counts = block_nonzero_counts(stacked, block_ptr)
        assert counts.dtype == np.int64
        assert counts.tolist() == [2, 1, 3]

    def test_store_as_dict_materialises_requested_labels(self):
        graph = erdos_renyi_graph(30, 80, 3, seed=61)
        store = LabelMatrixStore(graph)
        mapping = store.as_dict()
        assert set(mapping) == set(store.labels)
        for label, matrix in mapping.items():
            assert matrix is store.matrix(label)
