"""Tests for the LabelPath value type."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidLabelPathError
from repro.paths.label_path import LabelPath, as_label_path


class TestConstruction:
    def test_parse(self):
        path = LabelPath.parse("1/2/3")
        assert path.labels == ("1", "2", "3")
        assert path.length == 3

    def test_parse_strips_whitespace(self):
        assert LabelPath.parse("  a/b ") == LabelPath(("a", "b"))

    def test_parse_existing_path_is_identity(self):
        path = LabelPath.parse("a/b")
        assert LabelPath.parse(path) is path

    def test_single(self):
        assert LabelPath.single("x") == LabelPath(("x",))

    def test_empty_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath(())
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("")
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("   ")

    def test_empty_label_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath(("a", ""))

    def test_non_string_label_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath(("a", 3))

    def test_separator_inside_label_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath(("a/b",))

    def test_parse_non_string_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse(123)

    def test_as_label_path_coercions(self):
        assert as_label_path("a/b") == LabelPath(("a", "b"))
        assert as_label_path(["a", "b"]) == LabelPath(("a", "b"))
        path = LabelPath(("a",))
        assert as_label_path(path) is path


class TestAccessors:
    def test_first_last(self):
        path = LabelPath.parse("a/b/c")
        assert path.first == "a"
        assert path.last == "c"

    def test_iteration_and_len(self):
        path = LabelPath.parse("a/b/c")
        assert list(path) == ["a", "b", "c"]
        assert len(path) == 3

    def test_indexing_and_slicing(self):
        path = LabelPath.parse("a/b/c")
        assert path[0] == "a"
        assert path[1:] == LabelPath.parse("b/c")

    def test_empty_slice_rejected(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("a/b")[2:]

    def test_str_round_trip(self):
        assert str(LabelPath.parse("a/b/c")) == "a/b/c"
        assert repr(LabelPath.parse("a")) == "LabelPath('a')"


class TestComposition:
    def test_concat_path(self):
        assert LabelPath.parse("a/b").concat(LabelPath.parse("c")) == LabelPath.parse("a/b/c")

    def test_concat_string(self):
        assert LabelPath.parse("a").concat("b/c") == LabelPath.parse("a/b/c")

    def test_prefix_suffix(self):
        path = LabelPath.parse("a/b/c")
        assert path.prefix(2) == LabelPath.parse("a/b")
        assert path.suffix(1) == LabelPath.parse("c")

    def test_prefix_out_of_range(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("a/b").prefix(0)
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("a/b").suffix(3)

    def test_prefixes(self):
        assert list(LabelPath.parse("a/b/c").prefixes()) == [
            LabelPath.parse("a"),
            LabelPath.parse("a/b"),
            LabelPath.parse("a/b/c"),
        ]

    def test_split_at(self):
        left, right = LabelPath.parse("a/b/c").split_at(1)
        assert left == LabelPath.parse("a")
        assert right == LabelPath.parse("b/c")

    def test_split_at_out_of_range(self):
        with pytest.raises(InvalidLabelPathError):
            LabelPath.parse("a/b").split_at(2)


class TestEqualityAndHashing:
    def test_equality_with_tuple(self):
        assert LabelPath.parse("a/b") == ("a", "b")

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {LabelPath.parse("a/b"): 1}
        assert mapping[LabelPath(("a", "b"))] == 1

    def test_ordering_for_sorting(self):
        paths = [LabelPath.parse("b"), LabelPath.parse("a/c"), LabelPath.parse("a")]
        assert sorted(paths) == [
            LabelPath.parse("a"),
            LabelPath.parse("a/c"),
            LabelPath.parse("b"),
        ]

    def test_not_equal_to_other_types(self):
        assert LabelPath.parse("a") != 42
