"""Tests for the selectivity catalog."""

from __future__ import annotations

import pytest

from repro.exceptions import PathError, UnknownLabelError
from repro.paths.catalog import SelectivityCatalog
from repro.paths.evaluation import path_selectivity
from repro.paths.label_path import LabelPath


class TestConstruction:
    def test_from_graph_matches_direct_evaluation(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        assert catalog.selectivity("x") == 3
        assert catalog.selectivity("x/y") == path_selectivity(triangle_graph, "x/y")
        assert catalog.graph_name == "triangle"
        assert catalog.max_length == 2
        assert catalog.labels == ("x", "y", "z")

    def test_domain_size(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        assert catalog.domain_size == 12
        assert len(catalog) == 12

    def test_explicit_construction_validates(self):
        with pytest.raises(PathError):
            SelectivityCatalog(["a"], 0, {})
        with pytest.raises(PathError):
            SelectivityCatalog([], 2, {})
        with pytest.raises(PathError):
            SelectivityCatalog(["a"], 1, {LabelPath.parse("a/a"): 1})
        with pytest.raises(UnknownLabelError):
            SelectivityCatalog(["a"], 2, {LabelPath.parse("b"): 1})
        with pytest.raises(PathError):
            SelectivityCatalog(["a"], 1, {LabelPath.parse("a"): -1})

    def test_string_keys_accepted(self):
        catalog = SelectivityCatalog(["a", "b"], 2, {"a": 3, "a/b": 1})
        assert catalog.selectivity("a") == 3
        assert catalog.selectivity(LabelPath.parse("a/b")) == 1


class TestLookups:
    def test_missing_path_is_zero(self):
        catalog = SelectivityCatalog(["a", "b"], 2, {"a": 3})
        assert catalog.selectivity("b/b") == 0

    def test_too_long_path_raises(self):
        catalog = SelectivityCatalog(["a"], 1, {"a": 1})
        with pytest.raises(PathError):
            catalog.selectivity("a/a")

    def test_unknown_label_raises(self):
        catalog = SelectivityCatalog(["a"], 2, {"a": 1})
        with pytest.raises(UnknownLabelError):
            catalog.selectivity("z")

    def test_label_selectivities(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        assert catalog.label_selectivities() == {"x": 3, "y": 2, "z": 1}
        assert catalog.label_selectivity("y") == 2

    def test_nonzero_and_totals(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        nonzero = catalog.nonzero_paths()
        assert all(catalog.selectivity(path) > 0 for path in nonzero)
        assert catalog.total_selectivity() == sum(
            catalog.selectivity(path) for path in catalog.paths()
        )
        assert catalog.max_selectivity() == 3

    def test_contains(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        assert "x/y" in catalog
        assert 42 not in catalog


class TestRestrictAndPersistence:
    def test_restrict(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 3)
        restricted = catalog.restrict(2)
        assert restricted.max_length == 2
        assert restricted.domain_size == 12
        assert restricted.selectivity("x/y") == catalog.selectivity("x/y")

    def test_restrict_upwards_rejected(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        with pytest.raises(PathError):
            catalog.restrict(3)

    def test_json_round_trip(self, triangle_graph, tmp_path):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        target = tmp_path / "catalog.json"
        catalog.save(target)
        loaded = SelectivityCatalog.load(target)
        assert loaded.labels == catalog.labels
        assert loaded.max_length == catalog.max_length
        assert loaded.graph_name == catalog.graph_name
        for path in catalog.paths():
            assert loaded.selectivity(path) == catalog.selectivity(path)

    def test_from_dict_validation(self):
        with pytest.raises(PathError):
            SelectivityCatalog.from_dict({"labels": ["a"]})
