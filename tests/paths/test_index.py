"""Tests for the materialised path index."""

from __future__ import annotations

import pytest

from repro.exceptions import PathError
from repro.paths.enumeration import enumerate_label_paths
from repro.paths.evaluation import MatrixPathEvaluator, evaluate_path
from repro.paths.index import PathIndex
from repro.paths.label_path import LabelPath


class TestConstruction:
    def test_length_one_matches_edge_sets(self, triangle_graph):
        index = PathIndex(triangle_graph, 1)
        assert index.pairs("x") == {("a", "b"), ("a", "c"), ("b", "d")}
        assert index.selectivity("y") == 2
        assert index.max_length == 1
        assert index.labels == ("x", "y", "z")

    def test_matches_matrix_evaluator_for_all_indexed_paths(self, small_graph):
        index = PathIndex(small_graph, 3)
        evaluator = MatrixPathEvaluator(small_graph)
        for path in enumerate_label_paths(small_graph.labels(), 3):
            assert index.pairs(path) == frozenset(evaluator.pairs(path)), path
            assert index.selectivity(path) == evaluator.selectivity(path)

    def test_matches_catalog(self, small_graph, small_catalog):
        index = PathIndex(small_graph, small_catalog.max_length)
        for path, value in small_catalog.items():
            assert index.selectivity(path) == value

    def test_prune_empty_controls_storage(self, triangle_graph):
        pruned = PathIndex(triangle_graph, 2, prune_empty=True)
        full = PathIndex(triangle_graph, 2, prune_empty=False)
        assert len(pruned) < len(full)
        assert len(full) == 12
        # Lookups of pruned paths still answer (with the empty set).
        assert pruned.pairs("z/z") == frozenset()

    def test_label_restriction(self, triangle_graph):
        index = PathIndex(triangle_graph, 2, labels=["x", "y"])
        assert index.labels == ("x", "y")
        assert "z" not in [str(p) for p in index.indexed_paths()]

    def test_invalid_depth(self, triangle_graph):
        with pytest.raises(PathError):
            PathIndex(triangle_graph, 0)

    def test_contains_and_len(self, triangle_graph):
        index = PathIndex(triangle_graph, 2)
        assert "x/y" in index
        assert LabelPath.parse("x") in index
        assert 42 not in index
        assert len(index) == len(list(index.indexed_paths()))

    def test_total_stored_pairs(self, triangle_graph):
        index = PathIndex(triangle_graph, 1)
        assert index.total_stored_pairs() == 6


class TestLookupsAndEvaluation:
    def test_too_long_lookup_rejected(self, triangle_graph):
        index = PathIndex(triangle_graph, 2)
        with pytest.raises(PathError):
            index.pairs("x/y/z")

    def test_evaluate_within_depth_is_lookup(self, triangle_graph):
        index = PathIndex(triangle_graph, 2)
        assert index.evaluate("x/y") == set(index.pairs("x/y"))

    @pytest.mark.parametrize("query_length", [3, 4, 5, 6])
    def test_evaluate_longer_paths_by_joining(self, small_graph, query_length):
        index = PathIndex(small_graph, 2)
        labels = small_graph.labels()
        query = LabelPath([labels[i % len(labels)] for i in range(query_length)])
        assert index.evaluate(query) == evaluate_path(small_graph, query)

    def test_evaluate_empty_prefix_short_circuits(self, triangle_graph):
        index = PathIndex(triangle_graph, 2)
        # z/z is empty, so any extension evaluates to the empty set quickly.
        assert index.evaluate("z/z/x/y") == set()

    def test_index_snapshot_semantics(self, triangle_graph):
        index = PathIndex(triangle_graph, 1)
        before = index.selectivity("x")
        triangle_graph.add_edge("c", "x", "d")
        assert index.selectivity("x") == before
