"""Tests for the columnar selectivity builder (:func:`compute_selectivity_vector`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PathError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import zipf_labeled_graph
from repro.graph.matrices import LabelMatrixStore
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import (
    compute_selectivities,
    compute_selectivity_vector,
    domain_size,
    enumerate_label_paths,
)


def reference_vector(graph: LabeledDiGraph, max_length: int) -> np.ndarray:
    """The dict builder's output, re-laid-out in canonical domain order."""
    selectivities = compute_selectivities(graph, max_length)
    return np.array(
        [
            selectivities[path]
            for path in enumerate_label_paths(graph.labels(), max_length)
        ],
        dtype=np.int64,
    )


class TestVectorMatchesDictBuilder:
    def test_triangle(self, triangle_graph):
        vector = compute_selectivity_vector(triangle_graph, 3)
        assert np.array_equal(vector, reference_vector(triangle_graph, 3))

    def test_small_graph(self, small_graph):
        vector = compute_selectivity_vector(small_graph, 3)
        assert vector.dtype == np.int64
        assert vector.shape == (domain_size(4, 3),)
        assert np.array_equal(vector, reference_vector(small_graph, 3))


class TestBackendEquality:
    @pytest.fixture(scope="class")
    def graph(self) -> LabeledDiGraph:
        return zipf_labeled_graph(60, 280, 6, skew=1.0, seed=11, name="backends")

    def test_serial_thread_process_identical(self, graph):
        serial = compute_selectivity_vector(graph, 3, backend="serial")
        thread = compute_selectivity_vector(graph, 3, backend="thread", workers=4)
        process = compute_selectivity_vector(graph, 3, backend="process", workers=2)
        assert np.array_equal(serial, thread)
        assert np.array_equal(serial, process)

    def test_catalog_backends_identical(self, graph):
        serial = SelectivityCatalog.from_graph(graph, 2)
        thread = SelectivityCatalog.from_graph(graph, 2, workers=3, backend="thread")
        process = SelectivityCatalog.from_graph(graph, 2, workers=2, backend="process")
        assert np.array_equal(serial.frequency_vector(), thread.frequency_vector())
        assert np.array_equal(serial.frequency_vector(), process.frequency_vector())

    def test_workers_one_degrades_to_serial(self, graph):
        one = compute_selectivity_vector(graph, 2, backend="process", workers=1)
        assert np.array_equal(one, compute_selectivity_vector(graph, 2))

    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(PathError):
            compute_selectivity_vector(graph, 2, backend="fork-bomb")

    def test_bad_worker_count_rejected(self, graph):
        with pytest.raises(PathError):
            compute_selectivity_vector(graph, 2, workers=0)


class TestZeroSubtreeSliceFill:
    @pytest.fixture()
    def chain_graph(self) -> LabeledDiGraph:
        # x-edges then one y-edge: anything through y twice (or y then x) is
        # empty, so the k=4 domain is dominated by zero subtrees.
        graph = LabeledDiGraph(name="chain")
        graph.add_edges_from(
            [("v0", "x", "v1"), ("v1", "x", "v2"), ("v2", "y", "v3")]
        )
        return graph

    def test_matches_brute_force_path_selectivity(self, chain_graph):
        store = LabelMatrixStore(chain_graph)
        vector = compute_selectivity_vector(chain_graph, 4, store=store)
        for index, path in enumerate(
            enumerate_label_paths(chain_graph.labels(), 4)
        ):
            assert vector[index] == store.path_selectivity(path.labels), str(path)

    def test_zero_subtrees_account_progress(self, chain_graph):
        seen: list[int] = []
        compute_selectivity_vector(chain_graph, 6, progress=seen.append)
        assert seen, "progress never fired on a zero-dominated domain"
        assert max(seen) == domain_size(2, 6)

    def test_dict_builder_progress_covers_zero_subtrees(self, chain_graph):
        # Satellite regression: the dict builder's progress used to stall
        # while zero subtrees were recorded.
        seen: list[int] = []
        compute_selectivities(chain_graph, 10, progress=seen.append)
        total = domain_size(2, 10)
        assert seen, "progress never fired while recording zero subtrees"
        assert max(seen) > total // 2


class TestProgressParity:
    def test_thread_progress_reports_combined_total(self):
        graph = zipf_labeled_graph(30, 150, 10, skew=1.0, seed=5, name="progress")
        seen: list[int] = []
        compute_selectivity_vector(
            graph, 4, backend="thread", workers=4, progress=seen.append
        )
        total = domain_size(graph.label_count, 4)
        assert seen and max(seen) == total

    def test_process_progress_ticks_per_subtree(self):
        graph = zipf_labeled_graph(30, 150, 4, skew=1.0, seed=5, name="progress-p")
        seen: list[int] = []
        compute_selectivity_vector(
            graph, 3, backend="process", workers=2, progress=seen.append
        )
        assert seen and max(seen) == domain_size(4, 3)
