"""Tests for the edge-labeled digraph store."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError, UnknownLabelError, UnknownVertexError
from repro.graph.digraph import Edge, LabeledDiGraph


class TestEdge:
    def test_fields(self):
        edge = Edge("a", "x", "b")
        assert edge.source == "a"
        assert edge.label == "x"
        assert edge.target == "b"

    def test_behaves_like_tuple(self):
        assert Edge("a", "x", "b") == ("a", "x", "b")
        assert hash(Edge("a", "x", "b")) == hash(("a", "x", "b"))

    def test_reversed(self):
        assert Edge("a", "x", "b").reversed() == Edge("b", "x", "a")


class TestConstruction:
    def test_empty_graph(self):
        graph = LabeledDiGraph()
        assert graph.vertex_count == 0
        assert graph.edge_count == 0
        assert graph.label_count == 0
        assert graph.labels() == []

    def test_add_edge_creates_vertices(self):
        graph = LabeledDiGraph()
        assert graph.add_edge("a", "x", "b")
        assert graph.vertex_count == 2
        assert graph.edge_count == 1
        assert graph.has_edge("a", "x", "b")

    def test_duplicate_edge_ignored(self):
        graph = LabeledDiGraph()
        assert graph.add_edge("a", "x", "b")
        assert not graph.add_edge("a", "x", "b")
        assert graph.edge_count == 1

    def test_same_pair_different_labels_allowed(self):
        graph = LabeledDiGraph()
        graph.add_edge("a", "x", "b")
        graph.add_edge("a", "y", "b")
        assert graph.edge_count == 2
        assert graph.label_count == 2

    def test_self_loop_allowed(self):
        graph = LabeledDiGraph()
        graph.add_edge("a", "x", "a")
        assert graph.has_edge("a", "x", "a")
        assert graph.vertex_count == 1

    def test_constructor_edges(self, triangle_graph):
        assert triangle_graph.vertex_count == 4
        assert triangle_graph.edge_count == 6
        assert triangle_graph.labels() == ["x", "y", "z"]

    def test_non_string_label_rejected(self):
        graph = LabeledDiGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", 1, "b")

    def test_add_vertices_from_idempotent(self):
        graph = LabeledDiGraph()
        graph.add_vertices_from(["a", "b", "a"])
        assert graph.vertex_count == 2

    def test_add_edges_from_returns_new_count(self):
        graph = LabeledDiGraph()
        added = graph.add_edges_from([("a", "x", "b"), ("a", "x", "b"), ("b", "x", "c")])
        assert added == 2


class TestRemoval:
    def test_remove_edge(self, triangle_graph):
        assert triangle_graph.remove_edge("a", "x", "b")
        assert not triangle_graph.has_edge("a", "x", "b")
        assert triangle_graph.edge_count == 5

    def test_remove_missing_edge_returns_false(self, triangle_graph):
        assert not triangle_graph.remove_edge("a", "z", "b")
        assert triangle_graph.edge_count == 6

    def test_removing_last_edge_of_label_removes_label(self):
        graph = LabeledDiGraph([("a", "x", "b")])
        graph.remove_edge("a", "x", "b")
        assert not graph.has_label("x")
        assert graph.label_count == 0


class TestAdjacency:
    def test_successors(self, triangle_graph):
        assert triangle_graph.successors("a", "x") == {"b", "c"}
        assert triangle_graph.successors("a", "y") == frozenset()

    def test_predecessors(self, triangle_graph):
        assert triangle_graph.predecessors("c", "y") == {"b"}
        assert triangle_graph.predecessors("d", "x") == {"b"}

    def test_unknown_vertex_raises(self, triangle_graph):
        with pytest.raises(UnknownVertexError):
            triangle_graph.successors("nope", "x")
        with pytest.raises(UnknownVertexError):
            triangle_graph.predecessors("nope", "x")

    def test_degrees(self, triangle_graph):
        assert triangle_graph.out_degree("a") == 2
        assert triangle_graph.out_degree("a", "x") == 2
        assert triangle_graph.out_degree("a", "y") == 0
        assert triangle_graph.in_degree("c") == 2
        assert triangle_graph.in_degree("d", "y") == 1

    def test_forward_adjacency_unknown_label(self, triangle_graph):
        with pytest.raises(UnknownLabelError):
            triangle_graph.forward_adjacency("missing")

    def test_backward_adjacency(self, triangle_graph):
        backward = triangle_graph.backward_adjacency("x")
        assert backward["b"] == {"a"}


class TestCountsAndSelectivity:
    def test_label_edge_counts(self, triangle_graph):
        assert triangle_graph.label_edge_counts() == {"x": 3, "y": 2, "z": 1}

    def test_label_selectivity_matches_edge_count(self, triangle_graph):
        assert triangle_graph.label_selectivity("x") == 3
        assert triangle_graph.label_selectivities() == {"x": 3, "y": 2, "z": 1}

    def test_unknown_label_count_is_zero(self, triangle_graph):
        assert triangle_graph.label_edge_count("missing") == 0


class TestInterningAndConversion:
    def test_vertex_ids_are_dense(self, triangle_graph):
        ids = sorted(triangle_graph.vertex_id(v) for v in triangle_graph.vertices())
        assert ids == list(range(triangle_graph.vertex_count))

    def test_vertex_by_id_round_trip(self, triangle_graph):
        for vertex in triangle_graph.vertices():
            assert triangle_graph.vertex_by_id(triangle_graph.vertex_id(vertex)) == vertex

    def test_vertex_id_unknown(self, triangle_graph):
        with pytest.raises(UnknownVertexError):
            triangle_graph.vertex_id("missing")

    def test_copy_is_equal_but_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        assert clone == triangle_graph
        clone.add_edge("a", "w", "d")
        assert clone != triangle_graph

    def test_subgraph_with_labels(self, triangle_graph):
        sub = triangle_graph.subgraph_with_labels(["x"])
        assert sub.edge_count == 3
        assert sub.labels() == ["x"]
        # Vertices are preserved even if they lose all incident edges.
        assert sub.vertex_count == triangle_graph.vertex_count

    def test_networkx_round_trip(self, triangle_graph):
        nx_graph = triangle_graph.to_networkx()
        back = LabeledDiGraph.from_networkx(nx_graph)
        assert back == triangle_graph

    def test_contains_protocol(self, triangle_graph):
        assert "a" in triangle_graph
        assert ("a", "x", "b") in triangle_graph
        assert ("a", "z", "b") not in triangle_graph
        assert "missing" not in triangle_graph

    def test_len_is_vertex_count(self, triangle_graph):
        assert len(triangle_graph) == 4

    def test_edges_with_label(self, triangle_graph):
        edges = set(triangle_graph.edges_with_label("y"))
        assert edges == {("b", "y", "c"), ("c", "y", "d")}

    def test_edges_iterates_all(self, triangle_graph):
        assert len(list(triangle_graph.edges())) == 6
