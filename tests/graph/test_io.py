"""Tests for graph reading and writing."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import GraphIOError
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)


class TestEdgeList:
    def test_round_trip_via_path(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(triangle_graph, path)
        back = read_edge_list(path, name="triangle")
        assert back == triangle_graph

    def test_round_trip_via_file_object(self, triangle_graph):
        buffer = io.StringIO()
        write_edge_list(triangle_graph, buffer)
        buffer.seek(0)
        back = read_edge_list(buffer)
        assert back == triangle_graph

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n a x b \nb y c\n"
        graph = read_edge_list(io.StringIO(text))
        assert graph.edge_count == 2
        assert graph.has_edge("a", "x", "b")

    def test_two_column_with_default_label(self):
        text = "a b\nb c\n"
        graph = read_edge_list(io.StringIO(text), default_label="e")
        assert graph.edge_count == 2
        assert graph.labels() == ["e"]

    def test_wrong_field_count_raises_with_line_number(self):
        text = "a x b\na x\n"
        with pytest.raises(GraphIOError, match="line 2"):
            read_edge_list(io.StringIO(text))

    def test_custom_separator(self):
        text = "a|x|b\n"
        graph = read_edge_list(io.StringIO(text), separator="|")
        assert graph.has_edge("a", "x", "b")

    def test_header_written(self, triangle_graph):
        buffer = io.StringIO()
        write_edge_list(triangle_graph, buffer, header=True)
        assert buffer.getvalue().startswith("# graph:")

    def test_no_header(self, triangle_graph):
        buffer = io.StringIO()
        write_edge_list(triangle_graph, buffer, header=False)
        assert not buffer.getvalue().startswith("#")


class TestJson:
    def test_round_trip(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_json_graph(triangle_graph, path)
        back = read_json_graph(path)
        assert back == triangle_graph

    def test_isolated_vertices_preserved(self, tmp_path):
        from repro.graph.digraph import LabeledDiGraph

        graph = LabeledDiGraph([("a", "x", "b")])
        graph.add_vertex("lonely")
        path = tmp_path / "graph.json"
        write_json_graph(graph, path)
        back = read_json_graph(path)
        assert back.vertex_count == 3

    def test_invalid_json_raises(self):
        with pytest.raises(GraphIOError):
            read_json_graph(io.StringIO("not json at all"))

    def test_missing_edges_key_raises(self):
        with pytest.raises(GraphIOError):
            read_json_graph(io.StringIO('{"vertices": []}'))

    def test_invalid_edge_entry_raises(self):
        with pytest.raises(GraphIOError):
            read_json_graph(io.StringIO('{"edges": [["a", "x"]]}'))
