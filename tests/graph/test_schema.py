"""Tests for schema-driven graph generation."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.schema import GraphSchema, LabelSpec, generate_from_schema
from repro.graph.statistics import summarize_graph


class TestLabelSpec:
    def test_defaults(self):
        spec = LabelSpec(label="knows", edge_count=10)
        assert spec.out_degree_distribution == "uniform"
        assert spec.source_fraction == 1.0

    def test_negative_edge_count_rejected(self):
        with pytest.raises(GraphError):
            LabelSpec(label="x", edge_count=-1)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(GraphError):
            LabelSpec(label="x", edge_count=1, out_degree_distribution="pareto")

    def test_fraction_bounds(self):
        with pytest.raises(GraphError):
            LabelSpec(label="x", edge_count=1, source_fraction=0.0)
        with pytest.raises(GraphError):
            LabelSpec(label="x", edge_count=1, target_fraction=1.5)


class TestGraphSchema:
    def test_total_edges_and_labels(self):
        schema = GraphSchema(
            vertex_count=100,
            labels=(LabelSpec("a", 10), LabelSpec("b", 20)),
        )
        assert schema.total_edges == 30
        assert schema.label_names == ("a", "b")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(GraphError):
            GraphSchema(vertex_count=10, labels=(LabelSpec("a", 1), LabelSpec("a", 2)))

    def test_vertex_count_validated(self):
        with pytest.raises(GraphError):
            GraphSchema(vertex_count=0)

    def test_from_label_counts(self):
        schema = GraphSchema.from_label_counts(50, {"x": 5, "y": 10})
        assert schema.total_edges == 15
        assert schema.vertex_count == 50


class TestGeneration:
    def test_edge_counts_match_schema(self):
        schema = GraphSchema(
            vertex_count=200,
            labels=(
                LabelSpec("a", 100, out_degree_distribution="zipf"),
                LabelSpec("b", 50, out_degree_distribution="uniform"),
                LabelSpec("c", 25, out_degree_distribution="constant"),
            ),
            name="test",
        )
        graph = generate_from_schema(schema, seed=1)
        counts = graph.label_edge_counts()
        assert counts == {"a": 100, "b": 50, "c": 25}
        assert graph.vertex_count == 200

    def test_deterministic(self):
        schema = GraphSchema.from_label_counts(60, {"x": 40, "y": 20})
        assert generate_from_schema(schema, seed=3) == generate_from_schema(schema, seed=3)

    def test_zipf_concentrates_out_degree(self):
        schema = GraphSchema(
            vertex_count=300,
            labels=(LabelSpec("hub", 600, out_degree_distribution="zipf", zipf_exponent=1.5),),
        )
        graph = generate_from_schema(schema, seed=5)
        summary = summarize_graph(graph)
        assert summary.max_out_degree > 5 * summary.mean_out_degree

    def test_typed_endpoints_restrict_sources(self):
        schema = GraphSchema(
            vertex_count=100,
            labels=(LabelSpec("typed", 80, source_fraction=0.1),),
        )
        graph = generate_from_schema(schema, seed=7)
        sources = {edge.source for edge in graph.edges_with_label("typed")}
        assert all(vertex < 10 for vertex in sources)

    def test_dense_request_does_not_hang(self):
        # Requesting close to the maximum number of distinct pairs must finish.
        schema = GraphSchema(vertex_count=5, labels=(LabelSpec("x", 24),))
        graph = generate_from_schema(schema, seed=2)
        assert graph.edge_count <= 25
