"""Tests for :mod:`repro.graph.delta` — deltas and the affected-label analysis."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import GraphError, GraphIOError
from repro.graph.delta import (
    GraphDelta,
    affected_first_labels,
    read_delta,
    write_delta,
)
from repro.graph.digraph import Edge, LabeledDiGraph
from repro.graph.generators import ring_labeled_graph


def chain_graph() -> LabeledDiGraph:
    """a: 0->1, b: 1->2, c: 2->3 — labels compose only along the chain."""
    return LabeledDiGraph(
        [(0, "a", 1), (1, "b", 2), (2, "c", 3)], name="chain"
    )


class TestGraphDelta:
    def test_normalises_and_dedupes(self):
        delta = GraphDelta(
            additions=[(0, "a", 1), (0, "a", 1), Edge(2, "b", 3)],
            removals=[(4, "c", 5)],
        )
        assert delta.additions == (Edge(0, "a", 1), Edge(2, "b", 3))
        assert delta.removals == (Edge(4, "c", 5),)
        assert len(delta) == 3
        assert bool(delta)
        assert delta.labels() == frozenset({"a", "b", "c"})

    def test_empty_delta_is_falsy(self):
        assert not GraphDelta()
        assert len(GraphDelta()) == 0

    def test_rejects_bad_triples(self):
        with pytest.raises(GraphError, match="triples"):
            GraphDelta(additions=[(0, "a")])
        with pytest.raises(GraphError, match="labels must be strings"):
            GraphDelta(additions=[(0, 1, 2)])
        # Untrusted input (HTTP bodies): non-sequences and 3-character
        # strings must fail with GraphError, never TypeError.
        with pytest.raises(GraphError, match="triples"):
            GraphDelta(additions=[42])
        with pytest.raises(GraphError, match="triples"):
            GraphDelta(additions=["abc"])
        with pytest.raises(GraphError, match="unhashable"):
            GraphDelta(additions=[[["nested"], "a", "v"]])

    def test_rejects_overlap(self):
        with pytest.raises(GraphError, match="adds and removes the same edge"):
            GraphDelta(additions=[(0, "a", 1)], removals=[(0, "a", 1)])

    def test_apply_and_reverse_round_trip(self):
        graph = chain_graph()
        before = graph.copy()
        delta = GraphDelta(additions=[(3, "a", 0)], removals=[(1, "b", 2)])
        added, removed = delta.apply(graph)
        assert (added, removed) == (1, 1)
        assert graph.has_edge(3, "a", 0)
        assert not graph.has_edge(1, "b", 2)
        delta.reversed().apply(graph)
        assert graph == before

    def test_apply_is_idempotent_by_default(self):
        graph = chain_graph()
        delta = GraphDelta(additions=[(0, "a", 1)], removals=[(9, "z", 9)])
        assert delta.apply(graph) == (0, 0)

    def test_strict_apply_raises_on_noops(self):
        delta = GraphDelta(additions=[(0, "a", 1)])
        with pytest.raises(GraphError, match="existing edge"):
            delta.apply(chain_graph(), strict=True)
        delta = GraphDelta(removals=[(9, "z", 9)])
        with pytest.raises(GraphError, match="missing edge"):
            delta.apply(chain_graph(), strict=True)

    def test_dict_round_trip(self):
        delta = GraphDelta(additions=[("u", "a", "v")], removals=[("v", "b", "w")])
        rebuilt = GraphDelta.from_dict(delta.to_dict())
        assert rebuilt == delta
        assert hash(rebuilt) == hash(delta)

    def test_from_dict_rejects_non_lists(self):
        with pytest.raises(GraphError, match="must be a list"):
            GraphDelta.from_dict({"add": "nope"})

    def test_equality(self):
        left = GraphDelta(additions=[(0, "a", 1)])
        right = GraphDelta(additions=[Edge(0, "a", 1)])
        assert left == right
        assert left != GraphDelta(removals=[(0, "a", 1)])
        assert left.__eq__(42) is NotImplemented


class TestDeltaFiles:
    def test_round_trip(self, tmp_path):
        delta = GraphDelta(
            additions=[("0", "a", "1"), ("1", "b", "2")],
            removals=[("2", "c", "3")],
        )
        path = tmp_path / "churn.delta"
        write_delta(delta, path)
        assert read_delta(path) == delta

    def test_reads_comments_and_blanks(self):
        text = "# a comment\n\n+ 0 a 1\n- 1 b 2\n"
        delta = read_delta(io.StringIO(text))
        assert delta.additions == (Edge("0", "a", "1"),)
        assert delta.removals == (Edge("1", "b", "2"),)

    def test_rejects_malformed_lines(self):
        with pytest.raises(GraphIOError, match="line 1"):
            read_delta(io.StringIO("0 a 1\n"))
        with pytest.raises(GraphIOError, match="line 2"):
            read_delta(io.StringIO("+ 0 a 1\n* 1 b 2\n"))

    def test_rejects_overlapping_file(self):
        with pytest.raises(GraphIOError, match="invalid delta file"):
            read_delta(io.StringIO("+ 0 a 1\n- 0 a 1\n"))


class TestAffectedFirstLabels:
    def test_direct_change_affects_own_subtree(self):
        graph = chain_graph()
        delta = GraphDelta(additions=[(0, "c", 2)])
        graph2 = graph.copy()
        delta.apply(graph2)
        affected = affected_first_labels(graph2, delta, 1)
        assert affected == ("c",)

    def test_upstream_labels_affected_within_k(self):
        graph = chain_graph()
        # Change "c": with k=3 every label that reaches "c" within 2 hops is
        # affected — "a" (a/b/c), "b" (b/c) and "c" itself.
        delta = GraphDelta(removals=[(2, "c", 3)])
        graph2 = graph.copy()
        delta.apply(graph2)
        # The removed edge was "c"'s last, so the alphabet must be pinned
        # (as the catalog pins it); the removed edge's source must still
        # count for old-graph composability.
        alphabet = ("a", "b", "c")
        assert affected_first_labels(graph2, delta, 3, labels=alphabet) == (
            "a",
            "b",
            "c",
        )
        # With k=2 only "b" and "c" can reach the change.
        assert affected_first_labels(graph2, delta, 2, labels=alphabet) == ("b", "c")

    def test_downstream_labels_unaffected(self):
        graph = chain_graph()
        delta = GraphDelta(additions=[(0, "a", 2)])
        graph2 = graph.copy()
        delta.apply(graph2)
        # No path starting with "b" or "c" can contain "a" (nothing composes
        # into "a"), so only the "a" subtree is affected at any k.
        assert affected_first_labels(graph2, delta, 4) == ("a",)

    def test_ring_graph_footprint_is_k_subtrees(self):
        graph = ring_labeled_graph(10, 20, 60, seed=3)
        label = "5"
        edge = next(iter(graph.edges_with_label(label)))
        delta = GraphDelta(removals=[tuple(edge)])
        graph2 = graph.copy()
        delta.apply(graph2)
        affected = affected_first_labels(graph2, delta, 3)
        # On the ring only the k labels ending at the changed one compose
        # into it: "3" -> "4" -> "5".
        assert affected == ("3", "4", "5")

    def test_empty_delta_affects_nothing(self):
        graph = chain_graph()
        assert affected_first_labels(graph, GraphDelta(), 3) == ()

    def test_unknown_label_present_in_graph_raises(self):
        graph = chain_graph()
        graph.add_edge(0, "zz", 1)
        delta = GraphDelta(additions=[(0, "zz", 1)])
        with pytest.raises(GraphError, match="outside the alphabet"):
            affected_first_labels(graph, delta, 3, labels=("a", "b", "c"))

    def test_noop_removal_of_absent_label_is_ignored(self):
        # A removal referencing a label that neither the alphabet nor the
        # graph knows is a no-op: it must not raise (the engine applies the
        # delta before the analysis runs, so raising here would leave a
        # half-mutated graph behind).
        graph = chain_graph()
        assert (
            affected_first_labels(
                graph, GraphDelta(removals=[(0, "zz", 1)]), 3, labels=("a", "b", "c")
            )
            == ()
        )
        # Mixed with a real change, the no-op is dropped and the real change
        # analysed as usual: the new a-edge 3->0 makes "a" composable after
        # "c" (and so after "b" within k-1 hops).
        delta = GraphDelta(removals=[(0, "zz", 1)], additions=[(3, "a", 0)])
        graph2 = graph.copy()
        delta.apply(graph2)
        affected = affected_first_labels(graph2, delta, 3, labels=("a", "b", "c"))
        assert affected == ("a", "b", "c")

    def test_explicit_alphabet_with_emptied_label(self):
        # Removing a label's last edge keeps the subtree computable when the
        # caller pins the alphabet (the catalog's contract).
        graph = chain_graph()
        delta = GraphDelta(removals=[(1, "b", 2)])
        graph2 = graph.copy()
        delta.apply(graph2)
        affected = affected_first_labels(graph2, delta, 2, labels=("a", "b", "c"))
        assert "b" in affected and "a" in affected

    def test_invalid_max_length(self):
        with pytest.raises(GraphError, match="max_length"):
            affected_first_labels(chain_graph(), GraphDelta(), 0)
