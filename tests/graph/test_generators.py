"""Tests for the random graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    barabasi_albert_graph,
    correlated_label_graph,
    default_labels,
    erdos_renyi_graph,
    forest_fire_graph,
    ring_labeled_graph,
    zipf_labeled_graph,
)
from repro.graph.statistics import gini_coefficient


class TestDefaultLabels:
    def test_labels_are_one_based_strings(self):
        assert default_labels(3) == ["1", "2", "3"]

    def test_invalid_count(self):
        with pytest.raises(GraphError):
            default_labels(0)


class TestErdosRenyi:
    def test_shape(self):
        graph = erdos_renyi_graph(50, 200, 4, seed=1)
        assert graph.vertex_count == 50
        assert graph.edge_count == 200
        assert graph.label_count <= 4

    def test_deterministic_for_seed(self):
        first = erdos_renyi_graph(30, 100, 3, seed=5)
        second = erdos_renyi_graph(30, 100, 3, seed=5)
        assert first == second

    def test_different_seeds_differ(self):
        first = erdos_renyi_graph(30, 100, 3, seed=5)
        second = erdos_renyi_graph(30, 100, 3, seed=6)
        assert first != second

    def test_edge_count_capped_at_max_pairs(self):
        graph = erdos_renyi_graph(3, 1000, 2, seed=0)
        assert graph.edge_count <= 9

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(0, 10, 2)
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, -1, 2)

    def test_custom_labels(self):
        graph = erdos_renyi_graph(20, 60, 2, labels=["knows", "likes"], seed=2)
        assert set(graph.labels()).issubset({"knows", "likes"})


class TestForestFire:
    def test_connected_growth(self):
        graph = forest_fire_graph(60, 4, seed=2)
        assert graph.vertex_count == 60
        # Every non-initial vertex links to at least one ambassador.
        assert graph.edge_count >= 59

    def test_deterministic(self):
        assert forest_fire_graph(40, 3, seed=9) == forest_fire_graph(40, 3, seed=9)

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            forest_fire_graph(10, 2, forward_probability=1.5)
        with pytest.raises(GraphError):
            forest_fire_graph(10, 2, backward_probability=-0.1)


class TestBarabasiAlbert:
    def test_shape(self):
        graph = barabasi_albert_graph(50, 2, 3, seed=4)
        assert graph.vertex_count == 50
        assert graph.edge_count > 0

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5, 2)
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 0, 2)


class TestLabelDistributions:
    def test_zipf_labels_are_skewed(self):
        uniform = erdos_renyi_graph(200, 2000, 6, seed=1)
        skewed = zipf_labeled_graph(200, 2000, 6, skew=1.2, seed=1)
        assert gini_coefficient(list(skewed.label_edge_counts().values())) > (
            gini_coefficient(list(uniform.label_edge_counts().values()))
        )

    def test_correlated_graph_reuses_source_labels(self):
        graph = correlated_label_graph(100, 1000, 6, correlation=0.9, seed=3)
        # With strong correlation a vertex's out-edges concentrate on few labels:
        # measure the average number of distinct labels per multi-edge source.
        distinct_per_source: list[int] = []
        for vertex in graph.vertices():
            labels = {
                edge.label
                for label in graph.labels()
                for edge in graph.edges_with_label(label)
                if edge.source == vertex
            }
            out_degree = graph.out_degree(vertex)
            if out_degree >= 4:
                distinct_per_source.append(len(labels))
        assert distinct_per_source, "expected some sources with several out-edges"
        average_distinct = sum(distinct_per_source) / len(distinct_per_source)
        assert average_distinct < 3.0

    def test_correlation_validation(self):
        with pytest.raises(GraphError):
            correlated_label_graph(10, 20, 3, correlation=1.5)

    def test_correlated_graph_deterministic(self):
        first = correlated_label_graph(50, 200, 5, seed=11)
        second = correlated_label_graph(50, 200, 5, seed=11)
        assert first == second


class TestRingLabeledGraph:
    def test_labels_connect_consecutive_layers_only(self):
        label_count, layer_size = 5, 10
        graph = ring_labeled_graph(label_count, layer_size, 30, seed=3)
        assert graph.vertex_count == label_count * layer_size
        for layer, label in enumerate(default_labels(label_count)):
            next_layer = (layer + 1) % label_count
            for edge in graph.edges_with_label(label):
                assert edge.source // layer_size == layer
                assert edge.target // layer_size == next_layer

    def test_edge_counts_and_determinism(self):
        first = ring_labeled_graph(4, 8, 20, seed=9)
        second = ring_labeled_graph(4, 8, 20, seed=9)
        assert first == second
        assert all(count == 20 for count in first.label_edge_counts().values())

    def test_edges_per_label_capped_at_layer_pairs(self):
        graph = ring_labeled_graph(3, 2, 100, seed=1)
        assert all(count == 4 for count in graph.label_edge_counts().values())

    def test_validation(self):
        with pytest.raises(GraphError):
            ring_labeled_graph(1, 10, 5)
        with pytest.raises(GraphError):
            ring_labeled_graph(3, 0, 5)
        with pytest.raises(GraphError):
            ring_labeled_graph(3, 10, -1)
        with pytest.raises(GraphError):
            ring_labeled_graph(3, 10, 5, labels=["a", "b"])
