"""Tests for graph summary statistics."""

from __future__ import annotations

import math

from repro.graph.digraph import LabeledDiGraph
from repro.graph.statistics import (
    gini_coefficient,
    label_frequency_skew,
    summarize_graph,
)


class TestGini:
    def test_empty_is_zero(self):
        assert gini_coefficient([]) == 0.0

    def test_uniform_is_zero(self):
        assert abs(gini_coefficient([5, 5, 5, 5])) < 1e-12

    def test_all_mass_on_one_label_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_zero_total(self):
        assert gini_coefficient([0, 0]) == 0.0


class TestSkew:
    def test_single_label(self):
        graph = LabeledDiGraph([("a", "x", "b")])
        assert label_frequency_skew(graph) == 1.0

    def test_ratio(self, triangle_graph):
        assert label_frequency_skew(triangle_graph) == 3.0

    def test_empty_graph_has_unit_skew(self):
        assert label_frequency_skew(LabeledDiGraph()) == 1.0
        assert not math.isinf(label_frequency_skew(LabeledDiGraph()))


class TestSummary:
    def test_table_row_shape(self, triangle_graph):
        summary = summarize_graph(triangle_graph)
        row = summary.as_table_row()
        assert row == {
            "Dataset": "triangle",
            "#Edge Labels": 3,
            "#Vertices": 4,
            "#Edges": 6,
        }

    def test_degree_statistics(self, triangle_graph):
        summary = summarize_graph(triangle_graph)
        assert summary.max_out_degree == 2
        assert summary.max_in_degree == 2
        assert summary.mean_out_degree == 6 / 4
        assert summary.mean_in_degree == 6 / 4

    def test_empty_graph(self):
        summary = summarize_graph(LabeledDiGraph(name="empty"))
        assert summary.vertex_count == 0
        assert summary.mean_out_degree == 0.0
        assert summary.max_in_degree == 0

    def test_label_counts_included(self, triangle_graph):
        summary = summarize_graph(triangle_graph)
        assert summary.label_edge_counts == {"x": 3, "y": 2, "z": 1}
        assert summary.label_gini > 0.0
