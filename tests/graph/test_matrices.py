"""Tests for per-label boolean adjacency matrices."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownLabelError
from repro.graph.matrices import LabelMatrixStore


class TestLabelMatrixStore:
    def test_dimension_and_labels(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        assert store.dimension == 4
        assert store.labels == ("x", "y", "z")

    def test_matrix_nnz_matches_edge_count(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        assert store.matrix("x").nnz == 3
        assert store.matrix("y").nnz == 2
        assert store.matrix("z").nnz == 1

    def test_matrix_entries(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        matrix = store.matrix("x")
        a = triangle_graph.vertex_id("a")
        b = triangle_graph.vertex_id("b")
        assert bool(matrix[a, b])
        assert not bool(matrix[b, a])

    def test_unknown_label_raises(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        with pytest.raises(UnknownLabelError):
            store.matrix("missing")

    def test_label_restriction(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph, labels=["x"])
        assert store.labels == ("x",)
        with pytest.raises(UnknownLabelError):
            store.matrix("y")

    def test_path_matrix_two_hops(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        # x then y: a-x->b-y->c, a-x->c-y->d, b? (b-x->d, d has no y edge)
        matrix = store.path_matrix(["x", "y"])
        pairs = {
            (triangle_graph.vertex_by_id(int(r)), triangle_graph.vertex_by_id(int(c)))
            for r, c in zip(*matrix.nonzero())
        }
        assert pairs == {("a", "c"), ("a", "d")}

    def test_empty_path_is_identity(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        identity = store.path_matrix([])
        assert identity.nnz == 4
        assert identity.diagonal().all()

    def test_path_selectivity(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        assert store.path_selectivity(["x"]) == 3
        assert store.path_selectivity(["x", "y"]) == 2
        assert store.path_selectivity(["z", "x"]) == 2  # d->a->{b,c}

    def test_extend_matches_path_matrix(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        prefix = store.path_matrix(["x"])
        extended = store.extend(prefix, "y")
        assert (extended != store.path_matrix(["x", "y"])).nnz == 0

    def test_matrices_are_cached(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        assert store.matrix("x") is store.matrix("x")

    def test_snapshot_semantics(self, triangle_graph):
        store = LabelMatrixStore(triangle_graph)
        before = store.matrix("x").nnz
        triangle_graph.add_edge("c", "x", "a")
        assert store.matrix("x").nnz == before
