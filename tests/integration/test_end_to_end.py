"""Integration tests: the full pipeline from raw graph to paper findings.

Each test exercises several subsystems together (generator → catalog →
ordering → histogram → estimator → metrics), asserting the qualitative
results the paper reports rather than any single module's behaviour.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.estimation.errors import mean_error_rate
from repro.estimation.estimator import PathSelectivityEstimator
from repro.estimation.workload import full_domain_workload
from repro.graph.io import read_edge_list, write_edge_list
from repro.histogram.builder import build_histogram, domain_frequencies
from repro.ordering.registry import make_ordering, make_paper_orderings
from repro.paths.catalog import SelectivityCatalog


@pytest.fixture(scope="module")
def er_catalog():
    """A small synthetic (uniform-label) dataset, where the paper reports the
    largest sum-based advantage."""
    graph = load_dataset("snap-er", scale=0.004, seed=13)
    return SelectivityCatalog.from_graph(graph, 3)


class TestPaperFindings:
    def test_sum_based_beats_native_orderings_on_synthetic_data(self, er_catalog):
        """Figure 2's headline: sum-based has the lowest mean error rate."""
        bucket_count = max(4, er_catalog.domain_size // 20)
        workload = full_domain_workload(er_catalog)
        errors = {}
        for name, ordering in make_paper_orderings(er_catalog).items():
            estimator = PathSelectivityEstimator.build(
                er_catalog, ordering=ordering, bucket_count=bucket_count
            )
            pairs = [
                (estimator.estimate(path), float(er_catalog.selectivity(path)))
                for path in workload
            ]
            errors[name] = mean_error_rate(pairs)
        others = {name: value for name, value in errors.items() if name != "sum-based"}
        assert errors["sum-based"] <= min(others.values()) + 1e-9

    def test_cardinality_ranking_beats_alphabetical(self, er_catalog):
        """Second-order Figure 2 finding: *-card orderings beat *-alph ones."""
        bucket_count = max(4, er_catalog.domain_size // 20)
        sse = {}
        for name in ("num-alph", "num-card", "lex-alph", "lex-card"):
            ordering = make_ordering(name, catalog=er_catalog)
            histogram = build_histogram(er_catalog, ordering, bucket_count=bucket_count)
            sse[name] = histogram.total_sse()
        assert sse["num-card"] <= sse["num-alph"] + 1e-9
        assert sse["lex-card"] <= sse["lex-alph"] + 1e-9

    def test_ideal_ordering_is_the_floor(self, er_catalog):
        bucket_count = max(4, er_catalog.domain_size // 20)
        orderings = make_paper_orderings(er_catalog, include_ideal=True)
        sse = {
            name: build_histogram(er_catalog, ordering, bucket_count=bucket_count).total_sse()
            for name, ordering in orderings.items()
        }
        floor = sse.pop("ideal")
        assert all(floor <= value + 1e-9 for value in sse.values())

    def test_every_ordering_layout_is_a_permutation_of_the_same_multiset(self, er_catalog):
        layouts = []
        for _, ordering in make_paper_orderings(er_catalog).items():
            frequencies = domain_frequencies(er_catalog, ordering)
            layouts.append(sorted(frequencies.tolist()))
        for layout in layouts[1:]:
            assert layout == layouts[0]


class TestPipelinePersistence:
    def test_graph_and_catalog_round_trip_preserve_estimates(self, tmp_path, er_catalog):
        graph = load_dataset("moreno-health", scale=0.02)
        edge_path = tmp_path / "graph.tsv"
        write_edge_list(graph, edge_path)
        reloaded_graph = read_edge_list(edge_path, name=graph.name)
        # Edge-list files stringify vertex identifiers, so compare structure
        # (stringified edges and counts) rather than object identity.
        original_edges = {(str(e.source), e.label, str(e.target)) for e in graph.edges()}
        reloaded_edges = {
            (str(e.source), e.label, str(e.target)) for e in reloaded_graph.edges()
        }
        assert reloaded_edges == original_edges
        assert reloaded_graph.label_edge_counts() == graph.label_edge_counts()

        catalog = SelectivityCatalog.from_graph(graph, 2)
        catalog_path = tmp_path / "catalog.json"
        catalog.save(catalog_path)
        reloaded = SelectivityCatalog.load(catalog_path)

        estimator_a = PathSelectivityEstimator.build(
            catalog, ordering="sum-based", bucket_count=12
        )
        estimator_b = PathSelectivityEstimator.build(
            reloaded, ordering="sum-based", bucket_count=12
        )
        for path in full_domain_workload(catalog):
            assert estimator_a.estimate(path) == pytest.approx(estimator_b.estimate(path))

    def test_estimation_stays_consistent_across_histogram_kinds(self, er_catalog):
        """All histogram kinds answer every domain query without error and
        preserve total mass exactly."""
        ordering = make_ordering("sum-based", catalog=er_catalog)
        frequencies = domain_frequencies(er_catalog, ordering)
        for kind in ("equi-width", "equi-depth", "maxdiff", "end-biased", "v-optimal"):
            histogram = build_histogram(
                er_catalog, ordering, kind=kind, bucket_count=16, frequencies=frequencies
            )
            total = sum(
                histogram.estimate_index(i) for i in range(er_catalog.domain_size)
            )
            assert total == pytest.approx(float(frequencies.sum()), rel=1e-6)
