"""Metric primitives: thread safety, cardinality cap, Prometheus exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    OVERFLOW_LABEL_VALUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    metrics_enabled,
    set_enabled,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = Counter("t_requests_total", "Requests.", registry=registry)
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_negative_increment_rejected(self, registry):
        counter = Counter("t_neg_total", "Neg.", registry=registry)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_children_and_unlabelled_sum(self, registry):
        counter = Counter(
            "t_by_route_total", "By route.", labelnames=("route",), registry=registry
        )
        counter.inc(route="/a")
        counter.inc(3, route="/b")
        assert counter.value(route="/a") == 1
        assert counter.value(route="/b") == 3
        assert counter.value() == 4

    def test_wrong_labels_rejected(self, registry):
        counter = Counter(
            "t_strict_total", "Strict.", labelnames=("route",), registry=registry
        )
        with pytest.raises(ValueError):
            counter.inc(verb="GET")
        with pytest.raises(ValueError):
            counter.inc()

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(ValueError):
            Counter("bad name", "Nope.", registry=registry)

    def test_thread_contention_is_exact(self, registry):
        counter = Counter("t_contended_total", "Contended.", registry=registry)
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestGauge:
    def test_set_and_inc(self, registry):
        gauge = Gauge("t_depth", "Depth.", registry=registry)
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_scrape_function_wins(self, registry):
        gauge = Gauge("t_live", "Live.", registry=registry)
        gauge.set(1)
        gauge.set_function(lambda: 42)
        assert gauge.value() == 42
        assert "t_live 42" in registry.render()

    def test_raising_scrape_function_degrades(self, registry):
        gauge = Gauge("t_flaky", "Flaky.", registry=registry)
        gauge.set(7)

        def boom() -> float:
            raise RuntimeError("scrape me not")

        gauge.set_function(boom)
        assert gauge.value() == 7
        assert "t_flaky 7" in registry.render()


class TestHistogram:
    def test_observe_readers(self, registry):
        histogram = Histogram(
            "t_seconds", "Latency.", buckets=(0.1, 1.0, 10.0), registry=registry
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.total() == pytest.approx(5.55)
        assert histogram.minimum() == pytest.approx(0.05)
        assert histogram.maximum() == pytest.approx(5.0)
        assert histogram.mean() == pytest.approx(5.55 / 3)

    def test_empty_readers_are_zero(self, registry):
        histogram = Histogram("t_empty_seconds", "Empty.", registry=registry)
        assert histogram.count() == 0
        assert histogram.minimum() == 0.0
        assert histogram.maximum() == 0.0
        assert histogram.mean() == 0.0

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            Histogram("t_bad_seconds", "Bad.", buckets=(1.0, 0.5), registry=registry)

    def test_cumulative_bucket_rendering(self, registry):
        histogram = Histogram(
            "t_cum_seconds", "Cumulative.", buckets=(1.0, 2.0), registry=registry
        )
        for value in (0.5, 1.5, 1.7, 50.0):
            histogram.observe(value)
        text = registry.render()
        assert 't_cum_seconds_bucket{le="1"} 1' in text
        assert 't_cum_seconds_bucket{le="2"} 3' in text
        assert 't_cum_seconds_bucket{le="+Inf"} 4' in text
        assert "t_cum_seconds_count 4" in text

    def test_thread_contention_is_exact(self, registry):
        histogram = Histogram("t_race_seconds", "Race.", registry=registry)
        threads = [
            threading.Thread(
                target=lambda: [histogram.observe(0.001) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count() == 4000
        assert histogram.total() == pytest.approx(4.0)


class TestCardinalityCap:
    def test_overflow_collapses_into_other(self, registry):
        counter = Counter(
            "t_capped_total",
            "Capped.",
            labelnames=("graph",),
            registry=registry,
            max_label_sets=4,
        )
        for index in range(10):
            counter.inc(graph=f"g{index}")
        # 4 real children; the six overflowing combinations share one child.
        assert counter.label_set_count() == 5
        assert counter.value(graph=OVERFLOW_LABEL_VALUE) == 6
        assert counter.value() == 10
        assert f'graph="{OVERFLOW_LABEL_VALUE}"' in registry.render()


class TestRegistry:
    def test_replace_on_register(self, registry):
        first = Counter("t_replaced_total", "First.", registry=registry)
        first.inc(5)
        second = Counter("t_replaced_total", "Second.", registry=registry)
        second.inc()
        assert registry.get("t_replaced_total") is second
        assert "t_replaced_total 1" in registry.render()

    def test_render_golden_document(self):
        registry = MetricsRegistry()
        counter = Counter(
            "g_requests_total", "Total requests.", labelnames=("route",), registry=registry
        )
        counter.inc(2, route="/estimate")
        gauge = Gauge("g_depth", "Queue depth.", registry=registry)
        gauge.set(3)
        histogram = Histogram(
            "g_wait_seconds", "Wait.", buckets=(0.5, 1.0), registry=registry
        )
        histogram.observe(0.25)
        expected = "\n".join(
            [
                "# HELP g_depth Queue depth.",
                "# TYPE g_depth gauge",
                "g_depth 3",
                "# HELP g_requests_total Total requests.",
                "# TYPE g_requests_total counter",
                'g_requests_total{route="/estimate"} 2',
                "# HELP g_wait_seconds Wait.",
                "# TYPE g_wait_seconds histogram",
                'g_wait_seconds_bucket{le="0.5"} 1',
                'g_wait_seconds_bucket{le="1"} 1',
                'g_wait_seconds_bucket{le="+Inf"} 1',
                "g_wait_seconds_sum 0.25",
                "g_wait_seconds_count 1",
                "",
            ]
        )
        assert registry.render() == expected

    def test_label_value_escaping(self, registry):
        counter = Counter(
            "t_escaped_total", "Escaped.", labelnames=("path",), registry=registry
        )
        counter.inc(path='a"b\\c\nd')
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()

    def test_names_sorted(self, registry):
        Counter("t_zz_total", "Z.", registry=registry)
        Counter("t_aa_total", "A.", registry=registry)
        assert registry.names() == ("t_aa_total", "t_zz_total")

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestKillSwitch:
    def test_disabled_mutation_is_a_noop(self, registry):
        counter = Counter("t_switch_total", "Switch.", registry=registry)
        histogram = Histogram("t_switch_seconds", "Switch.", registry=registry)
        counter.inc()
        try:
            set_enabled(False)
            assert not metrics_enabled()
            counter.inc(100)
            histogram.observe(1.0)
        finally:
            set_enabled(True)
        assert metrics_enabled()
        assert counter.value() == 1
        assert histogram.count() == 0
