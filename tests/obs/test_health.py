"""Health state: readiness checks, the drain latch, server transitions."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import EngineConfig
from repro.graph.generators import zipf_labeled_graph
from repro.obs.health import HealthState
from repro.serving import SessionRegistry, make_server

CONFIG = EngineConfig(max_length=2, bucket_count=8)


class TestHealthState:
    def test_ready_with_no_checks(self):
        state = HealthState()
        ready, checks = state.readiness()
        assert ready
        assert checks == {"not_draining": True}

    def test_failing_check_makes_unready(self):
        state = HealthState()
        state.add_check("ok", lambda: True)
        state.add_check("broken", lambda: False)
        ready, checks = state.readiness()
        assert not ready
        assert checks["ok"] and not checks["broken"]

    def test_raising_check_counts_as_failed(self):
        state = HealthState()

        def boom() -> bool:
            raise RuntimeError("nope")

        state.add_check("boom", boom)
        ready, checks = state.readiness()
        assert not ready
        assert checks["boom"] is False

    def test_drain_latch_is_one_way_and_idempotent(self):
        state = HealthState()
        assert not state.draining
        state.begin_drain()
        first = state.as_row()["drain_started_unix"]
        state.begin_drain()
        assert state.draining
        assert state.as_row()["drain_started_unix"] == first
        ready, checks = state.readiness()
        assert not ready
        assert checks["not_draining"] is False

    def test_as_row_status(self):
        state = HealthState()
        assert state.as_row()["status"] == "ready"
        state.add_check("down", lambda: False)
        assert state.as_row()["status"] == "unready"


@pytest.fixture()
def server():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestServerTransitions:
    def test_readyz_flips_on_drain_while_healthz_stays_up(self, server):
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        status, document = _get(f"{base}/readyz")
        assert status == 200
        assert document["status"] == "ready"
        assert document["checks"]["scheduler_worker_alive"]
        assert document["checks"]["scheduler_accepting"]

        status, document = _get(f"{base}/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["draining"] is False

        server.begin_drain()

        # Liveness keeps answering 200 during the drain window...
        status, document = _get(f"{base}/healthz")
        assert status == 200
        assert document["status"] == "draining"
        assert document["draining"] is True

        # ...while readiness steers load balancers away.
        status, document = _get(f"{base}/readyz")
        assert status == 503
        assert document["status"] == "unready"
        assert document["checks"]["not_draining"] is False
