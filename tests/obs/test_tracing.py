"""Tracing: span capture, context propagation, the store, JSON logs."""

from __future__ import annotations

import json
import logging
import threading
import urllib.request

import pytest

from repro.engine import EngineConfig
from repro.graph.generators import zipf_labeled_graph
from repro.obs import tracing
from repro.obs.tracing import Trace, TraceStore, activate, current_trace, new_request_id
from repro.serving import SessionRegistry, make_server

CONFIG = EngineConfig(max_length=2, bucket_count=8)


class TestTrace:
    def test_request_id_minted_when_absent(self):
        trace = Trace()
        assert len(trace.request_id) == 32

    def test_span_context_manager_records(self):
        trace = Trace("rid", route="GET /x")
        with trace.span("step", detail=1):
            pass
        spans = trace.spans()
        assert [span.name for span in spans] == ["step"]
        assert spans[0].attrs == {"detail": 1}
        assert spans[0].seconds >= 0.0

    def test_finish_is_idempotent(self):
        trace = Trace()
        first = trace.finish(200)
        second = trace.finish(500)
        assert trace.status == 200
        assert first == second == trace.seconds

    def test_as_row_shape(self):
        trace = Trace("rid", route="POST /estimate")
        trace.add_span("a", 0.5)
        trace.finish(200)
        row = trace.as_row()
        assert row["request_id"] == "rid"
        assert row["route"] == "POST /estimate"
        assert row["status"] == 200
        assert row["spans"] == [{"name": "a", "seconds": 0.5}]


class TestContextPropagation:
    def test_module_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        with tracing.span("ignored"):
            pass  # nothing to assert beyond "does not raise"

    def test_activate_scopes_the_trace(self):
        trace = Trace()
        with activate(trace):
            assert current_trace() is trace
            with tracing.span("inner", tag="x"):
                pass
            with activate(None):
                assert current_trace() is None
        assert current_trace() is None
        assert [span.name for span in trace.spans()] == ["inner"]

    def test_explicit_handoff_across_threads(self):
        # The scheduler pattern: capture on submit, re-activate on the worker.
        trace = Trace()
        with activate(trace):
            captured = current_trace()

        def worker() -> None:
            with activate(captured):
                with tracing.span("worker.step"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert [span.name for span in trace.spans()] == ["worker.step"]


class TestTraceStore:
    def _finished(self, seconds: float, request_id: str) -> Trace:
        trace = Trace(request_id)
        trace.finish(200)
        trace.seconds = seconds
        return trace

    def test_windows_and_find(self):
        store = TraceStore(slowest=2, recent=3)
        for index in range(5):
            store.record(self._finished(float(index), f"r{index}"))
        snapshot = store.snapshot()
        assert store.recorded() == 5
        assert [row["request_id"] for row in snapshot["recent"]] == ["r4", "r3", "r2"]
        assert [row["request_id"] for row in snapshot["slowest"]] == ["r4", "r3"]
        assert store.find("r4") is not None
        assert store.find("r0") is None

    def test_size_validation(self):
        with pytest.raises(ValueError):
            TraceStore(slowest=0)


class TestJsonLogs:
    def test_emit_trace_is_one_json_line(self, capsys):
        tracing.configure_logging(json_lines=True, level="info")
        try:
            trace = Trace("deadbeef", route="POST /estimate")
            trace.add_span("session.histogram", 0.01, kind="v-optimal")
            trace.finish(200)
            tracing.emit_trace(trace)
        finally:
            logger = logging.getLogger("repro")
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_obs", False):
                    logger.removeHandler(handler)
            logger.propagate = True
        line = capsys.readouterr().err.strip().splitlines()[-1]
        document = json.loads(line)
        assert document["request_id"] == "deadbeef"
        assert document["status"] == 200
        assert document["spans"][0]["name"] == "session.histogram"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            tracing.configure_logging(level="chatty")


@pytest.fixture()
def server():
    registry = SessionRegistry(default_config=CONFIG)
    registry.register(
        "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7, name="g")
    )
    server = make_server(registry, port=0, window_seconds=0.005)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


class TestEndToEndPropagation:
    def test_one_request_id_spans_http_scheduler_and_registry(self, server):
        host, port = server.server_address[:2]
        request_id = new_request_id()
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/estimate",
            data=json.dumps({"graph": "g", "paths": ["1/2", "2"]}).encode(),
            headers={"Content-Type": "application/json", "X-Request-Id": request_id},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"] == request_id
            json.loads(response.read())
        trace = server.traces.find(request_id)
        assert trace is not None
        names = {span.name for span in trace.spans()}
        # The cold first request crosses every layer: HTTP enqueue, the
        # scheduler's wait/batch spans, and the registry build it triggered.
        assert "scheduler.enqueue" in names
        assert "scheduler.wait" in names
        assert "scheduler.estimate_batch" in names
        assert "registry.build" in names

    def test_scrape_routes_are_not_traced(self, server):
        host, port = server.server_address[:2]
        before = server.traces.recorded()
        with urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=30):
            pass
        assert server.traces.recorded() == before

    def test_kill_switch_disables_request_tracing(self, server):
        host, port = server.server_address[:2]
        before = server.traces.recorded()
        request_id = new_request_id()
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/estimate",
            data=json.dumps({"graph": "g", "paths": ["1/2"]}).encode(),
            headers={"Content-Type": "application/json", "X-Request-Id": request_id},
        )
        tracing.set_tracing_enabled(False)
        try:
            assert not tracing.tracing_enabled()
            with urllib.request.urlopen(request, timeout=30) as response:
                # The id is still echoed (correlation survives), but no
                # trace is created or retained.
                assert response.headers["X-Request-Id"] == request_id
                json.loads(response.read())
        finally:
            tracing.set_tracing_enabled(True)
        assert server.traces.recorded() == before
        assert server.traces.find(request_id) is None
