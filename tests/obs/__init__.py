"""Tests for the observability layer (metrics, tracing, health)."""
