"""Tests for the public package surface (`repro` and `repro.core`)."""

from __future__ import annotations

import importlib

import pytest


class TestTopLevelExports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_all_names_resolve(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name), name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.paths",
            "repro.ordering",
            "repro.histogram",
            "repro.estimation",
            "repro.optimizer",
            "repro.datasets",
            "repro.experiments",
        ],
    )
    def test_subpackage_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_exception_hierarchy(self):
        from repro import ReproError
        from repro.exceptions import (
            GraphError,
            HistogramError,
            OrderingError,
            PathError,
        )

        for exc in (GraphError, PathError, OrderingError, HistogramError):
            assert issubclass(exc, ReproError)


class TestQuickstartSurface:
    def test_readme_flow(self, small_graph):
        """The exact flow advertised in the README quickstart."""
        from repro import (
            PathSelectivityEstimator,
            SelectivityCatalog,
            error_rate,
        )

        catalog = SelectivityCatalog.from_graph(small_graph, 2)
        estimator = PathSelectivityEstimator.build(
            catalog, ordering="sum-based", bucket_count=8
        )
        some_path = next(iter(catalog.nonzero_paths()))
        estimate = estimator.estimate(some_path)
        truth = catalog.selectivity(some_path)
        assert estimate >= 0
        assert -1.0 <= error_rate(estimate, truth) <= 1.0
