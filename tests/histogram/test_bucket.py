"""Tests for histogram buckets."""

from __future__ import annotations

import pytest

from repro.exceptions import HistogramError
from repro.histogram.bucket import Bucket


class TestBucket:
    def test_from_frequencies(self):
        bucket = Bucket.from_frequencies(3, [1.0, 2.0, 3.0])
        assert bucket.start == 3
        assert bucket.end == 6
        assert bucket.width == 3
        assert bucket.total == 6.0
        assert bucket.average == 2.0
        assert bucket.minimum == 1.0
        assert bucket.maximum == 3.0

    def test_variance_and_sse(self):
        bucket = Bucket.from_frequencies(0, [2.0, 4.0, 6.0])
        assert bucket.variance == pytest.approx(8.0 / 3.0)
        assert bucket.sse == pytest.approx(8.0)

    def test_constant_bucket_has_zero_sse(self):
        bucket = Bucket.from_frequencies(0, [5.0, 5.0, 5.0])
        assert bucket.sse == 0.0
        assert bucket.variance == 0.0

    def test_contains(self):
        bucket = Bucket.from_frequencies(2, [1.0, 1.0])
        assert bucket.contains(2)
        assert bucket.contains(3)
        assert not bucket.contains(4)
        assert not bucket.contains(1)

    def test_empty_interval_rejected(self):
        with pytest.raises(HistogramError):
            Bucket(start=3, end=3, total=0, squared_total=0, minimum=0, maximum=0)
        with pytest.raises(HistogramError):
            Bucket.from_frequencies(0, [])

    def test_singleton_bucket(self):
        bucket = Bucket.from_frequencies(7, [9.0])
        assert bucket.width == 1
        assert bucket.average == 9.0
        assert bucket.sse == 0.0
