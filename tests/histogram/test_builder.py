"""Tests for the label-path histogram builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HistogramError
from repro.histogram.builder import (
    HISTOGRAM_KINDS,
    LabelPathHistogram,
    build_histogram,
    domain_frequencies,
    make_histogram,
)
from repro.ordering.registry import make_ordering


class TestDomainFrequencies:
    def test_layout_matches_ordering(self, small_catalog):
        ordering = make_ordering("num-alph", catalog=small_catalog)
        frequencies = domain_frequencies(small_catalog, ordering)
        assert frequencies.shape == (small_catalog.domain_size,)
        for index in range(0, ordering.size, 5):
            path = ordering.path(index)
            assert frequencies[index] == small_catalog.selectivity(path)

    def test_total_mass_preserved_across_orderings(self, small_catalog):
        totals = set()
        for name in ("num-alph", "lex-card", "sum-based"):
            ordering = make_ordering(name, catalog=small_catalog)
            totals.add(float(domain_frequencies(small_catalog, ordering).sum()))
        assert len(totals) == 1
        assert totals.pop() == pytest.approx(small_catalog.total_selectivity())

    def test_mismatched_alphabet_rejected(self, small_catalog):
        foreign = make_ordering("num-alph", labels=["q", "r"], max_length=2)
        with pytest.raises(HistogramError):
            domain_frequencies(small_catalog, foreign)

    def test_ordering_longer_than_catalog_rejected(self, small_catalog):
        too_long = make_ordering(
            "num-alph", labels=list(small_catalog.labels), max_length=small_catalog.max_length + 1
        )
        with pytest.raises(HistogramError):
            domain_frequencies(small_catalog, too_long)

    def test_shorter_ordering_allowed(self, small_catalog):
        shorter = make_ordering(
            "num-alph", labels=list(small_catalog.labels), max_length=1
        )
        frequencies = domain_frequencies(small_catalog, shorter)
        assert frequencies.shape == (len(small_catalog.labels),)


class TestMakeHistogram:
    def test_every_registered_kind_constructs(self):
        data = [1.0, 5.0, 2.0, 8.0, 4.0, 4.0]
        for kind in HISTOGRAM_KINDS:
            histogram = make_histogram(data, kind, 3)
            assert histogram.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(HistogramError):
            make_histogram([1.0, 2.0], "wavelet", 1)

    def test_kwargs_forwarded(self):
        histogram = make_histogram([1.0, 2.0, 3.0], "v-optimal", 2, strategy="greedy")
        assert histogram.effective_strategy == "greedy"


class TestLabelPathHistogram:
    def test_estimate_routes_through_ordering(self, small_catalog):
        ordering = make_ordering("sum-based", catalog=small_catalog)
        label_path_histogram = build_histogram(
            small_catalog, ordering, bucket_count=8
        )
        path = ordering.path(3)
        expected = label_path_histogram.histogram.estimate(3)
        assert label_path_histogram.estimate(path) == pytest.approx(expected)
        assert label_path_histogram.estimate_index(3) == pytest.approx(expected)

    def test_method_name_and_buckets(self, small_catalog):
        ordering = make_ordering("lex-card", catalog=small_catalog)
        label_path_histogram = build_histogram(small_catalog, ordering, bucket_count=4)
        assert label_path_histogram.method_name == "lex-card"
        assert label_path_histogram.bucket_count == 4
        assert label_path_histogram.ordering is ordering

    def test_domain_mismatch_rejected(self, small_catalog):
        ordering = make_ordering("num-alph", catalog=small_catalog)
        wrong_size_histogram = make_histogram(np.ones(5), "equi-width", 2)
        with pytest.raises(HistogramError):
            LabelPathHistogram(ordering, wrong_size_histogram)

    def test_precomputed_frequencies_reused(self, small_catalog):
        ordering = make_ordering("num-card", catalog=small_catalog)
        frequencies = domain_frequencies(small_catalog, ordering)
        first = build_histogram(
            small_catalog, ordering, bucket_count=8, frequencies=frequencies
        )
        second = build_histogram(small_catalog, ordering, bucket_count=8)
        paths = [ordering.path(i) for i in range(0, ordering.size, 7)]
        assert [first.estimate(p) for p in paths] == pytest.approx(
            [second.estimate(p) for p in paths]
        )

    def test_total_sse_exposed(self, small_catalog):
        ordering = make_ordering("num-alph", catalog=small_catalog)
        label_path_histogram = build_histogram(small_catalog, ordering, bucket_count=4)
        assert label_path_histogram.total_sse() >= 0.0


class TestOrderingImprovesHistogramQuality:
    def test_sum_based_has_lower_sse_than_native(self, moreno_tiny_catalog):
        """The core claim: better ordering -> lower within-bucket variance."""
        results = {}
        for name in ("num-alph", "sum-based"):
            ordering = make_ordering(name, catalog=moreno_tiny_catalog)
            histogram = build_histogram(moreno_tiny_catalog, ordering, bucket_count=16)
            results[name] = histogram.total_sse()
        assert results["sum-based"] <= results["num-alph"]

    def test_ideal_ordering_minimises_sse(self, moreno_tiny_catalog):
        sse = {}
        for name in ("num-alph", "sum-based", "ideal"):
            ordering = make_ordering(name, catalog=moreno_tiny_catalog)
            histogram = build_histogram(moreno_tiny_catalog, ordering, bucket_count=16)
            sse[name] = histogram.total_sse()
        assert sse["ideal"] <= sse["sum-based"]
        assert sse["ideal"] <= sse["num-alph"]
