"""Tests for label-path histogram persistence."""

from __future__ import annotations

import pytest

from repro.exceptions import HistogramError, OrderingError
from repro.histogram.builder import build_histogram
from repro.histogram.serialization import (
    histogram_from_dict,
    histogram_to_dict,
    load_histogram,
    save_histogram,
)
from repro.ordering.registry import PAPER_ORDERINGS, make_ordering
from repro.paths.enumeration import enumerate_label_paths


class TestRoundTrip:
    @pytest.mark.parametrize("method", PAPER_ORDERINGS)
    def test_estimates_identical_after_round_trip(self, small_catalog, method, tmp_path):
        ordering = make_ordering(method, catalog=small_catalog)
        original = build_histogram(small_catalog, ordering, bucket_count=8)
        target = tmp_path / "histogram.json"
        save_histogram(original, target)
        restored = load_histogram(target)
        assert restored.method_name == original.method_name
        assert restored.bucket_count == original.bucket_count
        for path in enumerate_label_paths(small_catalog.labels, small_catalog.max_length):
            assert restored.estimate(path) == pytest.approx(original.estimate(path))

    def test_dict_round_trip_without_files(self, small_catalog):
        ordering = make_ordering("sum-based", catalog=small_catalog)
        original = build_histogram(small_catalog, ordering, bucket_count=6)
        document = histogram_to_dict(original)
        restored = histogram_from_dict(document)
        assert restored.histogram.domain_size == original.histogram.domain_size

    def test_restored_kind_preserved(self, small_catalog, tmp_path):
        ordering = make_ordering("num-card", catalog=small_catalog)
        original = build_histogram(
            small_catalog, ordering, kind="equi-width", bucket_count=4
        )
        target = tmp_path / "h.json"
        save_histogram(original, target)
        assert load_histogram(target).histogram.kind == "equi-width"


class TestValidation:
    def test_ideal_ordering_not_serialisable(self, small_catalog):
        ordering = make_ordering("ideal", catalog=small_catalog)
        histogram = build_histogram(small_catalog, ordering, bucket_count=4)
        with pytest.raises(OrderingError):
            histogram_to_dict(histogram)

    def test_invalid_document_rejected(self):
        with pytest.raises(HistogramError):
            histogram_from_dict({"ordering": {}, "histogram": {}})

    def test_tampered_buckets_rejected(self, small_catalog):
        ordering = make_ordering("num-alph", catalog=small_catalog)
        document = histogram_to_dict(
            build_histogram(small_catalog, ordering, bucket_count=4)
        )
        document["histogram"]["buckets"] = document["histogram"]["buckets"][:-1]
        with pytest.raises(HistogramError):
            histogram_from_dict(document)

    def test_restored_histogram_cannot_be_rebucketed(self, small_catalog, tmp_path):
        ordering = make_ordering("num-alph", catalog=small_catalog)
        target = tmp_path / "h.json"
        save_histogram(build_histogram(small_catalog, ordering, bucket_count=4), target)
        restored = load_histogram(target)
        with pytest.raises(HistogramError):
            restored.histogram._boundaries(None, 2)

    def test_load_non_object_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(HistogramError):
            load_histogram(target)
