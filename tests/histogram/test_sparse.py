"""Sparse-input histogram construction: byte-identical to the dense path.

The contract under test is strict: for every built-in histogram kind, a
:class:`SparseFrequencies` view of an integer-valued vector must produce the
same bucket boundaries, the same bucket statistics and the same estimates as
the dense vector itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HistogramError, InvalidBucketCountError
from repro.histogram import HISTOGRAM_KINDS
from repro.histogram.base import Histogram
from repro.histogram.sparse import SparseFrequencies, absent_positions
from repro.histogram.vopt import VOptimalHistogram


def sparse_of(dense: np.ndarray) -> SparseFrequencies:
    positions = np.nonzero(dense)[0]
    return SparseFrequencies(positions, dense[positions].astype(float), dense.size)


def integer_vector(size: int, nnz: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = np.zeros(size)
    if nnz:
        positions = rng.choice(size, size=min(nnz, size), replace=False)
        dense[positions] = rng.integers(1, 10**6, size=positions.size).astype(float)
    return dense


VECTORS = [
    integer_vector(50, 5, 1),
    integer_vector(400, 30, 2),
    integer_vector(2048, 64, 3),
    integer_vector(2048, 1500, 4),  # denser than typical, still must agree
    integer_vector(64, 64, 5),  # fully dense
    integer_vector(256, 1, 6),  # single nonzero
    integer_vector(256, 0, 7),  # all zero
]
# Plateaus and adjacent nonzeros: exercises maxdiff tie-breaking and the
# V-optimal equal-width padding.
_plateau = np.zeros(900)
_plateau[100:110] = 7.0
_plateau[500:520] = 7.0
_plateau[899] = 3.0
VECTORS.append(_plateau)


class TestSparseFrequencies:
    def test_validation(self):
        with pytest.raises(HistogramError):
            SparseFrequencies([3, 1], [1.0, 1.0], 10)  # unsorted
        with pytest.raises(HistogramError):
            SparseFrequencies([1, 1], [1.0, 1.0], 10)  # duplicate
        with pytest.raises(HistogramError):
            SparseFrequencies([10], [1.0], 10)  # out of range
        with pytest.raises(HistogramError):
            SparseFrequencies([1], [0.0], 10)  # explicit zero
        with pytest.raises(HistogramError):
            SparseFrequencies([1], [-2.0], 10)  # negative
        with pytest.raises(HistogramError):
            SparseFrequencies([], [], 0)  # empty domain

    def test_value_at_and_toarray(self):
        sparse = SparseFrequencies([2, 5], [3.0, 9.0], 8)
        assert sparse.value_at([0, 2, 5, 7]).tolist() == [0.0, 3.0, 9.0, 0.0]
        dense = sparse.toarray()
        assert dense.tolist() == [0, 0, 3, 0, 0, 9, 0, 0]
        assert sparse.nnz == 2
        assert sparse.density == pytest.approx(0.25)

    def test_absent_positions_walk(self):
        present = np.array([0, 1, 4])
        assert list(absent_positions(present, 8, 3)) == [2, 3, 5]
        assert list(absent_positions(present, 3, 5)) == [2]
        assert list(absent_positions(np.array([]), 4, 2)) == [0, 1]


@pytest.mark.parametrize("kind", sorted(HISTOGRAM_KINDS))
class TestSparseDenseEquivalence:
    @pytest.mark.parametrize("bucket_count", [1, 2, 7, 32])
    def test_boundaries_statistics_estimates(self, kind, bucket_count):
        histogram_cls = HISTOGRAM_KINDS[kind]
        for dense in VECTORS:
            if bucket_count > dense.size:
                continue
            built_dense = histogram_cls(dense, bucket_count)
            built_sparse = histogram_cls(sparse_of(dense), bucket_count)
            assert [
                (bucket.start, bucket.end) for bucket in built_dense.buckets
            ] == [(bucket.start, bucket.end) for bucket in built_sparse.buckets]
            assert [
                (bucket.total, bucket.squared_total, bucket.minimum, bucket.maximum)
                for bucket in built_dense.buckets
            ] == [
                (bucket.total, bucket.squared_total, bucket.minimum, bucket.maximum)
                for bucket in built_sparse.buckets
            ]
            probes = np.arange(dense.size, dtype=np.int64)
            assert np.array_equal(
                built_dense.estimate_batch(probes),
                built_sparse.estimate_batch(probes),
            )

    def test_bucket_count_validation(self, kind):
        histogram_cls = HISTOGRAM_KINDS[kind]
        sparse = SparseFrequencies([1], [2.0], 4)
        with pytest.raises(InvalidBucketCountError):
            histogram_cls(sparse, 0)
        with pytest.raises(InvalidBucketCountError):
            histogram_cls(sparse, 5)


class TestVOptimalSparse:
    def test_greedy_strategy_matches(self):
        dense = integer_vector(3000, 80, 11)
        built_dense = VOptimalHistogram(dense, 24, strategy="greedy")
        built_sparse = VOptimalHistogram(sparse_of(dense), 24, strategy="greedy")
        assert built_dense.effective_strategy == "greedy"
        assert built_sparse.effective_strategy == "greedy"
        assert [bucket.start for bucket in built_dense.buckets] == [
            bucket.start for bucket in built_sparse.buckets
        ]
        assert built_dense.total_sse() == built_sparse.total_sse()

    def test_auto_picks_exact_below_limit_and_matches(self):
        dense = integer_vector(512, 30, 12)
        built_dense = VOptimalHistogram(dense, 16)
        built_sparse = VOptimalHistogram(sparse_of(dense), 16)
        assert built_sparse.effective_strategy == "exact"
        assert [bucket.start for bucket in built_dense.buckets] == [
            bucket.start for bucket in built_sparse.buckets
        ]

    def test_explicit_exact_densifies(self):
        dense = integer_vector(2000, 40, 13)
        built_dense = VOptimalHistogram(dense, 8, strategy="exact")
        built_sparse = VOptimalHistogram(sparse_of(dense), 8, strategy="exact")
        assert built_sparse.effective_strategy == "exact"
        assert [bucket.start for bucket in built_dense.buckets] == [
            bucket.start for bucket in built_sparse.buckets
        ]


class TestBaseFallback:
    def test_custom_kind_densifies_through_base(self):
        class FirstHalfHistogram(Histogram):
            kind = "first-half"

            def _boundaries(self, frequencies, bucket_count):
                return [0, int(frequencies.size) // 2]

        dense = integer_vector(100, 9, 21)
        built_dense = FirstHalfHistogram(dense, 2)
        built_sparse = FirstHalfHistogram(sparse_of(dense), 2)
        assert [(bucket.start, bucket.end) for bucket in built_dense.buckets] == [
            (bucket.start, bucket.end) for bucket in built_sparse.buckets
        ]
        assert built_dense.total_frequency() == built_sparse.total_frequency()
