"""Property-based tests (hypothesis) for histograms."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram.endbiased import EndBiasedHistogram
from repro.histogram.equidepth import EquiDepthHistogram
from repro.histogram.equiwidth import EquiWidthHistogram
from repro.histogram.maxdiff import MaxDiffHistogram
from repro.histogram.vopt import VOptimalHistogram

HISTOGRAM_CLASSES = [
    EquiWidthHistogram,
    EquiDepthHistogram,
    MaxDiffHistogram,
    EndBiasedHistogram,
    VOptimalHistogram,
]

frequency_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(frequencies=frequency_vectors, data=st.data())
def test_buckets_always_tile_the_domain(frequencies, data):
    bucket_count = data.draw(st.integers(min_value=1, max_value=len(frequencies)))
    for histogram_cls in HISTOGRAM_CLASSES:
        histogram = histogram_cls(frequencies, bucket_count)
        buckets = histogram.buckets
        assert buckets[0].start == 0
        assert buckets[-1].end == len(frequencies)
        for left, right in zip(buckets, buckets[1:]):
            assert left.end == right.start


@settings(max_examples=60, deadline=None)
@given(frequencies=frequency_vectors, data=st.data())
def test_total_mass_is_preserved(frequencies, data):
    bucket_count = data.draw(st.integers(min_value=1, max_value=len(frequencies)))
    for histogram_cls in HISTOGRAM_CLASSES:
        histogram = histogram_cls(frequencies, bucket_count)
        assert histogram.total_frequency() == np.sum(np.asarray(frequencies)) or (
            abs(histogram.total_frequency() - float(np.sum(np.asarray(frequencies))))
            <= 1e-6 * max(1.0, float(np.sum(np.asarray(frequencies))))
        )


@settings(max_examples=60, deadline=None)
@given(frequencies=frequency_vectors, data=st.data())
def test_point_estimates_bounded_by_bucket_extremes(frequencies, data):
    bucket_count = data.draw(st.integers(min_value=1, max_value=len(frequencies)))
    for histogram_cls in HISTOGRAM_CLASSES:
        histogram = histogram_cls(frequencies, bucket_count)
        for index in range(len(frequencies)):
            bucket = histogram.bucket_for(index)
            estimate = histogram.estimate(index)
            assert bucket.minimum - 1e-9 <= estimate <= bucket.maximum + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    frequencies=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
        min_size=4,
        max_size=40,
    ),
    data=st.data(),
)
def test_exact_voptimal_is_at_least_as_good_as_any_other(frequencies, data):
    bucket_count = data.draw(st.integers(min_value=1, max_value=len(frequencies) // 2 or 1))
    exact = VOptimalHistogram(frequencies, bucket_count, strategy="exact")
    for histogram_cls in (EquiWidthHistogram, EquiDepthHistogram, MaxDiffHistogram):
        other = histogram_cls(frequencies, bucket_count)
        # The exact V-optimal SSE is the minimum over all β-bucket partitions,
        # so no other histogram with at most as many buckets can beat it.
        if other.bucket_count <= exact.bucket_count:
            assert exact.total_sse() <= other.total_sse() + 1e-6


@settings(max_examples=50, deadline=None)
@given(
    frequencies=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=2, max_size=60
    ),
    data=st.data(),
)
def test_more_buckets_never_hurt_exact_voptimal(frequencies, data):
    small_beta = data.draw(st.integers(min_value=1, max_value=len(frequencies) - 1))
    large_beta = data.draw(st.integers(min_value=small_beta, max_value=len(frequencies)))
    small = VOptimalHistogram(frequencies, small_beta, strategy="exact")
    large = VOptimalHistogram(frequencies, large_beta, strategy="exact")
    assert large.total_sse() <= small.total_sse() + 1e-6
