"""Tests for the concrete histogram types and the shared base machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HistogramError, InvalidBucketCountError
from repro.histogram.base import Histogram, frequencies_to_array
from repro.histogram.endbiased import EndBiasedHistogram
from repro.histogram.equidepth import EquiDepthHistogram
from repro.histogram.equiwidth import EquiWidthHistogram
from repro.histogram.maxdiff import MaxDiffHistogram
from repro.histogram.vopt import VOptimalHistogram

ALL_KINDS = [
    EquiWidthHistogram,
    EquiDepthHistogram,
    MaxDiffHistogram,
    EndBiasedHistogram,
    VOptimalHistogram,
]

SAMPLE = [5.0, 5.0, 5.0, 100.0, 100.0, 1.0, 1.0, 1.0, 50.0, 50.0, 50.0, 50.0]


class TestFrequencyValidation:
    def test_negative_rejected(self):
        with pytest.raises(HistogramError):
            frequencies_to_array([1.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(HistogramError):
            frequencies_to_array([])

    def test_two_dimensional_rejected(self):
        with pytest.raises(HistogramError):
            frequencies_to_array(np.zeros((2, 2)))

    def test_accepts_ints_and_arrays(self):
        assert frequencies_to_array([1, 2]).dtype == float
        assert frequencies_to_array(np.array([1.0, 2.0])).tolist() == [1.0, 2.0]


class TestSharedContract:
    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    @pytest.mark.parametrize("bucket_count", [1, 3, 6, len(SAMPLE)])
    def test_buckets_tile_domain(self, histogram_cls, bucket_count):
        histogram = histogram_cls(SAMPLE, bucket_count)
        buckets = histogram.buckets
        assert buckets[0].start == 0
        assert buckets[-1].end == len(SAMPLE)
        for left, right in zip(buckets, buckets[1:]):
            assert left.end == right.start
        assert histogram.bucket_count <= max(bucket_count, 1) or histogram_cls is EndBiasedHistogram

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_total_frequency_preserved(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 4)
        assert histogram.total_frequency() == pytest.approx(sum(SAMPLE))

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_point_estimate_is_bucket_average(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 4)
        for index in range(len(SAMPLE)):
            bucket = histogram.bucket_for(index)
            assert histogram.estimate(index) == pytest.approx(bucket.average)
            assert bucket.contains(index)

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_one_bucket_per_position_is_exact(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, len(SAMPLE))
        for index, value in enumerate(SAMPLE):
            assert histogram.estimate(index) == pytest.approx(value)
        assert histogram.total_sse() == pytest.approx(0.0)

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_invalid_bucket_counts(self, histogram_cls):
        with pytest.raises(InvalidBucketCountError):
            histogram_cls(SAMPLE, 0)
        with pytest.raises(InvalidBucketCountError):
            histogram_cls(SAMPLE, len(SAMPLE) + 1)

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_out_of_domain_lookup(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 3)
        with pytest.raises(HistogramError):
            histogram.estimate(-1)
        with pytest.raises(HistogramError):
            histogram.estimate(len(SAMPLE))

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_range_estimate_full_domain_equals_total(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 4)
        assert histogram.estimate_range(0, len(SAMPLE)) == pytest.approx(sum(SAMPLE))
        assert histogram.estimate_range(5, 5) == 0.0

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_range_estimate_validation(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 4)
        with pytest.raises(HistogramError):
            histogram.estimate_range(-1, 3)
        with pytest.raises(HistogramError):
            histogram.estimate_range(0, len(SAMPLE) + 1)

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_serialisation_shape(self, histogram_cls):
        document = histogram_cls(SAMPLE, 3).to_dict()
        assert document["kind"] == histogram_cls.kind
        assert document["domain_size"] == len(SAMPLE)
        assert len(document["buckets"]) >= 1

    @pytest.mark.parametrize("histogram_cls", ALL_KINDS)
    def test_storage_entries(self, histogram_cls):
        histogram = histogram_cls(SAMPLE, 3)
        assert histogram.storage_entries() == 2 * histogram.bucket_count

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Histogram(SAMPLE, 2)


class TestEquiWidth:
    def test_widths_differ_by_at_most_one(self):
        histogram = EquiWidthHistogram(list(range(10)), 4)
        widths = [bucket.width for bucket in histogram.buckets]
        assert sorted(widths) == [2, 2, 3, 3]

    def test_exact_division(self):
        histogram = EquiWidthHistogram(list(range(12)), 4)
        assert all(bucket.width == 3 for bucket in histogram.buckets)


class TestEquiDepth:
    def test_mass_roughly_balanced(self):
        histogram = EquiDepthHistogram(SAMPLE, 4)
        target = sum(SAMPLE) / 4
        for bucket in histogram.buckets:
            assert bucket.total <= 2.5 * target

    def test_all_zero_falls_back_to_equal_width(self):
        histogram = EquiDepthHistogram([0.0] * 8, 4)
        assert histogram.bucket_count == 4
        assert all(bucket.width == 2 for bucket in histogram.buckets)


class TestMaxDiff:
    def test_boundaries_at_largest_jumps(self):
        data = [1.0, 1.0, 1.0, 50.0, 50.0, 2.0, 2.0]
        histogram = MaxDiffHistogram(data, 3)
        starts = [bucket.start for bucket in histogram.buckets]
        assert 3 in starts  # jump 1 -> 50
        assert 5 in starts  # jump 50 -> 2

    def test_single_bucket(self):
        histogram = MaxDiffHistogram(SAMPLE, 1)
        assert histogram.bucket_count == 1


class TestEndBiased:
    def test_top_frequency_isolated(self):
        data = [1.0, 1.0, 500.0, 1.0, 1.0, 1.0]
        histogram = EndBiasedHistogram(data, 3)
        bucket = histogram.bucket_for(2)
        assert bucket.width == 1
        assert histogram.estimate(2) == pytest.approx(500.0)

    def test_respects_bucket_budget(self):
        histogram = EndBiasedHistogram(SAMPLE, 5)
        assert histogram.bucket_count <= 5


class TestVOptimal:
    def test_exact_finds_obvious_boundaries(self):
        data = [10.0] * 5 + [100.0] * 5 + [1.0] * 5
        histogram = VOptimalHistogram(data, 3, strategy="exact")
        starts = sorted(bucket.start for bucket in histogram.buckets)
        assert starts == [0, 5, 10]
        assert histogram.total_sse() == pytest.approx(0.0)

    def test_greedy_finds_obvious_boundaries(self):
        data = [10.0] * 5 + [100.0] * 5 + [1.0] * 5
        histogram = VOptimalHistogram(data, 3, strategy="greedy")
        starts = sorted(bucket.start for bucket in histogram.buckets)
        assert starts == [0, 5, 10]

    def test_exact_never_worse_than_greedy(self):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 200, size=60).astype(float)
        for beta in (2, 5, 9):
            exact = VOptimalHistogram(data, beta, strategy="exact")
            greedy = VOptimalHistogram(data, beta, strategy="greedy")
            assert exact.total_sse() <= greedy.total_sse() + 1e-6

    def test_exact_beats_equiwidth_on_sse(self):
        rng = np.random.default_rng(11)
        data = np.sort(rng.integers(0, 500, size=80)).astype(float)
        vopt = VOptimalHistogram(data, 6, strategy="exact")
        equiwidth = EquiWidthHistogram(data, 6)
        assert vopt.total_sse() <= equiwidth.total_sse() + 1e-9

    def test_auto_strategy_selection(self):
        small = VOptimalHistogram([1.0, 2.0, 3.0, 4.0], 2)
        assert small.effective_strategy == "exact"
        from repro.histogram.vopt import EXACT_DOMAIN_LIMIT

        large = VOptimalHistogram(
            np.arange(EXACT_DOMAIN_LIMIT + 1, dtype=float), 4
        )
        assert large.effective_strategy == "greedy"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(HistogramError):
            VOptimalHistogram(SAMPLE, 3, strategy="magic")

    def test_greedy_pads_flat_distributions(self):
        histogram = VOptimalHistogram([7.0] * 16, 4, strategy="greedy")
        assert histogram.bucket_count == 4
        assert histogram.total_sse() == pytest.approx(0.0)

    def test_requested_strategy_reported(self):
        histogram = VOptimalHistogram(SAMPLE, 3, strategy="greedy")
        assert histogram.strategy == "greedy"
        assert histogram.effective_strategy == "greedy"
