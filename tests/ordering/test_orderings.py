"""Tests for the numerical, lexicographical, sum-based and ideal orderings.

The paper's Section 3.4 worked example (Tables 1 and 2) is asserted exactly
in ``tests/experiments/test_ordering_example.py``; the tests here cover the
bijection contract, edge cases and larger domains for each ordering rule.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    IndexOutOfDomainError,
    OrderingError,
    UnknownLabelError,
)
from repro.ordering.ideal import IdealOrdering
from repro.ordering.lexicographical import LexicographicalOrdering
from repro.ordering.numerical import NumericalOrdering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking
from repro.ordering.sum_based import SumBasedOrdering
from repro.paths.enumeration import domain_size, enumerate_label_paths

LABELS = ["1", "2", "3"]
CARDINALITIES = {"1": 20, "2": 100, "3": 80}


def all_ordering_instances(max_length: int = 3):
    """One instance of every practical ordering over the example alphabet."""
    alph = AlphabeticalRanking(LABELS)
    card = CardinalityRanking(CARDINALITIES)
    return {
        "num-alph": NumericalOrdering(alph, max_length),
        "num-card": NumericalOrdering(card, max_length),
        "lex-alph": LexicographicalOrdering(alph, max_length),
        "lex-card": LexicographicalOrdering(card, max_length),
        "sum-based": SumBasedOrdering(card, max_length),
        "sum-alph": SumBasedOrdering(alph, max_length),
    }


class TestBijectionContract:
    @pytest.mark.parametrize("name", list(all_ordering_instances()))
    def test_full_round_trip_k3(self, name):
        ordering = all_ordering_instances(3)[name]
        assert ordering.size == domain_size(3, 3)
        seen_paths = set()
        for index in range(ordering.size):
            path = ordering.path(index)
            assert ordering.index(path) == index
            seen_paths.add(path)
        assert len(seen_paths) == ordering.size

    @pytest.mark.parametrize("name", list(all_ordering_instances()))
    def test_every_domain_path_gets_unique_index(self, name):
        ordering = all_ordering_instances(2)[name]
        indices = [
            ordering.index(path) for path in enumerate_label_paths(LABELS, 2)
        ]
        assert sorted(indices) == list(range(ordering.size))

    @pytest.mark.parametrize("name", list(all_ordering_instances()))
    def test_index_validation(self, name):
        ordering = all_ordering_instances(2)[name]
        with pytest.raises(IndexOutOfDomainError):
            ordering.path(-1)
        with pytest.raises(IndexOutOfDomainError):
            ordering.path(ordering.size)
        with pytest.raises(OrderingError):
            ordering.path("3")  # type: ignore[arg-type]

    @pytest.mark.parametrize("name", list(all_ordering_instances()))
    def test_path_validation(self, name):
        ordering = all_ordering_instances(2)[name]
        with pytest.raises(OrderingError):
            ordering.index("1/1/1")  # longer than k
        with pytest.raises(UnknownLabelError):
            ordering.index("9")

    def test_is_bijective_on_sample_helper(self):
        ordering = NumericalOrdering(AlphabeticalRanking(LABELS), 3)
        assert ordering.is_bijective_on_sample()

    def test_iter_paths_matches_path(self):
        ordering = LexicographicalOrdering(AlphabeticalRanking(LABELS), 2)
        assert list(ordering.iter_paths()) == [
            ordering.path(i) for i in range(ordering.size)
        ]

    def test_invalid_max_length(self):
        with pytest.raises(OrderingError):
            NumericalOrdering(AlphabeticalRanking(LABELS), 0)


class TestNumericalOrdering:
    def test_shorter_paths_come_first(self):
        ordering = NumericalOrdering(AlphabeticalRanking(LABELS), 3)
        assert ordering.path(0).length == 1
        assert ordering.path(2).length == 1
        assert ordering.path(3).length == 2
        assert ordering.path(12).length == 3

    def test_alphabetical_is_native_enumeration_order(self):
        ordering = NumericalOrdering(AlphabeticalRanking(LABELS), 2)
        expected = [str(path) for path in enumerate_label_paths(LABELS, 2)]
        actual = [str(ordering.path(i)) for i in range(ordering.size)]
        assert actual == expected

    def test_full_name(self):
        assert NumericalOrdering(AlphabeticalRanking(LABELS), 2).full_name == "num-alph"
        assert NumericalOrdering(CardinalityRanking(CARDINALITIES), 2).full_name == "num-card"

    def test_base_digit_interpretation(self):
        # Index within the length-2 block equals the base-|L| value of digits.
        ordering = NumericalOrdering(AlphabeticalRanking(LABELS), 2)
        assert ordering.index("2/3") == 3 + 1 * 3 + 2


class TestLexicographicalOrdering:
    def test_prefix_immediately_precedes_extensions(self):
        ordering = LexicographicalOrdering(AlphabeticalRanking(LABELS), 3)
        index_of_one = ordering.index("1")
        assert ordering.index("1/1") == index_of_one + 1
        assert ordering.index("1/1/1") == index_of_one + 2

    def test_last_path_is_all_max_label(self):
        ordering = LexicographicalOrdering(AlphabeticalRanking(LABELS), 3)
        assert str(ordering.path(ordering.size - 1)) == "3/3/3"

    def test_dictionary_order_between_siblings(self):
        ordering = LexicographicalOrdering(AlphabeticalRanking(LABELS), 2)
        assert ordering.index("1/3") < ordering.index("2")
        assert ordering.index("2/3") < ordering.index("3")

    def test_full_name(self):
        assert (
            LexicographicalOrdering(CardinalityRanking(CARDINALITIES), 2).full_name
            == "lex-card"
        )


class TestSumBasedOrdering:
    def test_summed_rank_values_match_paper_table1(self):
        ordering = SumBasedOrdering(CardinalityRanking(CARDINALITIES), 2)
        expected = {
            "1": 1, "2": 3, "3": 2,
            "1/1": 2, "1/2": 4, "1/3": 3,
            "2/1": 4, "2/2": 6, "2/3": 5,
            "3/1": 3, "3/2": 5, "3/3": 4,
        }
        for path, summed in expected.items():
            assert ordering.summed_rank(path) == summed, path

    def test_summed_rank_monotone_blocks(self):
        # Within one length block, the summed rank never decreases with index.
        ordering = SumBasedOrdering(CardinalityRanking(CARDINALITIES), 3)
        previous_by_length: dict[int, int] = {}
        for index in range(ordering.size):
            path = ordering.path(index)
            summed = ordering.summed_rank(path)
            if path.length in previous_by_length:
                assert summed >= previous_by_length[path.length]
            previous_by_length[path.length] = summed

    def test_full_name_is_sum_based(self):
        ordering = SumBasedOrdering(CardinalityRanking(CARDINALITIES), 2)
        assert ordering.full_name == "sum-based"

    def test_large_alphabet_round_trip_sampled(self):
        labels = [str(i) for i in range(1, 9)]
        cardinalities = {label: (index + 1) * 7 for index, label in enumerate(labels)}
        ordering = SumBasedOrdering(CardinalityRanking(cardinalities), 4)
        step = max(1, ordering.size // 500)
        for index in range(0, ordering.size, step):
            assert ordering.index(ordering.path(index)) == index


class TestIdealOrdering:
    def test_frequencies_monotone_in_index(self, small_catalog):
        ordering = IdealOrdering(small_catalog)
        values = [
            small_catalog.selectivity(ordering.path(i)) for i in range(ordering.size)
        ]
        assert values == sorted(values)

    def test_bijection(self, small_catalog):
        ordering = IdealOrdering(small_catalog)
        for index in range(0, ordering.size, 7):
            assert ordering.index(ordering.path(index)) == index

    def test_memory_entries_equals_domain(self, small_catalog):
        ordering = IdealOrdering(small_catalog)
        assert ordering.memory_entries() == small_catalog.domain_size

    def test_full_name(self, small_catalog):
        assert IdealOrdering(small_catalog).full_name == "ideal"

    def test_mismatched_ranking_rejected(self, small_catalog):
        foreign_ranking = AlphabeticalRanking(["q", "r"])
        with pytest.raises(OrderingError):
            IdealOrdering(small_catalog, ranking=foreign_ranking)

    def test_catalog_property(self, small_catalog):
        assert IdealOrdering(small_catalog).catalog is small_catalog
