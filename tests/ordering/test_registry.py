"""Tests for the ordering registry / factory."""

from __future__ import annotations

import pytest

from repro.exceptions import OrderingError, UnknownOrderingError
from repro.ordering.ideal import IdealOrdering
from repro.ordering.lexicographical import LexicographicalOrdering
from repro.ordering.numerical import NumericalOrdering
from repro.ordering.registry import (
    PAPER_ORDERINGS,
    available_orderings,
    make_ordering,
    make_paper_orderings,
)
from repro.ordering.sum_based import SumBasedOrdering


class TestMakeOrdering:
    def test_paper_names_resolve(self, example_cardinalities):
        labels = sorted(example_cardinalities)
        for name in PAPER_ORDERINGS:
            ordering = make_ordering(
                name, labels=labels, max_length=2, cardinalities=example_cardinalities
            )
            assert ordering.size == 12

    def test_types(self, example_cardinalities):
        labels = sorted(example_cardinalities)
        kwargs = dict(labels=labels, max_length=2, cardinalities=example_cardinalities)
        assert isinstance(make_ordering("num-alph", **kwargs), NumericalOrdering)
        assert isinstance(make_ordering("lex-card", **kwargs), LexicographicalOrdering)
        assert isinstance(make_ordering("sum-based", **kwargs), SumBasedOrdering)

    def test_name_normalisation(self, example_cardinalities):
        ordering = make_ordering(
            "  SUM-BASED ",
            labels=sorted(example_cardinalities),
            max_length=2,
            cardinalities=example_cardinalities,
        )
        assert isinstance(ordering, SumBasedOrdering)

    def test_unknown_name(self):
        with pytest.raises(UnknownOrderingError):
            make_ordering("random-shuffle", labels=["a"], max_length=1)

    def test_card_orderings_need_cardinalities(self):
        with pytest.raises(OrderingError):
            make_ordering("num-card", labels=["a", "b"], max_length=2)

    def test_missing_cardinality_for_label(self):
        with pytest.raises(OrderingError):
            make_ordering(
                "num-card", labels=["a", "b"], max_length=2, cardinalities={"a": 1}
            )

    def test_alph_orderings_do_not_need_cardinalities(self):
        ordering = make_ordering("lex-alph", labels=["a", "b"], max_length=2)
        assert ordering.size == 6

    def test_missing_domain_description(self):
        with pytest.raises(OrderingError):
            make_ordering("num-alph")

    def test_catalog_supplies_everything(self, small_catalog):
        ordering = make_ordering("sum-based", catalog=small_catalog)
        assert ordering.size == small_catalog.domain_size
        assert set(ordering.labels) == set(small_catalog.labels)

    def test_ideal_requires_catalog(self):
        with pytest.raises(OrderingError):
            make_ordering("ideal", labels=["a"], max_length=1)

    def test_ideal_from_catalog(self, small_catalog):
        assert isinstance(make_ordering("ideal", catalog=small_catalog), IdealOrdering)

    def test_available_orderings_contains_paper_names(self):
        names = available_orderings()
        for name in PAPER_ORDERINGS:
            assert name in names
        assert "ideal" in names


class TestMakePaperOrderings:
    def test_all_five_created_in_order(self, small_catalog):
        orderings = make_paper_orderings(small_catalog)
        assert list(orderings) == list(PAPER_ORDERINGS)

    def test_include_ideal(self, small_catalog):
        orderings = make_paper_orderings(small_catalog, include_ideal=True)
        assert list(orderings)[-1] == "ideal"

    def test_subset(self, small_catalog):
        orderings = make_paper_orderings(small_catalog, names=["num-alph", "sum-based"])
        assert list(orderings) == ["num-alph", "sum-based"]

    def test_all_share_domain(self, small_catalog):
        orderings = make_paper_orderings(small_catalog, include_ideal=True)
        sizes = {ordering.size for ordering in orderings.values()}
        assert sizes == {small_catalog.domain_size}
