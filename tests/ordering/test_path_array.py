"""Vectorised unranking: ``Ordering.path_array`` against the scalar forms.

The inverse of PR 3's ``index_array``: every closed-form ordering unranks a
batch (or the whole domain) with per-length vectorised arithmetic, and must
agree element-wise with the scalar ``path`` walk.  ``rank_domain_indices``
— ranking canonical domain indices without materialising paths — is covered
here too, since it shares the digit-block machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexOutOfDomainError, OrderingError
from repro.ordering.registry import make_ordering
from repro.paths.index import domain_indices_to_paths

LABELS = ["a", "b", "c", "d"]
CARDINALITIES = {"a": 40, "b": 3, "c": 11, "d": 7}
METHODS = ["num-alph", "num-card", "lex-alph", "lex-card", "sum-based"]


def build(method: str, max_length: int):
    return make_ordering(
        method,
        labels=LABELS,
        max_length=max_length,
        cardinalities=CARDINALITIES,
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("max_length", [1, 2, 3])
class TestPathArray:
    def test_full_domain_matches_scalar(self, method, max_length):
        ordering = build(method, max_length)
        unranked = ordering.path_array()
        assert len(unranked) == ordering.size
        for index in range(ordering.size):
            assert unranked[index] == ordering.path(index)

    def test_subset_scrambled_with_duplicates(self, method, max_length):
        ordering = build(method, max_length)
        rng = np.random.default_rng(7)
        indices = rng.integers(0, ordering.size, 41)
        indices[0] = indices[1]  # a duplicate must be fine
        unranked = ordering.path_array(indices)
        assert unranked == [ordering.path(int(index)) for index in indices]

    def test_inverse_of_index_array(self, method, max_length):
        ordering = build(method, max_length)
        unranked = ordering.path_array()
        assert ordering.index_array(unranked).tolist() == list(range(ordering.size))

    def test_empty_batch(self, method, max_length):
        ordering = build(method, max_length)
        assert ordering.path_array(np.empty(0, dtype=np.int64)) == []

    def test_out_of_range_raises(self, method, max_length):
        ordering = build(method, max_length)
        with pytest.raises(IndexOutOfDomainError):
            ordering.path_array([ordering.size])
        with pytest.raises(IndexOutOfDomainError):
            ordering.path_array([-1])

    def test_rank_domain_indices_matches_index(self, method, max_length):
        ordering = build(method, max_length)
        rng = np.random.default_rng(11)
        indices = rng.integers(0, ordering.size, 37)
        ranked = ordering.rank_domain_indices(indices)
        paths = domain_indices_to_paths(indices, sorted(LABELS), max_length)
        assert ranked.tolist() == [ordering.index(path) for path in paths]


class TestFallbacks:
    def test_ideal_ordering_uses_scalar_fallback(self, small_catalog):
        ordering = make_ordering("ideal", catalog=small_catalog)
        indices = [0, 5, 3, 5]
        assert ordering.path_array(indices) == [
            ordering.path(index) for index in indices
        ]
        ranked = ordering.rank_domain_indices(np.array([0, 1, 2]))
        paths = domain_indices_to_paths(
            [0, 1, 2], sorted(small_catalog.labels), small_catalog.max_length
        )
        assert ranked.tolist() == [ordering.index(path) for path in paths]

    def test_two_dimensional_input_rejected(self):
        ordering = build("num-alph", 2)
        with pytest.raises(OrderingError):
            ordering.path_array(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(OrderingError):
            ordering.rank_domain_indices(np.zeros((2, 2), dtype=np.int64))
