"""Property-based tests (hypothesis) for the ordering framework.

The single most important invariant of the whole paper is that every ordering
is a *bijection* between ``Lk`` and ``[0, |Lk|)``; these tests check it (and
the supporting combinatorial identities) over randomly drawn alphabets,
cardinalities, path lengths and indices.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering.combinatorics import (
    bounded_partitions,
    compositions_count,
    permutation_count,
    rank_permutation,
    unrank_permutation,
)
from repro.ordering.lexicographical import LexicographicalOrdering
from repro.ordering.numerical import NumericalOrdering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking
from repro.ordering.sum_based import SumBasedOrdering
from repro.paths.enumeration import domain_size
from repro.paths.label_path import LabelPath

# Alphabets of 2..6 labels with distinct-ish cardinalities.
alphabet_strategy = st.integers(min_value=2, max_value=6)
max_length_strategy = st.integers(min_value=1, max_value=4)


def _make_orderings(label_count: int, max_length: int, cardinalities: list[int]):
    labels = [str(i) for i in range(1, label_count + 1)]
    cardinality_map = {label: cardinalities[i] for i, label in enumerate(labels)}
    alph = AlphabeticalRanking(labels)
    card = CardinalityRanking(cardinality_map)
    return [
        NumericalOrdering(alph, max_length),
        NumericalOrdering(card, max_length),
        LexicographicalOrdering(alph, max_length),
        LexicographicalOrdering(card, max_length),
        SumBasedOrdering(card, max_length),
    ]


@settings(max_examples=40, deadline=None)
@given(
    label_count=alphabet_strategy,
    max_length=max_length_strategy,
    data=st.data(),
)
def test_unrank_then_rank_is_identity(label_count, max_length, data):
    cardinalities = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=label_count,
            max_size=label_count,
        )
    )
    size = domain_size(label_count, max_length)
    index = data.draw(st.integers(min_value=0, max_value=size - 1))
    for ordering in _make_orderings(label_count, max_length, cardinalities):
        path = ordering.path(index)
        assert isinstance(path, LabelPath)
        assert 1 <= path.length <= max_length
        assert ordering.index(path) == index


@settings(max_examples=40, deadline=None)
@given(
    label_count=alphabet_strategy,
    max_length=max_length_strategy,
    data=st.data(),
)
def test_rank_then_unrank_is_identity(label_count, max_length, data):
    cardinalities = data.draw(
        st.lists(
            st.integers(min_value=1, max_value=10_000),
            min_size=label_count,
            max_size=label_count,
        )
    )
    labels = [str(i) for i in range(1, label_count + 1)]
    length = data.draw(st.integers(min_value=1, max_value=max_length))
    path_labels = data.draw(
        st.lists(st.sampled_from(labels), min_size=length, max_size=length)
    )
    path = LabelPath(path_labels)
    for ordering in _make_orderings(label_count, max_length, cardinalities):
        index = ordering.index(path)
        assert 0 <= index < ordering.size
        assert ordering.path(index) == path


@settings(max_examples=100, deadline=None)
@given(
    parts=st.integers(min_value=1, max_value=5),
    bound=st.integers(min_value=1, max_value=6),
)
def test_compositions_sum_to_power(parts, bound):
    total = sum(
        compositions_count(s, parts, bound) for s in range(parts, parts * bound + 1)
    )
    assert total == bound**parts


@settings(max_examples=100, deadline=None)
@given(
    parts=st.integers(min_value=1, max_value=5),
    bound=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_partition_permutations_partition_the_sum_group(parts, bound, data):
    total = data.draw(st.integers(min_value=parts, max_value=parts * bound))
    partitions = bounded_partitions(total, parts, bound)
    assert sum(permutation_count(p) for p in partitions) == compositions_count(
        total, parts, bound
    )
    for partition in partitions:
        assert sum(partition) == total
        assert all(1 <= part <= bound for part in partition)


@settings(max_examples=100, deadline=None)
@given(
    combination=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=6),
    data=st.data(),
)
def test_permutation_rank_round_trip(combination, data):
    total = permutation_count(combination)
    index = data.draw(st.integers(min_value=0, max_value=total - 1))
    permutation = unrank_permutation(index, combination)
    assert permutation is not None
    assert rank_permutation(permutation) == index
