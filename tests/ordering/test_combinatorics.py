"""Tests for the combinatorial primitives of the sum-based ordering."""

from __future__ import annotations

import itertools
from math import comb

import pytest

from repro.ordering.combinatorics import (
    bounded_partitions,
    compositions_count,
    multiset_permutations_in_order,
    permutation_count,
    rank_permutation,
    unrank_permutation,
)


def brute_force_compositions(total: int, parts: int, bound: int) -> int:
    """Count compositions by enumeration (reference implementation)."""
    return sum(
        1
        for combo in itertools.product(range(1, bound + 1), repeat=parts)
        if sum(combo) == total
    )


class TestCompositionsCount:
    @pytest.mark.parametrize("bound", [1, 2, 3, 4])
    @pytest.mark.parametrize("parts", [1, 2, 3, 4])
    def test_matches_brute_force(self, parts, bound):
        for total in range(0, parts * bound + 2):
            assert compositions_count(total, parts, bound) == brute_force_compositions(
                total, parts, bound
            ), (total, parts, bound)

    def test_paper_example_values(self):
        # dist(4, 2, 3) counts (1,3), (2,2), (3,1).
        assert compositions_count(4, 2, 3) == 3
        assert compositions_count(2, 2, 3) == 1
        assert compositions_count(6, 2, 3) == 1

    def test_out_of_range_is_zero(self):
        assert compositions_count(1, 2, 3) == 0
        assert compositions_count(7, 2, 3) == 0
        assert compositions_count(5, 0, 3) == 0
        assert compositions_count(5, -1, 3) == 0
        assert compositions_count(5, 2, 0) == 0

    def test_zero_parts_zero_total(self):
        assert compositions_count(0, 0, 3) == 1

    def test_unbounded_equivalence(self):
        # With bound >= total the count is the stars-and-bars C(total-1, parts-1).
        assert compositions_count(10, 3, 10) == comb(9, 2)

    def test_total_over_all_sums_is_power(self):
        # Summing over every achievable sum must give |L|^m.
        parts, bound = 3, 4
        total = sum(
            compositions_count(s, parts, bound) for s in range(parts, parts * bound + 1)
        )
        assert total == bound**parts


class TestBoundedPartitions:
    def test_paper_order_for_sum4(self):
        assert bounded_partitions(4, 2, 3) == [[2, 2], [1, 3]]

    def test_paper_order_for_sum3(self):
        assert bounded_partitions(3, 2, 3) == [[1, 2]]

    def test_all_parts_within_bound_and_sum_correct(self):
        for total in range(3, 10):
            for partition in bounded_partitions(total, 3, 4):
                assert len(partition) == 3
                assert sum(partition) == total
                assert all(1 <= part <= 4 for part in partition)

    def test_counts_match_brute_force(self):
        for total in range(2, 13):
            partitions = bounded_partitions(total, 3, 4)
            brute = {
                tuple(sorted(combo))
                for combo in itertools.product(range(1, 5), repeat=3)
                if sum(combo) == total
            }
            assert {tuple(p) for p in partitions} == brute
            assert len(partitions) == len(brute)  # no duplicates

    def test_infeasible_cases_empty(self):
        assert bounded_partitions(10, 2, 3) == []
        assert bounded_partitions(1, 2, 3) == []
        assert bounded_partitions(3, 2, 0) == []

    def test_zero_parts(self):
        assert bounded_partitions(0, 0, 3) == [[]]
        assert bounded_partitions(1, 0, 3) == []

    def test_bound_one(self):
        assert bounded_partitions(3, 3, 1) == [[1, 1, 1]]
        assert bounded_partitions(2, 3, 1) == []

    def test_partition_permutations_cover_compositions(self):
        # Sum of nop over all partitions of (sum, m, b) equals dist(sum, m, b).
        for total in range(2, 9):
            count = sum(
                permutation_count(p) for p in bounded_partitions(total, 2, 4)
            )
            assert count == compositions_count(total, 2, 4)


class TestPermutationCount:
    def test_distinct_values(self):
        assert permutation_count([1, 2, 3]) == 6

    def test_with_duplicates(self):
        assert permutation_count([1, 1, 2]) == 3
        assert permutation_count([2, 2, 2]) == 1

    def test_empty_and_single(self):
        assert permutation_count([]) == 1
        assert permutation_count([5]) == 1


class TestPermutationRanking:
    @pytest.mark.parametrize(
        "combination",
        [[1, 2], [1, 1, 2], [1, 2, 3], [2, 2, 3, 3], [1, 1, 1, 2], [1, 2, 3, 4]],
    )
    def test_unrank_rank_round_trip(self, combination):
        total = permutation_count(combination)
        seen = []
        for index in range(total):
            permutation = unrank_permutation(index, combination)
            assert permutation is not None
            assert sorted(permutation) == sorted(combination)
            assert rank_permutation(permutation) == index
            seen.append(tuple(permutation))
        assert len(set(seen)) == total  # all permutations distinct

    def test_out_of_range_returns_none(self):
        assert unrank_permutation(-1, [1, 2]) is None
        assert unrank_permutation(2, [1, 2]) is None
        assert unrank_permutation(3, [1, 1, 2]) is None

    def test_first_permutation_is_sorted(self):
        assert unrank_permutation(0, [3, 1, 2]) == [1, 2, 3]

    def test_order_groups_by_first_element(self):
        # For C = {1, 2, 3}: permutations starting with 1 first, then 2, then 3.
        firsts = [unrank_permutation(i, [1, 2, 3])[0] for i in range(6)]
        assert firsts == [1, 1, 2, 2, 3, 3]

    def test_multiset_permutations_in_order_enumerates_all(self):
        perms = list(multiset_permutations_in_order([1, 1, 2]))
        assert perms == [[1, 1, 2], [1, 2, 1], [2, 1, 1]]
