"""Vectorised ``Ordering.index_array`` must agree with the scalar bijection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OrderingError, PathError, UnknownLabelError
from repro.ordering.base import Ordering
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import enumerate_label_paths
from repro.paths.label_path import LabelPath

ALL_METHODS = ("num-alph", "num-card", "lex-alph", "lex-card", "sum-based", "ideal")

#: The orderings that must NOT fall back to the scalar loop.
VECTORISED_METHODS = ("num-alph", "num-card", "lex-alph", "lex-card", "sum-based")


@pytest.fixture(scope="module", params=[(3, 4), (5, 3)], ids=["L3k4", "L5k3"])
def catalog(request):
    from repro.graph.generators import zipf_labeled_graph

    labels, max_length = request.param
    graph = zipf_labeled_graph(40, 160, labels, skew=1.0, seed=3)
    return SelectivityCatalog.from_graph(graph, max_length)


@pytest.mark.parametrize("method", ALL_METHODS)
class TestFullDomain:
    def test_matches_scalar_ranking_over_whole_domain(self, catalog, method):
        ordering = make_ordering(method, catalog=catalog)
        scalar = np.fromiter(
            (
                ordering.index(path)
                for path in enumerate_label_paths(
                    catalog.labels, catalog.max_length
                )
            ),
            dtype=np.int64,
            count=ordering.size,
        )
        vectorised = ordering.index_array()
        assert vectorised.dtype == np.int64
        assert np.array_equal(vectorised, scalar)
        # index_array is a permutation of [0, |Lk|): a true bijection.
        assert np.array_equal(np.sort(vectorised), np.arange(ordering.size))

    def test_explicit_paths_match_scalar(self, catalog, method):
        ordering = make_ordering(method, catalog=catalog)
        paths = [
            "1",
            "2/1",
            f"{len(catalog.labels)}/1",
            "1/1/1",
            LabelPath.parse("2/2/2"),
        ]
        vectorised = ordering.index_array(paths)
        scalar = [ordering.index(path) for path in paths]
        assert list(vectorised) == scalar

    def test_empty_batch(self, catalog, method):
        ordering = make_ordering(method, catalog=catalog)
        assert ordering.index_array([]).shape == (0,)


@pytest.mark.parametrize("method", VECTORISED_METHODS)
def test_closed_form_orderings_do_not_fall_back(catalog, method):
    ordering = make_ordering(method, catalog=catalog)
    assert type(ordering)._rank_block is not Ordering._rank_block
    assert ordering._canonical_rank_blocks(None) is not None


def test_ideal_ordering_uses_fallback(catalog):
    ordering = make_ordering("ideal", catalog=catalog)
    assert ordering._canonical_rank_blocks(None) is None


class TestValidation:
    def test_unknown_label_raises(self, catalog):
        ordering = make_ordering("sum-based", catalog=catalog)
        with pytest.raises(UnknownLabelError):
            ordering.index_array(["1", "99"])

    def test_over_length_path_raises(self, catalog):
        ordering = make_ordering("num-alph", catalog=catalog)
        too_long = "/".join(["1"] * (catalog.max_length + 1))
        with pytest.raises((OrderingError, PathError)):
            ordering.index_array([too_long])


def test_engine_positions_match_vectorised_table(tmp_path):
    """The engine's cached position table is exactly ``index_array()``."""
    from repro.engine import ArtifactCache, EngineConfig, EstimationSession
    from repro.graph.generators import zipf_labeled_graph

    graph = zipf_labeled_graph(40, 160, 4, skew=1.0, seed=3)
    cache = ArtifactCache(tmp_path)
    session = EstimationSession.build(
        graph, EngineConfig(max_length=3, bucket_count=8), cache_dir=cache
    )
    stored = cache.load_positions(session.stats.histogram_key)
    assert np.array_equal(stored, session.ordering.index_array())
