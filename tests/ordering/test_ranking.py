"""Tests for the alphabetical and cardinality ranking rules."""

from __future__ import annotations

import pytest

from repro.exceptions import OrderingError, UnknownLabelError
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking, RankingRule


class TestRankingRuleBasics:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(OrderingError):
            RankingRule(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(OrderingError):
            RankingRule([])

    def test_rank_label_round_trip(self):
        rule = RankingRule(["c", "a", "b"])
        for label in rule.labels:
            assert rule.label(rule.rank(label)) == label

    def test_rank_out_of_range(self):
        rule = RankingRule(["a", "b"])
        with pytest.raises(OrderingError):
            rule.label(0)
        with pytest.raises(OrderingError):
            rule.label(3)

    def test_unknown_label(self):
        rule = RankingRule(["a"])
        with pytest.raises(UnknownLabelError):
            rule.rank("z")

    def test_ranks_of_sequence(self):
        rule = RankingRule(["a", "b", "c"])
        assert rule.ranks(["c", "a"]) == [3, 1]

    def test_len(self):
        assert len(RankingRule(["a", "b"])) == 2


class TestAlphabeticalRanking:
    def test_sorted_order(self):
        ranking = AlphabeticalRanking(["banana", "apple", "cherry"])
        assert ranking.labels == ("apple", "banana", "cherry")
        assert ranking.rank("apple") == 1
        assert ranking.rank("cherry") == 3

    def test_name(self):
        assert AlphabeticalRanking(["a"]).name == "alph"


class TestCardinalityRanking:
    def test_lower_cardinality_gets_lower_rank(self, example_cardinalities):
        ranking = CardinalityRanking(example_cardinalities)
        # cardinalities: 1 -> 20, 3 -> 80, 2 -> 100 (the paper's example).
        assert ranking.labels == ("1", "3", "2")
        assert ranking.rank("1") == 1
        assert ranking.rank("3") == 2
        assert ranking.rank("2") == 3

    def test_ties_broken_alphabetically(self):
        ranking = CardinalityRanking({"b": 5, "a": 5, "c": 1})
        assert ranking.labels == ("c", "a", "b")

    def test_cardinality_lookup(self, example_cardinalities):
        ranking = CardinalityRanking(example_cardinalities)
        assert ranking.cardinality("2") == 100
        with pytest.raises(UnknownLabelError):
            ranking.cardinality("z")
        assert ranking.cardinalities == example_cardinalities

    def test_empty_rejected(self):
        with pytest.raises(OrderingError):
            CardinalityRanking({})

    def test_from_graph(self, triangle_graph):
        ranking = CardinalityRanking.from_graph(triangle_graph)
        assert ranking.labels == ("z", "y", "x")  # counts 1, 2, 3

    def test_from_catalog(self, triangle_graph):
        from repro.paths.catalog import SelectivityCatalog

        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        ranking = CardinalityRanking.from_catalog(catalog)
        assert ranking.labels == ("z", "y", "x")

    def test_name(self):
        assert CardinalityRanking({"a": 1}).name == "card"
