"""Shared fixtures for the test-suite.

The fixtures provide a ladder of graphs and catalogs:

* ``triangle_graph`` — a 4-vertex, hand-built graph whose path selectivities
  are easy to verify by hand;
* ``example_cardinalities`` — the paper's Section 3.4 worked-example numbers;
* ``small_graph`` / ``small_catalog`` — a deterministic 40-vertex random
  graph with 4 labels and its k=3 catalog, large enough to exercise the
  statistics but cheap enough for every test;
* ``moreno_tiny`` / ``moreno_tiny_catalog`` — a heavily scaled-down
  Moreno Health stand-in used by the experiment tests.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import moreno_like
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import zipf_labeled_graph
from repro.paths.catalog import SelectivityCatalog


@pytest.fixture()
def triangle_graph() -> LabeledDiGraph:
    """A tiny hand-checkable graph.

    Edges::

        a -x-> b, a -x-> c, b -y-> c, c -y-> d, b -x-> d, d -z-> a

    Useful truths: f(x) = 3, f(y) = 2, f(z) = 1, f(x/y) = |{(a,c),(a,d),(b,?)}|
    computed in the tests themselves.
    """
    graph = LabeledDiGraph(name="triangle")
    graph.add_edges_from(
        [
            ("a", "x", "b"),
            ("a", "x", "c"),
            ("b", "y", "c"),
            ("c", "y", "d"),
            ("b", "x", "d"),
            ("d", "z", "a"),
        ]
    )
    return graph


@pytest.fixture()
def example_cardinalities() -> dict[str, int]:
    """The paper's worked-example label cardinalities (Section 3.4)."""
    return {"1": 20, "2": 100, "3": 80}


@pytest.fixture(scope="session")
def small_graph() -> LabeledDiGraph:
    """A deterministic 40-vertex, 4-label random graph (session-scoped)."""
    return zipf_labeled_graph(40, 160, 4, skew=1.0, seed=3, name="small")


@pytest.fixture(scope="session")
def small_catalog(small_graph: LabeledDiGraph) -> SelectivityCatalog:
    """The k=3 selectivity catalog of ``small_graph`` (session-scoped)."""
    return SelectivityCatalog.from_graph(small_graph, 3)


@pytest.fixture(scope="session")
def moreno_tiny() -> LabeledDiGraph:
    """A heavily scaled-down Moreno Health stand-in (session-scoped)."""
    return moreno_like(scale=0.02, seed=7)


@pytest.fixture(scope="session")
def moreno_tiny_catalog(moreno_tiny: LabeledDiGraph) -> SelectivityCatalog:
    """The k=3 catalog of the tiny Moreno stand-in (session-scoped)."""
    return SelectivityCatalog.from_graph(moreno_tiny, 3)
