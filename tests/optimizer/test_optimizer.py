"""Tests for the path-query planner substrate (plans, models, planner, executor)."""

from __future__ import annotations

import pytest

from repro.estimation.estimator import PathSelectivityEstimator
from repro.exceptions import PlanningError
from repro.optimizer.cardinality import HistogramCardinalityModel, TrueCardinalityModel
from repro.optimizer.executor import PlanExecutor
from repro.optimizer.plan import JoinNode, ScanNode
from repro.optimizer.planner import PathQueryPlanner
from repro.paths.catalog import SelectivityCatalog
from repro.paths.evaluation import path_selectivity
from repro.paths.label_path import LabelPath


class TestPlanNodes:
    def test_scan_node(self):
        scan = ScanNode(LabelPath.parse("a/b"), 12.0)
        assert scan.path() == LabelPath.parse("a/b")
        assert list(scan.leaves()) == [scan]
        assert scan.depth() == 1
        assert "Scan[a/b]" in scan.describe()

    def test_join_node(self):
        left = ScanNode(LabelPath.parse("a"), 5.0)
        right = ScanNode(LabelPath.parse("b/c"), 7.0)
        join = JoinNode(left, right, 3.0)
        assert join.path() == LabelPath.parse("a/b/c")
        assert [leaf.label_path for leaf in join.leaves()] == [
            LabelPath.parse("a"),
            LabelPath.parse("b/c"),
        ]
        assert join.depth() == 2
        assert "Join" in join.describe()


class TestCardinalityModels:
    def test_true_model_returns_catalog_values(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        model = TrueCardinalityModel(catalog, triangle_graph.vertex_count)
        assert model.scan_cardinality("x") == 3.0
        assert model.max_scan_length() == 2
        assert model.join_cardinality(4.0, 8.0) == pytest.approx(8.0)

    def test_histogram_model_limits_scan_length(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="sum-based", bucket_count=8
        )
        model = HistogramCardinalityModel(estimator, small_catalog.max_length, 40)
        assert model.max_scan_length() == small_catalog.max_length
        too_long = "/".join([small_catalog.labels[0]] * (small_catalog.max_length + 1))
        with pytest.raises(PlanningError):
            model.scan_cardinality(too_long)

    def test_model_validation(self, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=4
        )
        with pytest.raises(PlanningError):
            HistogramCardinalityModel(estimator, 0, 10)
        with pytest.raises(PlanningError):
            HistogramCardinalityModel(estimator, 2, 0)
        with pytest.raises(PlanningError):
            TrueCardinalityModel(small_catalog, 0)


class TestPlanner:
    def test_short_query_is_single_scan(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        planner = PathQueryPlanner(TrueCardinalityModel(catalog, 4))
        planned = planner.plan("x/y")
        assert isinstance(planned.plan, ScanNode)
        assert planned.estimated_cost == pytest.approx(catalog.selectivity("x/y"))

    def test_long_query_is_join_of_scans(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        planner = PathQueryPlanner(TrueCardinalityModel(catalog, 4))
        planned = planner.plan("x/y/y/x/z")
        leaves = list(planned.plan.leaves())
        assert all(leaf.label_path.length <= 2 for leaf in leaves)
        assert planned.plan.path() == LabelPath.parse("x/y/y/x/z")

    def test_plan_cost_prefers_cheaper_split(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        planner = PathQueryPlanner(TrueCardinalityModel(catalog, 4))
        planned = planner.plan("x/y/z")
        # The chosen plan's cost is never worse than either naive split.
        naive_costs = []
        for split in (1, 2):
            left, right = LabelPath.parse("x/y/z").split_at(split)
            left_cardinality = catalog.selectivity(left)
            right_cardinality = catalog.selectivity(right)
            joined = left_cardinality * right_cardinality / 4
            naive_costs.append(left_cardinality + right_cardinality + joined)
        assert planned.estimated_cost <= min(naive_costs) + 1e-9

    def test_describe_mentions_query(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        planner = PathQueryPlanner(TrueCardinalityModel(catalog, 4))
        text = planner.plan("x/y/z").describe()
        assert "x/y/z" in text


class TestExecutor:
    def test_plan_result_matches_direct_evaluation(self, triangle_graph):
        catalog = SelectivityCatalog.from_graph(triangle_graph, 2)
        planner = PathQueryPlanner(TrueCardinalityModel(catalog, 4))
        executor = PlanExecutor(triangle_graph)
        for query in ("x", "x/y", "x/y/y", "z/x/y", "x/y/y/x"):
            planned = planner.plan(query)
            result = executor.execute(planned.plan)
            from repro.paths.evaluation import evaluate_path

            assert result.pairs == evaluate_path(triangle_graph, query), query
            assert result.cardinality == path_selectivity(triangle_graph, query)
            assert result.total_intermediate_work >= result.cardinality

    def test_histogram_planner_end_to_end(self, small_graph, small_catalog):
        estimator = PathSelectivityEstimator.build(
            small_catalog, ordering="sum-based", bucket_count=16
        )
        model = HistogramCardinalityModel(
            estimator, small_catalog.max_length, small_graph.vertex_count
        )
        planner = PathQueryPlanner(model)
        executor = PlanExecutor(small_graph)
        labels = list(small_catalog.labels)
        query = "/".join([labels[0], labels[1], labels[0], labels[1], labels[2]])
        planned = planner.plan(query)
        result = executor.execute(planned.plan)
        from repro.paths.evaluation import evaluate_path

        assert result.pairs == evaluate_path(small_graph, query)

    def test_better_estimates_never_pick_worse_plans(self, small_graph, small_catalog):
        """Plan chosen with exact cardinalities does at most the work of the
        plan chosen with a coarse (1-bucket) histogram — the motivation for
        accurate selectivity estimation."""
        coarse = PathSelectivityEstimator.build(
            small_catalog, ordering="num-alph", bucket_count=1
        )
        labels = list(small_catalog.labels)
        query = "/".join([labels[0], labels[1], labels[2], labels[0], labels[1]])
        executor = PlanExecutor(small_graph)

        true_planner = PathQueryPlanner(
            TrueCardinalityModel(small_catalog, small_graph.vertex_count)
        )
        coarse_planner = PathQueryPlanner(
            HistogramCardinalityModel(
                coarse, small_catalog.max_length, small_graph.vertex_count
            )
        )
        true_work = executor.execute(true_planner.plan(query).plan).total_intermediate_work
        coarse_work = executor.execute(coarse_planner.plan(query).plan).total_intermediate_work
        assert true_work <= coarse_work
