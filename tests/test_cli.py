"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_datasets_lists_table3(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "moreno-health" in output
        assert "209068" in output  # DBpedia edge count from the paper

    def test_generate_catalog_estimate_round_trip(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.tsv"
        catalog_path = tmp_path / "catalog.json"
        assert main(["generate", "moreno-health", "--scale", "0.02", "-o", str(graph_path)]) == 0
        assert graph_path.exists()
        assert main(["catalog", str(graph_path), "-k", "2", "-o", str(catalog_path)]) == 0
        assert catalog_path.exists()
        assert (
            main(
                [
                    "estimate",
                    str(catalog_path),
                    "1/2",
                    "--ordering",
                    "sum-based",
                    "--buckets",
                    "8",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "estimate" in output and "true" in output

    def test_experiment_ordering_example(self, capsys):
        assert main(["experiment", "ordering-example"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output
        assert "sum-based" in output

    def test_experiment_table3_json(self, capsys):
        assert main(["experiment", "table3", "--scale", "0.02", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4

    def test_experiment_ablation_vopt(self, capsys):
        assert main(["experiment", "ablation-vopt"]) == 0
        assert "sse_ratio" in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.02", "-k", "2"]) == 0
        assert "figure 1" in capsys.readouterr().out

    def test_experiment_table4_small(self, capsys):
        assert main(["experiment", "table4", "--scale", "0.02", "-k", "2"]) == 0
        output = capsys.readouterr().out
        assert "sum-based" in output and "slowdown" in output
