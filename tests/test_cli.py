"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_datasets_lists_table3(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "moreno-health" in output
        assert "209068" in output  # DBpedia edge count from the paper

    def test_generate_catalog_estimate_round_trip(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.tsv"
        catalog_path = tmp_path / "catalog.json"
        assert main(["generate", "moreno-health", "--scale", "0.02", "-o", str(graph_path)]) == 0
        assert graph_path.exists()
        assert main(["catalog", str(graph_path), "-k", "2", "-o", str(catalog_path)]) == 0
        assert catalog_path.exists()
        assert (
            main(
                [
                    "estimate",
                    str(catalog_path),
                    "1/2",
                    "--ordering",
                    "sum-based",
                    "--buckets",
                    "8",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "estimate" in output and "true" in output

    def test_experiment_ordering_example(self, capsys):
        assert main(["experiment", "ordering-example"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output and "Table 2" in output
        assert "sum-based" in output

    def test_experiment_table3_json(self, capsys):
        assert main(["experiment", "table3", "--scale", "0.02", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4

    def test_experiment_ablation_vopt(self, capsys):
        assert main(["experiment", "ablation-vopt"]) == 0
        assert "sse_ratio" in capsys.readouterr().out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure1", "--scale", "0.02", "-k", "2"]) == 0
        assert "figure 1" in capsys.readouterr().out

    def test_experiment_table4_small(self, capsys):
        assert main(["experiment", "table4", "--scale", "0.02", "-k", "2"]) == 0
        output = capsys.readouterr().out
        assert "sum-based" in output and "slowdown" in output


class TestEngineCacheCommands:
    def _populate_cache(self, tmp_path):
        from repro.engine import ArtifactCache, EngineConfig, EstimationSession
        from repro.graph.generators import zipf_labeled_graph

        cache_dir = tmp_path / "cache"
        graph = zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7)
        EstimationSession.build(
            graph,
            EngineConfig(max_length=2, bucket_count=8),
            cache_dir=ArtifactCache(cache_dir),
        )
        return cache_dir

    def test_cache_list(self, tmp_path, capsys):
        cache_dir = self._populate_cache(tmp_path)
        assert main(["engine", "cache", "list", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "catalog-" in output and "total" in output

    def test_cache_list_json(self, tmp_path, capsys):
        cache_dir = self._populate_cache(tmp_path)
        assert (
            main(["engine", "cache", "list", "--cache-dir", str(cache_dir), "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["total_bytes"] > 0
        assert len(document["files"]) >= 3

    def test_cache_prune_requires_max_bytes(self, tmp_path):
        cache_dir = self._populate_cache(tmp_path)
        assert main(["engine", "cache", "prune", "--cache-dir", str(cache_dir)]) == 2

    def test_cache_prune_to_zero(self, tmp_path, capsys):
        cache_dir = self._populate_cache(tmp_path)
        assert (
            main(
                [
                    "engine",
                    "cache",
                    "prune",
                    "--cache-dir",
                    str(cache_dir),
                    "--max-bytes",
                    "0",
                    "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["bytes_after"] == 0
        assert len(document["removed"]) >= 3

    def test_cache_clear(self, tmp_path, capsys):
        cache_dir = self._populate_cache(tmp_path)
        assert main(["engine", "cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed" in capsys.readouterr().out


class TestEngineUpdateCommand:
    def _write_inputs(self, tmp_path):
        from repro.graph.delta import GraphDelta, write_delta
        from repro.graph.generators import ring_labeled_graph
        from repro.graph.io import write_edge_list

        graph = ring_labeled_graph(6, 15, 60, seed=3, name="cli-ring")
        graph_path = tmp_path / "graph.tsv"
        write_edge_list(graph, graph_path)
        edges = list(graph.edges_with_label("3"))
        delta = GraphDelta(
            removals=[(str(e.source), e.label, str(e.target)) for e in edges[:5]]
        )
        delta_path = tmp_path / "churn.delta"
        write_delta(delta, delta_path)
        return graph_path, delta_path

    def test_update_patches_cache_and_reports(self, tmp_path, capsys):
        graph_path, delta_path = self._write_inputs(tmp_path)
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "engine", "build", str(graph_path),
                    "-k", "2", "--cache-dir", str(cache_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "engine", "update", str(graph_path),
                    "--delta", str(delta_path),
                    "-k", "2", "--cache-dir", str(cache_dir), "--json",
                ]
            )
            == 0
        )
        row = json.loads(capsys.readouterr().out)
        assert row["updated_from_delta"] is True
        assert row["delta_removals"] == 5
        assert 0 < row["delta_affected_subtrees"] <= row["delta_subtrees_total"]
        assert (cache_dir / f"catalog-{row['catalog_key']}.npz").exists()

    def test_update_writes_post_delta_graph(self, tmp_path, capsys):
        from repro.graph.io import read_edge_list

        graph_path, delta_path = self._write_inputs(tmp_path)
        output_path = tmp_path / "updated.tsv"
        assert (
            main(
                [
                    "engine", "update", str(graph_path),
                    "--delta", str(delta_path),
                    "-k", "2", "-o", str(output_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "delta applied" in output
        updated = read_edge_list(output_path)
        original = read_edge_list(graph_path)
        assert updated.edge_count == original.edge_count - 5

    def test_update_missing_delta_file_is_clean_error(self, tmp_path, capsys):
        graph_path, _ = self._write_inputs(tmp_path)
        assert (
            main(
                [
                    "engine", "update", str(graph_path),
                    "--delta", str(tmp_path / "nope.delta"), "-k", "2",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err


class TestServeClientParsing:
    def test_serve_requires_a_graph(self, capsys):
        assert main(["serve"]) == 2
        assert "--graph" in capsys.readouterr().err

    def test_serve_rejects_malformed_graph_spec(self, capsys):
        assert main(["serve", "--graph", "no-equals-sign"]) == 2
        assert "NAME=EDGE_LIST" in capsys.readouterr().err

    def test_client_estimate_requires_graph(self, capsys):
        assert main(["client", "estimate", "1/2"]) == 2
        assert "--graph" in capsys.readouterr().err

    def test_client_estimate_requires_paths(self, capsys):
        assert (
            main(["client", "estimate", "--graph", "g", "--url", "http://127.0.0.1:1"])
            == 2
        )
        assert "no paths" in capsys.readouterr().err

    def test_client_unreachable_server_is_a_clean_error(self, capsys):
        assert main(["client", "healthz", "--url", "http://127.0.0.1:9"]) == 1
        assert "error" in capsys.readouterr().err


class TestSharedEngineFlagBlock:
    """``add_engine_options`` installs one flag vocabulary everywhere."""

    def test_engine_surfaces_share_the_estimation_block(self):
        parser = build_parser()
        for argv in (
            ["engine", "build", "g.tsv"],
            ["serve", "--graph", "g=g.tsv"],
        ):
            args = parser.parse_args(argv)
            assert args.max_length == 3
            assert args.ordering == "sum-based"
            assert args.buckets == 64
            assert args.histogram == "v-optimal"
            assert args.storage == "auto"
            assert args.build_workers is None

    def test_catalog_carries_construction_flags_only(self):
        args = build_parser().parse_args(
            [
                "catalog", "g.tsv", "-o", "c.npz",
                "-k", "4", "--storage", "sparse", "--workers", "2",
            ]
        )
        assert args.max_length == 4
        assert args.storage == "sparse"
        assert args.build_workers == 2
        assert not hasattr(args, "ordering")
        assert not hasattr(args, "buckets")

    def test_serve_separates_process_and_build_workers(self):
        args = build_parser().parse_args(
            [
                "serve", "--graph", "g=g.tsv",
                "--workers", "4", "--build-workers", "2",
            ]
        )
        assert args.workers == 4
        assert args.build_workers == 2

    def test_serve_rejects_zero_workers(self, capsys):
        assert main(["serve", "--graph", "g=missing.tsv", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_from_args_mirrors_the_block(self):
        from repro.engine import EngineConfig

        args = build_parser().parse_args(
            [
                "engine", "build", "g.tsv",
                "-k", "5", "--ordering", "sum-based",
                "--histogram", "equi-width", "--buckets", "16",
                "--storage", "sparse",
            ]
        )
        config = EngineConfig.from_args(args)
        assert config.max_length == 5
        assert config.histogram_kind == "equi-width"
        assert config.bucket_count == 16
        assert config.storage == "sparse"

    def test_from_args_overrides_win(self):
        from repro.engine import EngineConfig

        args = build_parser().parse_args(["engine", "build", "g.tsv", "-k", "5"])
        config = EngineConfig.from_args(args, max_length=2)
        assert config.max_length == 2

    def test_from_args_falls_back_to_defaults_off_surface(self):
        from repro.engine import EngineConfig

        args = build_parser().parse_args(
            ["catalog", "g.tsv", "-o", "c.npz", "-k", "4"]
        )
        config = EngineConfig.from_args(args)
        assert config.max_length == 4
        assert config.bucket_count == EngineConfig.bucket_count
        assert config.ordering == EngineConfig.ordering


class TestServeEndToEnd:
    def test_serve_and_client_round_trip(self, tmp_path, capsys):
        import threading

        from repro.engine import EngineConfig
        from repro.graph.generators import zipf_labeled_graph
        from repro.serving import SessionRegistry, make_server

        registry = SessionRegistry(
            default_config=EngineConfig(max_length=2, bucket_count=8)
        )
        registry.register(
            "g", graph=zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7)
        )
        server = make_server(registry, port=0, window_seconds=0.005)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            assert main(["client", "healthz", "--url", url]) == 0
            assert main(["client", "warm", "--graph", "g", "--url", url]) == 0
            assert (
                main(["client", "estimate", "1/2", "2", "--graph", "g", "--url", url])
                == 0
            )
            output = capsys.readouterr().out
            assert "1/2" in output
            assert main(["client", "stats", "--url", url]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["scheduler"]["requests_total"] >= 1
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=10)


class TestRemoteCacheCommands:
    @pytest.fixture()
    def artifact_server(self, tmp_path):
        import threading

        from repro.obs.metrics import MetricsRegistry
        from repro.serving.artifacts import make_artifact_server

        server = make_artifact_server(
            tmp_path / "remote-store", port=0, metrics=MetricsRegistry()
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def _build_remote(self, tmp_path, url, cache_name="cacheA"):
        from repro.engine import ArtifactCache, EngineConfig, EstimationSession
        from repro.engine.remote import RemoteArtifactStore
        from repro.graph.generators import zipf_labeled_graph

        cache = ArtifactCache(
            tmp_path / cache_name, remote=RemoteArtifactStore(url)
        )
        EstimationSession.build(
            zipf_labeled_graph(30, 100, 3, skew=1.0, seed=7),
            EngineConfig(max_length=2, bucket_count=8),
            cache_dir=cache,
        )
        cache.remote.flush(timeout=30)
        return tmp_path / cache_name

    def test_dead_remote_is_a_clean_error(self, tmp_path, capsys):
        assert (
            main(
                [
                    "engine",
                    "cache",
                    "list",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--remote",
                    "http://127.0.0.1:9",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_cache_list_remote_presence_audit(self, tmp_path, capsys, artifact_server):
        cache_dir = self._build_remote(tmp_path, artifact_server)
        assert (
            main(
                [
                    "engine",
                    "cache",
                    "list",
                    "--cache-dir",
                    str(cache_dir),
                    "--remote",
                    artifact_server,
                    "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["remote_url"].startswith("http://")
        presences = {row["presence"] for row in document["files"]}
        # Primaries were pushed; mmap sidecars (if any) stay local-only.
        assert "both" in presences
        assert presences <= {"both", "local", "remote"}

    def test_cache_list_remote_only_artifact_is_reported(
        self, tmp_path, capsys, artifact_server
    ):
        self._build_remote(tmp_path, artifact_server)
        empty = tmp_path / "empty-cache"
        empty.mkdir()
        assert (
            main(
                [
                    "engine",
                    "cache",
                    "list",
                    "--cache-dir",
                    str(empty),
                    "--remote",
                    artifact_server,
                    "--json",
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["files"]
        assert {row["presence"] for row in document["files"]} == {"remote"}

    def test_build_warm_starts_from_remote(self, tmp_path, capsys, artifact_server):
        self._build_remote(tmp_path, artifact_server)
        graph_path = tmp_path / "graph.tsv"
        assert (
            main(
                [
                    "generate",
                    "moreno-health",
                    "--scale",
                    "0.02",
                    "-o",
                    str(graph_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "engine",
                    "build",
                    str(graph_path),
                    "-k",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "fresh"),
                    "--remote-cache",
                    artifact_server,
                    "--json",
                ]
            )
            == 0
        )
        first = json.loads(capsys.readouterr().out)
        assert first["catalog_from_cache"] is False  # different graph: cold
        assert (
            main(
                [
                    "engine",
                    "build",
                    str(graph_path),
                    "-k",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "fresh2"),
                    "--remote-cache",
                    artifact_server,
                    "--json",
                ]
            )
            == 0
        )
        second = json.loads(capsys.readouterr().out)
        assert second["catalog_from_cache"] is True  # warm via the remote tier

    def test_remote_cache_without_cache_dir_is_an_error(self, tmp_path, capsys):
        graph_path = tmp_path / "graph.tsv"
        assert (
            main(
                [
                    "generate",
                    "moreno-health",
                    "--scale",
                    "0.02",
                    "-o",
                    str(graph_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "engine",
                    "build",
                    str(graph_path),
                    "-k",
                    "2",
                    "--remote-cache",
                    "http://127.0.0.1:9",
                ]
            )
            == 1
        )
        assert "--cache-dir" in capsys.readouterr().err
