"""Tests for the dataset stand-in registry."""

from __future__ import annotations

import pytest

from repro.datasets.registry import (
    PAPER_DATASETS,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.exceptions import DatasetError
from repro.graph.statistics import gini_coefficient


class TestSpecs:
    def test_paper_table3_values(self):
        spec = PAPER_DATASETS["moreno-health"]
        assert (spec.label_count, spec.vertex_count, spec.edge_count) == (6, 2539, 12969)
        spec = PAPER_DATASETS["dbpedia"]
        assert (spec.label_count, spec.vertex_count, spec.edge_count) == (8, 37374, 209068)
        spec = PAPER_DATASETS["snap-er"]
        assert (spec.label_count, spec.vertex_count, spec.edge_count) == (6, 12333, 147996)
        spec = PAPER_DATASETS["snap-ff"]
        assert (spec.label_count, spec.vertex_count, spec.edge_count) == (8, 50000, 132673)

    def test_real_world_flags(self):
        assert PAPER_DATASETS["moreno-health"].real_world
        assert PAPER_DATASETS["dbpedia"].real_world
        assert not PAPER_DATASETS["snap-er"].real_world
        assert not PAPER_DATASETS["snap-ff"].real_world

    def test_available_and_lookup(self):
        assert set(available_datasets()) == set(PAPER_DATASETS)
        assert dataset_spec("MORENO-HEALTH").name == "moreno-health"
        with pytest.raises(DatasetError):
            dataset_spec("freebase")

    def test_table_row_shape(self):
        row = dataset_spec("snap-er").as_table_row()
        assert row["Real world data"] == "no"
        assert row["#Vertices"] == 12333


class TestLoading:
    @pytest.mark.parametrize("name", list(PAPER_DATASETS))
    def test_label_count_matches_spec(self, name):
        graph = load_dataset(name, scale=0.02)
        assert graph.label_count == PAPER_DATASETS[name].label_count
        assert graph.name == name
        assert graph.edge_count > 0

    @pytest.mark.parametrize("name", list(PAPER_DATASETS))
    def test_deterministic(self, name):
        assert load_dataset(name, scale=0.02) == load_dataset(name, scale=0.02)

    def test_scale_shrinks_sizes(self):
        small = load_dataset("moreno-health", scale=0.02)
        larger = load_dataset("moreno-health", scale=0.05)
        assert small.edge_count < larger.edge_count
        assert small.vertex_count < larger.vertex_count

    def test_seed_override_changes_graph(self):
        assert load_dataset("snap-er", scale=0.02, seed=1) != load_dataset(
            "snap-er", scale=0.02, seed=2
        )

    def test_unknown_or_invalid(self):
        with pytest.raises(DatasetError):
            load_dataset("unknown")
        with pytest.raises(DatasetError):
            load_dataset("snap-er", scale=0.0)

    def test_real_stand_ins_have_skewed_labels(self):
        real = load_dataset("moreno-health", scale=0.05)
        synthetic = load_dataset("snap-er", scale=0.05)
        real_gini = gini_coefficient(list(real.label_edge_counts().values()))
        synthetic_gini = gini_coefficient(list(synthetic.label_edge_counts().values()))
        assert real_gini > synthetic_gini
