"""Tests for the ablation studies and the L2 base-set extension."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_histograms import run_histogram_ablation
from repro.experiments.ablation_vopt import run_vopt_ablation, synthetic_distribution
from repro.experiments.extension_base_l2 import (
    L2SumBasedOrdering,
    run_extension_base_l2,
)
from repro.histogram.builder import HISTOGRAM_KINDS


class TestSyntheticDistributions:
    @pytest.mark.parametrize("kind", ["zipf", "sorted-zipf", "steps", "uniform"])
    def test_shapes(self, kind):
        values = synthetic_distribution(kind, 64, seed=1)
        assert values.shape == (64,)
        assert (values >= 0).all()

    def test_sorted_zipf_is_sorted(self):
        values = synthetic_distribution("sorted-zipf", 64, seed=1)
        assert list(values) == sorted(values)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            synthetic_distribution("gamma", 10)


class TestVOptAblation:
    def test_greedy_close_to_exact(self):
        result = run_vopt_ablation(domain_size=96, bucket_counts=(4, 12), seed=2)
        assert result.records
        # Exact is optimal, so every SSE ratio is >= 1; greedy should stay
        # within 2x on these distributions (empirically it is much closer).
        for record in result.records:
            assert record["sse_ratio"] >= 1.0 - 1e-9
        assert result.worst_sse_ratio() < 2.0

    def test_error_ratio_reported(self):
        result = run_vopt_ablation(domain_size=64, bucket_counts=(8,), kinds=("zipf",))
        assert result.mean_error_ratio() == pytest.approx(
            result.records[0]["error_ratio"]
        )


class TestHistogramAblation:
    @pytest.fixture(scope="class")
    def ablation(self, moreno_tiny_catalog):
        return run_histogram_ablation(
            catalog=moreno_tiny_catalog,
            bucket_counts=(8, 32),
            methods=("num-alph", "sum-based"),
        )

    def test_grid_complete(self, ablation):
        assert len(ablation.records) == 2 * len(HISTOGRAM_KINDS) * 2

    def test_vopt_at_least_as_good_as_equiwidth(self, ablation):
        for method in ("num-alph", "sum-based"):
            assert ablation.mean_error(method, "v-optimal") <= ablation.mean_error(
                method, "equi-width"
            ) + 1e-9

    def test_best_kind_lookup(self, ablation):
        assert ablation.best_kind("sum-based") in HISTOGRAM_KINDS

    def test_mean_error_unknown_pair_is_nan(self, ablation):
        import math

        assert math.isnan(ablation.mean_error("sum-based", "wavelet"))


class TestL2Extension:
    @pytest.fixture(scope="class")
    def catalog(self, moreno_tiny_catalog):
        return moreno_tiny_catalog

    def test_l2_ordering_is_bijective(self, catalog):
        ordering = L2SumBasedOrdering(catalog)
        assert ordering.size == catalog.domain_size
        for index in range(0, ordering.size, 11):
            assert ordering.index(ordering.path(index)) == index

    def test_l2_ordering_groups_by_piece_count_first(self, catalog):
        ordering = L2SumBasedOrdering(catalog)
        assert ordering.full_name == "sum-based-L2"
        # Single labels (length 1) occupy the first |L| positions.
        first_block = [ordering.path(i).length for i in range(len(catalog.labels))]
        assert all(length == 1 for length in first_block)

    def test_piece_ranks(self, catalog):
        ordering = L2SumBasedOrdering(catalog)
        labels = catalog.labels
        path = f"{labels[0]}/{labels[1]}/{labels[0]}"
        ranks = ordering.piece_ranks(path)
        assert len(ranks) == 2  # greedy split: one pair + one single
        assert all(rank >= 1 for rank in ranks)

    def test_experiment_runs_and_reports_both_methods(self, catalog):
        result = run_extension_base_l2(
            catalog=catalog, bucket_counts=(8, 32), dataset="moreno-health"
        )
        methods = {record["method"] for record in result.records}
        assert methods == {"sum-based", "sum-based-L2"}
        assert result.mean_error("sum-based") >= 0.0
        assert result.mean_error("sum-based-L2") >= 0.0
