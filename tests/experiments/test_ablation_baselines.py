"""Tests for the baseline ablation (histogram vs synopsis-free estimators)."""

from __future__ import annotations

import pytest

from repro.experiments.ablation_baselines import run_baseline_ablation


class TestBaselineAblation:
    @pytest.fixture(scope="class")
    def result(self, moreno_tiny, moreno_tiny_catalog):
        return run_baseline_ablation(
            graph=moreno_tiny,
            catalog=moreno_tiny_catalog,
            sample_size=40,
        )

    def test_all_estimators_reported(self, result):
        methods = {record["method"] for record in result.records}
        assert methods == {
            "sum-based histogram",
            "independence",
            "markov-1",
            "sampling",
            "exact oracle",
        }

    def test_oracle_is_perfect_and_most_expensive(self, result):
        assert result.mean_error("exact oracle") == pytest.approx(0.0)
        storages = [int(record["stored_scalars"]) for record in result.records]
        assert result.storage("exact oracle") == max(storages)

    def test_sampling_stores_nothing(self, result):
        assert result.storage("sampling") == 0

    def test_histogram_budget_matches_markov(self, result):
        # By construction the histogram gets (|L| + |L|^2) / 2 buckets, i.e.
        # the same number of stored scalars as the Markov baseline.
        assert result.storage("sum-based histogram") == pytest.approx(
            result.storage("markov-1"), abs=2
        )

    def test_all_errors_in_unit_interval(self, result):
        for record in result.records:
            assert 0.0 <= float(record["mean_error_rate"]) <= 1.0

    def test_unknown_method_lookups(self, result):
        import math

        assert math.isnan(result.mean_error("wavelet"))
        assert result.storage("wavelet") == -1
