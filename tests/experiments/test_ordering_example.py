"""Exact reproduction of the paper's worked example (Section 3.4).

These are the strongest tests in the suite: they pin the library's orderings
to the numbers printed in the paper's Table 1 and Table 2.
"""

from __future__ import annotations

from repro.experiments.ordering_example import (
    EXAMPLE_CARDINALITIES,
    EXAMPLE_MAX_LENGTH,
    run_ordering_example,
)

#: Table 1 of the paper, verbatim (label path -> summed rank).
PAPER_TABLE1 = {
    "1": 1, "2": 3, "3": 2,
    "1/1": 2, "1/2": 4, "1/3": 3,
    "2/1": 4, "2/2": 6, "2/3": 5,
    "3/1": 3, "3/2": 5, "3/3": 4,
}

#: Table 2 of the paper, verbatim (method -> label paths by index 0..11).
PAPER_TABLE2 = {
    "num-alph": ["1", "2", "3", "1/1", "1/2", "1/3", "2/1", "2/2", "2/3", "3/1", "3/2", "3/3"],
    "num-card": ["1", "3", "2", "1/1", "1/3", "1/2", "3/1", "3/3", "3/2", "2/1", "2/3", "2/2"],
    "lex-alph": ["1", "1/1", "1/2", "1/3", "2", "2/1", "2/2", "2/3", "3", "3/1", "3/2", "3/3"],
    "lex-card": ["1", "1/1", "1/3", "1/2", "3", "3/1", "3/3", "3/2", "2", "2/1", "2/3", "2/2"],
    "sum-based": ["1", "3", "2", "1/1", "1/3", "3/1", "3/3", "1/2", "2/1", "3/2", "2/3", "2/2"],
}


class TestWorkedExample:
    def test_parameters_match_paper(self):
        assert EXAMPLE_CARDINALITIES == {"1": 20, "2": 100, "3": 80}
        assert EXAMPLE_MAX_LENGTH == 2

    def test_table1_summed_ranks_exact(self):
        result = run_ordering_example()
        assert result.summed_ranks == PAPER_TABLE1

    def test_table2_orderings_exact(self):
        result = run_ordering_example()
        assert set(result.orderings) == set(PAPER_TABLE2)
        for method, expected in PAPER_TABLE2.items():
            assert result.orderings[method] == expected, method

    def test_row_rendering_helpers(self):
        result = run_ordering_example()
        table1_rows = result.table1_rows()
        assert len(table1_rows) == 12
        assert table1_rows[0]["Label Path"] == "1"
        table2_rows = result.table2_rows()
        assert {row["Method"] for row in table2_rows} == set(PAPER_TABLE2)
        assert table2_rows[0]["0"] == "1"
