"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro.experiments.reporting import format_records, format_table, pivot


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["long-name", 2]], float_digits=2
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "long-name" in text
        assert len(lines) == 4  # header, rule, 2 rows

    def test_empty_records(self):
        assert format_records([]) == "(no records)"

    def test_format_records_uses_first_record_keys(self):
        text = format_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert text.splitlines()[0].split() == ["a", "b"]


class TestPivot:
    def test_shape(self):
        records = [
            {"beta": 2, "method": "x", "err": 0.5},
            {"beta": 2, "method": "y", "err": 0.4},
            {"beta": 4, "method": "x", "err": 0.3},
            {"beta": 4, "method": "y", "err": 0.2},
        ]
        headers, rows = pivot(records, row_key="beta", column_key="method", value_key="err")
        assert headers == ["beta", "x", "y"]
        assert rows == [[2, 0.5, 0.4], [4, 0.3, 0.2]]

    def test_missing_cells_left_blank(self):
        records = [
            {"beta": 2, "method": "x", "err": 0.5},
            {"beta": 4, "method": "y", "err": 0.2},
        ]
        headers, rows = pivot(records, row_key="beta", column_key="method", value_key="err")
        assert rows[0][2] == ""
        assert rows[1][1] == ""
