"""Tests for the Table 3 / Table 4 / Figure 1 / Figure 2 harnesses.

These run the harnesses at very small scale and assert the *shape* results
the paper reports: which ordering wins, how errors move with β, and that the
latency experiment produces sensible positive numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import default_bucket_counts, run_table4
from repro.ordering.registry import PAPER_ORDERINGS


class TestTable3:
    def test_all_datasets_reported(self):
        rows = run_table3(scale=0.02)
        assert len(rows) == 4
        names = {row.dataset for row in rows}
        assert names == {"moreno-health", "dbpedia", "snap-er", "snap-ff"}

    def test_paper_columns_preserved(self):
        rows = run_table3(scale=0.02, datasets=("moreno-health",))
        row = rows[0].as_row()
        assert row["#Edge Labels (paper)"] == 6
        assert row["#Vertices (paper)"] == 2539
        assert row["#Edges (paper)"] == 12969
        assert row["#Edge Labels (ours)"] == 6

    def test_generated_sizes_scale(self):
        small = run_table3(scale=0.02, datasets=("snap-er",))[0]
        large = run_table3(scale=0.04, datasets=("snap-er",))[0]
        assert small.generated_edge_count < large.generated_edge_count


class TestTable4:
    def test_default_bucket_counts_halve(self):
        counts = default_bucket_counts(1000, steps=5)
        assert counts[0] == 500
        for before, after in zip(counts, counts[1:]):
            assert after == max(2, before // 2)

    def test_structure_and_positive_latencies(self, moreno_tiny_catalog):
        result = run_table4(
            catalog=moreno_tiny_catalog,
            bucket_counts=[32, 8],
            workload_size=60,
            repetitions=1,
        )
        assert len(result.results) == len(PAPER_ORDERINGS) * 2
        assert all(r.mean_estimation_ms > 0 for r in result.results)
        rows = result.rows()
        assert len(rows) == 2
        assert set(rows[0]) == {"buckets", *PAPER_ORDERINGS}

    def test_sum_based_is_slower_than_native(self, moreno_tiny_catalog):
        result = run_table4(
            catalog=moreno_tiny_catalog,
            bucket_counts=[16],
            workload_size=300,
            repetitions=3,
        )
        assert result.slowdown_of("sum-based", "num-alph") > 1.0

    def test_render_produces_table(self, moreno_tiny_catalog):
        result = run_table4(
            catalog=moreno_tiny_catalog, bucket_counts=[8], workload_size=20
        )
        text = result.render()
        assert "buckets" in text
        assert "sum-based" in text


class TestFigure1:
    def test_domain_and_frequencies(self, moreno_tiny_catalog):
        result = run_figure1(catalog=moreno_tiny_catalog, bucket_count=8)
        assert result.domain_size == moreno_tiny_catalog.domain_size
        assert len(result.domain_paths) == result.domain_size
        assert result.max_frequency == moreno_tiny_catalog.max_selectivity()
        # Bucket averages integrate to the total frequency mass.
        mass = sum((end - start) * avg for start, end, avg in result.buckets)
        assert mass == pytest.approx(moreno_tiny_catalog.total_selectivity())

    def test_native_order_is_non_monotone(self, moreno_tiny_catalog):
        """The premise of Figure 1: the native order interleaves large and
        small frequencies, so the sequence is far from sorted."""
        result = run_figure1(catalog=moreno_tiny_catalog, bucket_count=8)
        values = result.frequencies
        inversions = sum(1 for a, b in zip(values, values[1:]) if a > b)
        assert inversions > len(values) * 0.1

    def test_as_series_shape(self, moreno_tiny_catalog):
        series = run_figure1(catalog=moreno_tiny_catalog, bucket_count=4).as_series()
        assert set(series) >= {"dataset", "k", "buckets", "paths", "frequencies", "histogram"}


class TestFigure2:
    @pytest.fixture(scope="class")
    def figure2_result(self, moreno_tiny_catalog):
        return run_figure2(
            datasets=("moreno-health",),
            max_lengths=(2, 3),
            bucket_fractions=(0.05, 0.2),
            catalogs={"moreno-health": moreno_tiny_catalog},
        )

    def test_grid_complete(self, figure2_result):
        # 1 dataset x 2 k x 2 beta x 5 methods
        assert len(figure2_result.results) == 2 * 2 * len(PAPER_ORDERINGS)

    def test_series_pivot(self, figure2_result):
        panel = figure2_result.series("moreno-health", 3)
        assert len(panel) == 2  # two beta values
        assert set(panel[0]) == {"buckets", *PAPER_ORDERINGS}

    def test_sum_based_wins_on_average(self, figure2_result):
        """The paper's headline finding."""
        means = figure2_result.mean_error_by_method("moreno-health")
        assert means["sum-based"] <= min(
            means[m] for m in PAPER_ORDERINGS if m != "sum-based"
        ) + 1e-9

    def test_error_decreases_with_buckets(self, figure2_result):
        for method in PAPER_ORDERINGS:
            for k in (2, 3):
                cells = sorted(
                    (
                        (r.bucket_count, r.mean_error_rate)
                        for r in figure2_result.results
                        if r.method == method and r.max_length == k
                    )
                )
                assert cells[-1][1] <= cells[0][1] + 0.05, (method, k)

    def test_render(self, figure2_result):
        text = figure2_result.render("moreno-health", 2)
        assert "sum-based" in text
        assert figure2_result.render("unknown", 9) == "(no records)"
