#!/usr/bin/env python
"""Check that every internal Markdown link in the docs resolves.

Scans ``README.md`` and ``docs/**/*.md`` for inline Markdown links
(``[text](target)``) and verifies, using only the standard library:

* relative file targets exist (resolved against the linking file);
* anchor targets (``#heading`` or ``file.md#heading``) match a heading in
  the target file under GitHub's slug rules (lowercase, spaces to dashes,
  punctuation dropped, duplicate slugs suffixed ``-1``, ``-2``, ...);
* no relative link escapes the repository root.

External links (``http://``, ``https://``, ``mailto:``) are ignored — CI
must not fail on somebody else's outage. Exit code 1 with one readable
line per broken link.

Usage::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links; deliberately simple — image links share the
#: ``](...)`` shape and are checked the same way.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files() -> list[Path]:
    """README plus every Markdown file under ``docs/``."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [path for path in files if path.is_file()]


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug for ``heading``, deduplicated against ``seen``."""
    # Strip inline code/emphasis markers and links, keep their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ").strip().lower()
    slug = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(path: Path) -> set[str]:
    """Every GitHub heading anchor defined by ``path``."""
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if match:
            slugs.add(github_slug(match.group(2), seen))
    return slugs


def extract_links(path: Path) -> list[tuple[int, str]]:
    """All inline-link targets in ``path`` as ``(line_number, target)``."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            links.append((number, match.group(1)))
    return links


def check_link(source: Path, target: str, slug_cache: dict[Path, set[str]]) -> str:
    """An error message for a broken ``target`` in ``source``, or ``""``."""
    if target.startswith(EXTERNAL_PREFIXES):
        return ""
    base, _, fragment = target.partition("#")
    if base:
        resolved = (source.parent / base).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            return f"link escapes the repository: {target}"
        if not resolved.exists():
            return f"missing target: {target}"
    else:
        resolved = source.resolve()
    if fragment:
        if resolved.suffix.lower() != ".md":
            return ""  # anchors into non-Markdown files are not checkable
        if resolved not in slug_cache:
            slug_cache[resolved] = heading_slugs(resolved)
        if fragment.lower() not in slug_cache[resolved]:
            return f"missing anchor: {target}"
    return ""


def main() -> int:
    slug_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    checked = 0
    for path in doc_files():
        for line_number, target in extract_links(path):
            checked += 1
            message = check_link(path, target, slug_cache)
            if message:
                rel = path.relative_to(REPO_ROOT)
                errors.append(f"{rel}:{line_number}: {message}")
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s) out of {checked}", file=sys.stderr)
        return 1
    print(f"all {checked} internal links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
