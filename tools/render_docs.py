#!/usr/bin/env python
"""Render the Markdown docs to standalone HTML for the CI docs artifact.

Writes one ``.html`` file per input into ``--out`` (default
``rendered-docs/``), covering ``README.md`` and ``docs/**/*.md``. Uses the
third-party ``markdown`` package when available; otherwise falls back to a
small stdlib renderer (headings, fenced code blocks, inline code, links,
lists, paragraphs, tables passed through as preformatted text) so the
artifact is still readable on a bare runner. ``.md`` links are rewritten
to ``.html`` so the rendered tree is navigable.

Usage::

    python tools/render_docs.py [--out rendered-docs]
"""

from __future__ import annotations

import argparse
import html
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ max-width: 52rem; margin: 2rem auto; padding: 0 1rem;
       font-family: system-ui, sans-serif; line-height: 1.55; }}
pre {{ background: #f6f8fa; padding: .8rem; overflow-x: auto; }}
code {{ background: #f6f8fa; padding: .1rem .25rem; }}
pre code {{ padding: 0; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #d0d7de; padding: .3rem .6rem; }}
</style>
</head>
<body>
{body}
</body>
</html>
"""


def rewrite_md_links(text: str) -> str:
    """Point ``*.md`` targets at their rendered ``*.html`` twins."""
    return re.sub(
        r"\]\(([^)\s]+?)\.md(#[^)\s]*)?\)",
        lambda m: f"]({m.group(1)}.html{m.group(2) or ''})",
        text,
    )


def render_markdown(text: str) -> str:
    """``text`` as an HTML fragment, best renderer available."""
    try:
        import markdown  # type: ignore[import-not-found]
    except ImportError:
        return _render_fallback(text)
    return markdown.markdown(text, extensions=["tables", "fenced_code"])


def _inline(text: str) -> str:
    """Inline spans on escaped text: code, links, bold, italics."""
    out = html.escape(text, quote=False)
    out = re.sub(r"`([^`]+)`", r"<code>\1</code>", out)
    out = re.sub(r"\[([^\]]+)\]\(([^)\s]+)\)", r'<a href="\2">\1</a>', out)
    out = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", out)
    out = re.sub(r"(?<!\*)\*([^*\s][^*]*)\*(?!\*)", r"<em>\1</em>", out)
    return out


def _render_fallback(text: str) -> str:
    """A minimal stdlib Markdown-to-HTML conversion, fidelity over polish."""
    parts: list[str] = []
    lines = text.splitlines()
    index = 0
    paragraph: list[str] = []
    list_open = False

    def flush_paragraph() -> None:
        if paragraph:
            parts.append(f"<p>{_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def close_list() -> None:
        nonlocal list_open
        if list_open:
            parts.append("</ul>")
            list_open = False

    while index < len(lines):
        line = lines[index]
        if line.startswith("```") or line.startswith("~~~"):
            flush_paragraph()
            close_list()
            fence = line[:3]
            block: list[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith(fence):
                block.append(lines[index])
                index += 1
            parts.append(f"<pre><code>{html.escape(chr(10).join(block))}</code></pre>")
            index += 1
            continue
        heading = re.match(r"^(#{1,6})\s+(.*?)\s*#*\s*$", line)
        if heading:
            flush_paragraph()
            close_list()
            depth = len(heading.group(1))
            parts.append(f"<h{depth}>{_inline(heading.group(2))}</h{depth}>")
        elif line.startswith("|"):
            flush_paragraph()
            close_list()
            table: list[str] = []
            while index < len(lines) and lines[index].startswith("|"):
                table.append(lines[index])
                index += 1
            parts.append(f"<pre>{html.escape(chr(10).join(table))}</pre>")
            continue
        elif re.match(r"^\s*[-*]\s+", line):
            flush_paragraph()
            if not list_open:
                parts.append("<ul>")
                list_open = True
            item = re.sub(r"^\s*[-*]\s+", "", line)
            parts.append(f"<li>{_inline(item)}</li>")
        elif not line.strip():
            flush_paragraph()
            close_list()
        else:
            paragraph.append(line.strip())
        index += 1
    flush_paragraph()
    close_list()
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="rendered-docs", help="output directory for the HTML tree"
    )
    args = parser.parse_args(argv)
    out_root = Path(args.out)

    sources = [REPO_ROOT / "README.md"]
    sources.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    rendered = 0
    for source in sources:
        if not source.is_file():
            continue
        relative = source.relative_to(REPO_ROOT).with_suffix(".html")
        destination = out_root / relative
        destination.parent.mkdir(parents=True, exist_ok=True)
        text = rewrite_md_links(source.read_text(encoding="utf-8"))
        body = render_markdown(text)
        destination.write_text(
            PAGE.format(title=html.escape(source.stem), body=body), encoding="utf-8"
        )
        rendered += 1
    print(f"rendered {rendered} page(s) into {out_root}/")
    return 0 if rendered else 1


if __name__ == "__main__":
    sys.exit(main())
