"""Benchmark: regenerate Table 3 (dataset summary, paper vs stand-in)."""

from __future__ import annotations

from repro.experiments.reporting import format_records
from repro.experiments.table3 import run_table3


def test_table3(benchmark):
    rows = benchmark.pedantic(
        run_table3, kwargs={"scale": 0.02}, rounds=1, iterations=1
    )
    print("\nTable 3 — datasets (paper columns next to generated stand-ins)")
    print(format_records([row.as_row() for row in rows]))
    assert {row.dataset for row in rows} == {
        "moreno-health",
        "dbpedia",
        "snap-er",
        "snap-ff",
    }
    assert all(row.generated_label_count == row.paper_label_count for row in rows)
