"""Benchmark: the L2 base-set extension (the paper's future-work direction)."""

from __future__ import annotations

from repro.experiments.extension_base_l2 import run_extension_base_l2
from repro.experiments.reporting import format_records


def test_l2_base_set_extension(benchmark, bench_catalogs):
    catalog = bench_catalogs["dbpedia"]
    result = benchmark.pedantic(
        run_extension_base_l2,
        kwargs={"catalog": catalog, "dataset": "dbpedia", "bucket_counts": (8, 32, 128)},
        rounds=1,
        iterations=1,
    )
    print("\nExtension — L1 vs L2 sum-based ordering (mean error rate)")
    print(format_records(result.records))
    l1 = result.mean_error("sum-based")
    l2 = result.mean_error("sum-based-L2")
    print(f"\nmean error  sum-based (L1 base set): {l1:.4f}")
    print(f"mean error  sum-based (L2 base set): {l2:.4f}")
    assert l1 >= 0.0 and l2 >= 0.0
