"""Benchmark: regenerate the paper's worked example (Tables 1 and 2).

This is a correctness anchor more than a performance test: it times the
regeneration of the Section 3.4 tables and prints them in the paper's shape.
"""

from __future__ import annotations

from repro.experiments.ordering_example import run_ordering_example
from repro.experiments.reporting import format_records


def test_tables_1_and_2(benchmark):
    result = benchmark(run_ordering_example)
    print("\nTable 1 — summed ranks")
    print(format_records(result.table1_rows()))
    print("\nTable 2 — ordered label paths per method")
    print(format_records(result.table2_rows()))
    # The exact values are asserted in the unit tests; here we only sanity
    # check the shape so a broken benchmark cannot silently pass.
    assert len(result.summed_ranks) == 12
    assert all(len(paths) == 12 for paths in result.orderings.values())
