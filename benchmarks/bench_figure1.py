"""Benchmark: Figure 1 — the raw distribution and its equi-width histogram.

Regenerates the series plotted in the paper's Figure 1 (Moreno Health, k=3,
native num-alph order, equi-width histogram) and prints summary statistics of
the distribution's non-uniformity — the motivation for domain reordering.
"""

from __future__ import annotations

from repro.experiments.figure1 import run_figure1


def test_figure1_distribution_and_histogram(benchmark, moreno_catalog):
    result = benchmark.pedantic(
        run_figure1,
        kwargs={"catalog": moreno_catalog, "bucket_count": 16},
        rounds=1,
        iterations=1,
    )
    values = result.frequencies
    nonzero = [value for value in values if value > 0]
    inversions = sum(1 for a, b in zip(values, values[1:]) if a > b)
    print(
        f"\nFigure 1 — {result.dataset} k={result.max_length}: "
        f"domain={result.domain_size} paths, max f(l)={result.max_frequency:.0f}, "
        f"nonzero={len(nonzero)}, adjacent inversions={inversions}, "
        f"equi-width buckets={result.bucket_count}"
    )
    first_buckets = ", ".join(
        f"[{start},{end}):{average:.1f}" for start, end, average in result.buckets[:4]
    )
    print(f"first buckets: {first_buckets} ...")
    assert result.domain_size == moreno_catalog.domain_size
    assert inversions > 0  # the native order is far from monotone
