#!/usr/bin/env python
"""Gate a fresh benchmark run against the committed ``BENCH_engine.json``.

The CI ``bench-regression`` job reruns ``run_all.py --quick`` and then calls
this script with the *committed* document as the baseline and the fresh one
as the current run.  Two things are checked:

* every floor **recorded in the baseline** (batch ≥ 10×, columnar ≥ 3×,
  npz ≤ 25%, coalesced ≥ 5×, delta ≥ 5×, sparse build ≥ 2×, matrix-chain
  build ≥ 2× the sparse DFS, sparse artifact ≤ 5%, sparse serve RSS
  < 1 GiB, chaos availability ≥ 99%, open-circuit fast-fail < 10 ms,
  pre-fork serving ≥ 2× single-process QPS with p99 ≤ 1.5×, extra mmap
  worker ≤ 25% of a private catalog copy, remote warm-start ≥ 10×,
  remote availability ≥ 99% under store faults, open remote breaker
  fast-fail < 10 ms, ...)
  still holds for the current numbers — so a PR cannot silently relax a
  shipped floor by shrinking the constant in ``run_all.py``;
* the correctness invariants (batch == loop, patched == cold, warm start
  from cache, single-flight, byte-identical sparse histogram boundaries)
  still hold.

Raw wall-clock numbers are *not* compared across documents — the baseline
was measured on a different machine, so only the recorded floors and the
current run's own ratios are meaningful.  A drift table is printed for
humans.  Exit code 1 on any violated floor, with one readable line per
failure printed first.

Usage::

    python benchmarks/check_regression.py \
        --baseline BENCH_engine.json --current BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from run_all import collect_floor_failures  # noqa: E402

#: (section, metric, floor_key, direction) — the recorded floors carried by
#: both documents.  ``direction`` is ">=" (floor) or "<=" (ceiling).
FLOORS: tuple[tuple[str, str, str, str], ...] = (
    ("engine", "batch_speedup", "batch_speedup_floor", ">="),
    ("catalog", "columnar_speedup", "columnar_speedup_floor", ">="),
    ("catalog", "artifact_npz_ratio", "artifact_npz_ratio_ceiling", "<="),
    ("catalog", "process_speedup", "process_speedup_floor", ">="),
    ("serving", "coalesced_speedup", "coalesced_speedup_floor", ">="),
    ("delta", "incremental_speedup", "incremental_speedup_floor", ">="),
    ("sparse", "build_speedup", "build_speedup_floor", ">="),
    ("sparse", "matrix_speedup", "matrix_speedup_floor", ">="),
    ("sparse", "artifact_ratio", "artifact_ratio_ceiling", "<="),
    ("sparse", "serve_max_rss_bytes", "serve_rss_ceiling_bytes", "<="),
    ("chaos", "availability", "availability_floor", ">="),
    ("chaos", "circuit_fast_fail_seconds", "fast_fail_ceiling_seconds", "<="),
    ("obs", "overhead_ratio", "overhead_ratio_floor", ">="),
    ("load", "multi_speedup", "multi_speedup_floor", ">="),
    ("load", "p99_ratio", "p99_ratio_ceiling", "<="),
    (
        "load",
        "extra_worker_rss_fraction",
        "extra_worker_rss_fraction_ceiling",
        "<=",
    ),
    ("remote", "warm_speedup", "warm_speedup_floor", ">="),
    ("remote", "availability", "availability_floor", ">="),
    (
        "remote",
        "breaker_fast_fail_seconds",
        "fast_fail_ceiling_seconds",
        "<=",
    ),
)


def load_document(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"regression check: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def merge_baseline_floors(baseline: dict, current: dict) -> dict:
    """The current document with the *baseline's* recorded floors grafted in.

    ``collect_floor_failures`` reads each floor from the document it checks;
    substituting the committed values means a PR that lowers a floor
    constant still gets gated against the floor it shipped with.
    """
    merged = json.loads(json.dumps(current))  # deep copy, JSON-shaped
    for section, _, floor_key, _ in FLOORS:
        base_section = baseline.get(section) or {}
        if floor_key in base_section and section in merged:
            merged[section][floor_key] = base_section[floor_key]
    return merged


def drift_table(baseline: dict, current: dict) -> list[str]:
    """Human-readable baseline-vs-current rows (informational only)."""
    rows = []
    for section, metric, floor_key, direction in FLOORS:
        base_value = (baseline.get(section) or {}).get(metric)
        new_value = (current.get(section) or {}).get(metric)
        floor = (baseline.get(section) or {}).get(
            floor_key, (current.get(section) or {}).get(floor_key)
        )
        if new_value is None:
            # e.g. process_speedup on a single-core runner: measured as null,
            # floor not enforced.
            rows.append(f"{section}.{metric}: skipped on this machine")
            continue

        def fmt(value: object) -> str:
            return f"{value:.2f}" if isinstance(value, (int, float)) else str(value)

        rows.append(
            f"{section}.{metric}: {fmt(new_value)} "
            f"(baseline {fmt(base_value)}, {direction} {fmt(floor)})"
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed benchmark document (floor source)",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="freshly measured benchmark document to gate",
    )
    args = parser.parse_args(argv)

    baseline = load_document(Path(args.baseline))
    current = load_document(Path(args.current))

    for name, document in (("baseline", baseline), ("current", current)):
        for section, floor_name in (
            ("delta", "delta"),
            ("sparse", "sparse-catalog"),
            ("chaos", "chaos-smoke"),
            ("obs", "observability"),
            ("load", "serving-load"),
            ("remote", "remote-artifact-tier"),
        ):
            if section not in document:
                print(
                    f"regression check: {name} document predates the "
                    f"{floor_name} floors (schema {document.get('schema')}); "
                    "regenerate it with benchmarks/run_all.py",
                    file=sys.stderr,
                )
                return 2

    failures = collect_floor_failures(merge_baseline_floors(baseline, current))
    for failure in failures:
        print(f"floor regression: {failure}", file=sys.stderr)
    for row in drift_table(baseline, current):
        print(row)
    if failures:
        print(f"{len(failures)} floor(s) regressed", file=sys.stderr)
        return 1
    print("all recorded floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
