#!/usr/bin/env python
"""End-to-end smoke test of ``repro engine update`` (the CI delta job).

Drives the incremental-update pipeline exactly the way an operator would:

1. generate a schema-structured ring graph, write it as an edge list, and
   build its catalog artifacts with ``repro engine build --cache-dir``;
2. script a 100-edge delta (half removals of real edges, half additions),
   write it in the ``+|- source label target`` file format, and apply it
   with ``repro engine update`` against the same cache;
3. assert the patched ``catalog-<key>.npz`` artifact in the cache is
   **byte-identical** to a cold ``compute_selectivity_vector`` on the
   post-delta graph, and that the update only recomputed the affected
   first-label subtrees (not the whole trie).

Failures print as one readable ``delta-smoke FAILURE: ...`` line each and
exit non-zero; no tracebacks for expected failure modes.

Usage::

    python benchmarks/delta_smoke.py
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: The CI contract: the scripted delta changes exactly this many edges.
DELTA_EDGES = 100

LABEL_COUNT = 16
LAYER_SIZE = 60
EDGES_PER_LABEL = 400
MAX_LENGTH = 3


def main(argv: list[str] | None = None) -> int:
    try:
        return _run()
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"delta-smoke FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _run() -> int:
    import numpy as np

    from repro.graph.delta import GraphDelta, write_delta
    from repro.graph.generators import ring_labeled_graph
    from repro.graph.io import read_edge_list, write_edge_list
    from repro.paths.catalog import SelectivityCatalog
    from repro.paths.enumeration import compute_selectivity_vector

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)
            print(f"delta-smoke FAILURE: {message}", file=sys.stderr)

    def run_cli(*arguments: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", *arguments],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )

    with tempfile.TemporaryDirectory() as tmp:
        graph_path = Path(tmp) / "graph.tsv"
        delta_path = Path(tmp) / "churn.delta"
        updated_path = Path(tmp) / "updated.tsv"
        cache_dir = Path(tmp) / "cache"

        graph = ring_labeled_graph(
            LABEL_COUNT, LAYER_SIZE, EDGES_PER_LABEL, seed=7, name="delta-smoke"
        )
        write_edge_list(graph, graph_path)

        # The scripted 100-edge delta: removals sampled from one label's real
        # edges, additions between that label's layers.  Vertices go through
        # str() so the delta file matches the edge list's string vertices.
        rng = random.Random(11)
        label = sorted(graph.labels())[LABEL_COUNT // 2]
        removals = [
            (str(edge.source), edge.label, str(edge.target))
            for edge in rng.sample(
                list(graph.edges_with_label(label)), DELTA_EDGES // 2
            )
        ]
        layer = [str(i) for i in range(1, LABEL_COUNT + 1)].index(label)
        additions: set[tuple[str, str, str]] = set()
        while len(additions) < DELTA_EDGES // 2:
            source = layer * LAYER_SIZE + rng.randrange(LAYER_SIZE)
            target = ((layer + 1) % LABEL_COUNT) * LAYER_SIZE + rng.randrange(
                LAYER_SIZE
            )
            if not graph.has_edge(source, label, target):
                additions.add((str(source), label, str(target)))
        delta = GraphDelta(additions=additions, removals=removals)
        check(len(delta) == DELTA_EDGES, f"scripted delta has {len(delta)} edges")
        write_delta(delta, delta_path)

        # 1. Cold build into the cache.
        build = run_cli(
            "engine", "build", str(graph_path), "-k", str(MAX_LENGTH),
            "--cache-dir", str(cache_dir), "--json",
        )
        check(build.returncode == 0, f"engine build failed: {build.stderr.strip()}")
        if build.returncode != 0:
            return 1
        build_row = json.loads(build.stdout)
        check(not build_row["catalog_from_cache"], "first build hit the cache")

        # 2. Apply the delta through the CLI.
        update = run_cli(
            "engine", "update", str(graph_path), "--delta", str(delta_path),
            "-k", str(MAX_LENGTH), "--cache-dir", str(cache_dir),
            "-o", str(updated_path), "--json",
        )
        check(update.returncode == 0, f"engine update failed: {update.stderr.strip()}")
        if update.returncode != 0:
            return 1
        row = json.loads(update.stdout)
        check(row["updated_from_delta"] is True, "update row not marked as delta")
        check(
            row["delta_additions"] == DELTA_EDGES // 2
            and row["delta_removals"] == DELTA_EDGES // 2,
            f"update applied +{row['delta_additions']}/-{row['delta_removals']}",
        )
        check(
            0 < row["delta_affected_subtrees"] < row["delta_subtrees_total"],
            f"delta touched {row['delta_affected_subtrees']}/"
            f"{row['delta_subtrees_total']} subtrees (expected a strict subset)",
        )
        check(not row["delta_full_rebuild"], "update fell back to a full rebuild")

        # 3. The patched artifact must equal a cold rebuild byte for byte.
        patched_path = cache_dir / f"catalog-{row['catalog_key']}.npz"
        check(patched_path.exists(), f"patched artifact missing: {patched_path.name}")
        if not patched_path.exists():
            return 1
        patched = SelectivityCatalog.load(patched_path)
        cold = compute_selectivity_vector(read_edge_list(updated_path), MAX_LENGTH)
        check(
            bool(np.array_equal(patched.frequency_vector(), cold)),
            "patched catalog differs from a cold rebuild of the updated graph",
        )

        if not failures:
            print(
                f"delta-smoke ok: {DELTA_EDGES}-edge delta recomputed "
                f"{row['delta_affected_subtrees']}/{row['delta_subtrees_total']} "
                f"subtrees, patched vector identical to cold rebuild "
                f"({patched.domain_size} paths)"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
