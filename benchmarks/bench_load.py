#!/usr/bin/env python
"""Keep-alive HTTP load benchmark for the pre-fork serving tier.

Drives the **real** ``repro serve`` CLI twice over persistent HTTP
connections — once with ``--workers 1`` (the classic in-process server,
private catalog copy) and once with ``--workers N`` (the pre-fork tier,
every worker adopting the shared sparse mmap sidecar) — and records
p50/p99 latency, QPS and QPS-per-core for both, plus the per-worker
memory cost of the fleet:

* **throughput floor** — on a >= 4-core machine the multi-process tier
  must clear ``SPEEDUP_FLOOR`` x the single-process QPS with p99 no worse
  than ``P99_RATIO_CEILING`` x;
* **memory floor** — with the sparse mmap sidecar, each worker past the
  first must cost at most ``RSS_FRACTION_CEILING`` of a private catalog
  copy (measured via ``/proc/<pid>/smaps_rollup`` PSS, which splits
  shared pages across their mappers).

The served catalog is synthetic: a small graph fixes the artifact keys,
then a multi-million-nonzero sparse catalog is stored under those keys
(with its ``.nzi.npy``/``.nzv.npy`` sidecar pair), so every server start
is a warm start and the bytes being shared are big enough to measure.

Usage::

    python benchmarks/bench_load.py [--quick] [--json out.json] [--port 18993]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: The key-fixing graph (small on purpose: only its digest matters).
GRAPH_SPEC = dict(vertices=2000, edges=400, labels=20, skew=0.5, seed=29)
MAX_LENGTH = 6
BUCKETS = 16
#: Nonzeros in the synthetic served catalog (16 bytes each).
SYNTH_NNZ = 4_000_000
SYNTH_NNZ_QUICK = 1_000_000
#: Concurrent keep-alive clients (the ISSUE asks for 32-128).
CLIENTS = 32
CLIENTS_QUICK = 8
DURATION_SECONDS = 6.0
DURATION_SECONDS_QUICK = 1.5
WARMUP_SECONDS = 1.0
WARMUP_SECONDS_QUICK = 0.3

#: Multi-process QPS must clear this multiple of single-process QPS...
SPEEDUP_FLOOR = 2.0
#: ...with tail latency no worse than this multiple of the single run's.
P99_RATIO_CEILING = 1.5
#: Cores below which the throughput floors are recorded but not enforced.
SPEEDUP_MIN_CORES = 4
#: Per-extra-worker PSS as a fraction of a private catalog copy.
RSS_FRACTION_CEILING = 0.25
#: Below this private-copy size the PSS signal drowns in interpreter
#: noise, so the memory floor is recorded but not enforced.
RSS_MIN_PRIVATE_BYTES = 32 * 2**20

#: A mixed estimate bundle (labels are "1".."20" in the spec graph).
PATHS = ["1/2", "2/2/1", "3", "4/1", "2/19/7/3", "5/5", "1", "18/2/2"]


def _prepare_cache(tmp: Path, quick: bool) -> tuple[Path, Path, int]:
    """Write the graph + warm artifact cache; returns (graph, cache, bytes).

    The returned byte count is the in-memory size of a *private* copy of
    the served catalog — the denominator of the memory floor.
    """
    import numpy as np

    from repro.engine import EngineConfig, EstimationSession
    from repro.engine.cache import ArtifactCache
    from repro.graph.generators import zipf_labeled_graph
    from repro.graph.io import write_edge_list
    from repro.paths.catalog import SelectivityCatalog

    graph = zipf_labeled_graph(
        GRAPH_SPEC["vertices"],
        GRAPH_SPEC["edges"],
        GRAPH_SPEC["labels"],
        skew=GRAPH_SPEC["skew"],
        seed=GRAPH_SPEC["seed"],
        name="load",
    )
    graph_path = tmp / "load.tsv"
    write_edge_list(graph, graph_path)
    cache_dir = tmp / "cache"
    cache = ArtifactCache(cache_dir)
    config = EngineConfig(
        max_length=MAX_LENGTH, bucket_count=BUCKETS, storage="sparse"
    )
    session = EstimationSession.build(graph, config, cache_dir=cache)
    key = session.stats.catalog_key

    # Swap the (tiny) real catalog for a synthetic multi-MB one under the
    # same key, with the mmap sidecar pair the workers will adopt.
    rng = np.random.default_rng(GRAPH_SPEC["seed"])
    domain = session.catalog.domain_size
    nnz = SYNTH_NNZ_QUICK if quick else SYNTH_NNZ
    indices = np.sort(rng.choice(domain, size=nnz, replace=False).astype(np.int64))
    values = rng.integers(1, 1000, size=nnz, dtype=np.int64)
    synthetic = SelectivityCatalog.from_nonzeros(
        [str(label) for label in session.catalog.labels],
        MAX_LENGTH,
        indices,
        values,
        graph_name=graph.name,
    )
    cache.store_catalog(key, synthetic, mmap_sidecar=True)
    return graph_path, cache_dir, synthetic.memory_bytes()


def _start_server(
    graph_path: Path, cache_dir: Path, *, port: int, workers: int
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--graph",
            f"load={graph_path}",
            "--port",
            str(port),
            "-k",
            str(MAX_LENGTH),
            "--buckets",
            str(BUCKETS),
            "--storage",
            "sparse",
            "--cache-dir",
            str(cache_dir),
            "--workers",
            str(workers),
            "--warm",
        ],
        env=env,
        cwd=REPO_ROOT,
        stderr=subprocess.DEVNULL,
    )


def _wait_ready(port: int, deadline_seconds: float = 60.0) -> None:
    deadline = time.perf_counter() + deadline_seconds
    while True:
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
            conn.request("GET", "/healthz")
            status = conn.getresponse().status
            conn.close()
            if status == 200:
                return
        except OSError:
            pass
        if time.perf_counter() > deadline:
            raise RuntimeError(f"server on port {port} never became healthy")
        time.sleep(0.2)


def _load_phase(
    port: int, *, clients: int, duration: float, warmup: float
) -> dict:
    """Fire keep-alive estimate traffic; stats cover the post-warmup window."""
    body = json.dumps({"graph": "load", "paths": PATHS}).encode("utf-8")
    headers = {"Content-Type": "application/json", "Connection": "keep-alive"}
    stop = threading.Event()
    start_gate = threading.Event()
    results: list[list[tuple[float, float]]] = [[] for _ in range(clients)]
    errors = [0] * clients

    def run_client(slot: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        start_gate.wait()
        while not stop.is_set():
            began = time.perf_counter()
            try:
                conn.request("POST", "/v1/estimate", body=body, headers=headers)
                response = conn.getresponse()
                response.read()
                status = response.status
            except OSError:
                errors[slot] += 1
                conn.close()
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
                continue
            finished = time.perf_counter()
            if status != 200:
                errors[slot] += 1
            else:
                results[slot].append((finished, finished - began))
        conn.close()

    threads = [
        threading.Thread(target=run_client, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    begin = time.perf_counter()
    start_gate.set()
    time.sleep(warmup + duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)

    window_start = begin + warmup
    window_end = begin + warmup + duration
    latencies = sorted(
        latency
        for slot in results
        for finished, latency in slot
        if window_start <= finished <= window_end
    )
    if not latencies:
        raise RuntimeError("load phase produced no in-window responses")

    def percentile(q: float) -> float:
        index = min(len(latencies) - 1, int(q * (len(latencies) - 1)))
        return latencies[index]

    return {
        "requests": len(latencies),
        "qps": len(latencies) / duration,
        "p50_ms": percentile(0.50) * 1000.0,
        "p99_ms": percentile(0.99) * 1000.0,
        "errors": sum(errors),
    }


def _worker_pids(server_pid: int, workers: int) -> list[int]:
    """PIDs doing the serving: the forked children, or the server itself."""
    if workers <= 1:
        return [server_pid]
    children_path = Path(f"/proc/{server_pid}/task/{server_pid}/children")
    deadline = time.perf_counter() + 10.0
    while True:
        try:
            pids = [int(pid) for pid in children_path.read_text().split()]
        except (OSError, ValueError):
            pids = []
        if len(pids) >= workers or time.perf_counter() > deadline:
            return pids or [server_pid]
        time.sleep(0.1)


def _pss_bytes(pid: int) -> int | None:
    """Proportional set size (shared pages split across their mappers)."""
    try:
        for line in Path(f"/proc/{pid}/smaps_rollup").read_text().splitlines():
            if line.startswith("Pss:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - smaps_rollup exists on all target kernels
        for line in Path(f"/proc/{pid}/status").read_text().splitlines():
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _stop_server(server: subprocess.Popen) -> None:
    server.terminate()
    try:
        server.wait(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        server.kill()
        server.wait()


def _measure_mode(
    graph_path: Path,
    cache_dir: Path,
    *,
    port: int,
    workers: int,
    clients: int,
    duration: float,
    warmup: float,
) -> dict:
    server = _start_server(graph_path, cache_dir, port=port, workers=workers)
    try:
        _wait_ready(port)
        phase = _load_phase(
            port, clients=clients, duration=duration, warmup=warmup
        )
        pids = _worker_pids(server.pid, workers)
        pss = [bytes_ for pid in pids if (bytes_ := _pss_bytes(pid)) is not None]
        phase["workers"] = workers
        phase["worker_pss_bytes"] = pss
    finally:
        _stop_server(server)
    return phase


def run_load_bench(quick: bool = False, *, port: int = 18993) -> dict:
    """Measure both serving modes; returns the ``load`` benchmark section."""
    cores = os.cpu_count() or 1
    multi_workers = max(2, min(4, cores))
    clients = CLIENTS_QUICK if quick else CLIENTS
    duration = DURATION_SECONDS_QUICK if quick else DURATION_SECONDS
    warmup = WARMUP_SECONDS_QUICK if quick else WARMUP_SECONDS

    with tempfile.TemporaryDirectory() as tmp:
        graph_path, cache_dir, private_bytes = _prepare_cache(Path(tmp), quick)
        single = _measure_mode(
            graph_path,
            cache_dir,
            port=port,
            workers=1,
            clients=clients,
            duration=duration,
            warmup=warmup,
        )
        multi = _measure_mode(
            graph_path,
            cache_dir,
            port=port,
            workers=multi_workers,
            clients=clients,
            duration=duration,
            warmup=warmup,
        )

    speedup = multi["qps"] / single["qps"] if single["qps"] else None
    p99_ratio = (
        multi["p99_ms"] / single["p99_ms"] if single["p99_ms"] else None
    )
    # PSS splits shared pages across mappers, so summing worker PSS counts
    # each shared page once.  The single-process run resides the same
    # catalog privately; the difference divided across the extra workers
    # is what each additional worker really costs.
    fraction = None
    if (
        len(multi["worker_pss_bytes"]) == multi_workers
        and multi_workers > 1
        and single["worker_pss_bytes"]
        and private_bytes > 0
    ):
        extra = (
            sum(multi["worker_pss_bytes"]) - single["worker_pss_bytes"][0]
        ) / (multi_workers - 1)
        fraction = max(0.0, extra) / private_bytes

    enforce_speedup = cores >= SPEEDUP_MIN_CORES and multi_workers >= 4
    enforce_rss = (
        fraction is not None and private_bytes >= RSS_MIN_PRIVATE_BYTES
    )
    return {
        "cpu_count": cores,
        "workers": multi_workers,
        "clients": clients,
        "duration_seconds": duration,
        "paths_per_request": len(PATHS),
        "single": single,
        "multi": multi,
        "single_qps": single["qps"],
        "multi_qps": multi["qps"],
        "multi_qps_per_core": multi["qps"] / cores,
        "multi_speedup": speedup,
        "multi_speedup_floor": SPEEDUP_FLOOR,
        "speedup_floor_enforced": enforce_speedup,
        "p99_ratio": p99_ratio,
        "p99_ratio_ceiling": P99_RATIO_CEILING,
        "catalog_private_bytes": private_bytes,
        "extra_worker_rss_fraction": fraction,
        "extra_worker_rss_fraction_ceiling": RSS_FRACTION_CEILING,
        "rss_floor_enforced": enforce_rss,
        "errors_total": single["errors"] + multi["errors"],
        "requests_total": single["requests"] + multi["requests"],
    }


def collect_failures(load: dict) -> list[str]:
    """Every load floor the measured section violates (shared with CI)."""
    failures: list[str] = []
    speedup = load.get("multi_speedup")
    floor = load.get("multi_speedup_floor", SPEEDUP_FLOOR)
    if (
        load.get("speedup_floor_enforced")
        and speedup is not None
        and speedup < floor
    ):
        failures.append(
            f"multi-process serving {speedup:.2f}x < {floor}x single-process "
            f"QPS on {load.get('cpu_count')} cores "
            f"({load.get('workers')} workers, {load.get('clients')} clients)"
        )
    p99_ratio = load.get("p99_ratio")
    p99_ceiling = load.get("p99_ratio_ceiling", P99_RATIO_CEILING)
    if (
        load.get("speedup_floor_enforced")
        and p99_ratio is not None
        and p99_ratio > p99_ceiling
    ):
        failures.append(
            f"multi-process p99 is {p99_ratio:.2f}x the single-process p99 "
            f"(ceiling {p99_ceiling}x)"
        )
    fraction = load.get("extra_worker_rss_fraction")
    fraction_ceiling = load.get(
        "extra_worker_rss_fraction_ceiling", RSS_FRACTION_CEILING
    )
    if (
        load.get("rss_floor_enforced")
        and fraction is not None
        and fraction > fraction_ceiling
    ):
        failures.append(
            f"each extra mmap worker costs {fraction:.0%} of a private "
            f"catalog copy (ceiling {fraction_ceiling:.0%} of "
            f"{load.get('catalog_private_bytes', 0) / 2**20:.0f}MiB)"
        )
    requests = load.get("requests_total", 0)
    errors = load.get("errors_total", 0)
    if requests and errors > max(1, requests // 100):
        failures.append(
            f"load phase errored on {errors}/{requests} requests (> 1%)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument("--json", default=None, help="also write the section here")
    parser.add_argument("--port", type=int, default=18993)
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            f"load bench: measuring on {cores} core(s) — throughput floors "
            "recorded but not enforced",
            file=sys.stderr,
        )
    try:
        load = run_load_bench(args.quick, port=args.port)
    except Exception as exc:  # noqa: BLE001 - bench harness boundary
        print(f"load bench FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if args.json:
        Path(args.json).write_text(
            json.dumps(load, indent=2) + "\n", encoding="utf-8"
        )
    failures = collect_failures(load)
    for failure in failures:
        print(f"load bench FAILURE: {failure}", file=sys.stderr)
    fraction = load["extra_worker_rss_fraction"]
    print(
        f"load bench: single {load['single_qps']:.0f} qps "
        f"(p99 {load['single']['p99_ms']:.1f}ms), "
        f"{load['workers']}-worker {load['multi_qps']:.0f} qps "
        f"(p99 {load['multi']['p99_ms']:.1f}ms, "
        f"{load['multi_qps_per_core']:.0f} qps/core) "
        f"on {load['cpu_count']} cores; extra-worker RSS "
        + (f"{fraction:.1%}" if fraction is not None else "n/a")
        + f" of a {load['catalog_private_bytes'] / 2**20:.0f}MiB private copy"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
