"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the reproduction's ablations).  The heavy inputs — dataset stand-ins and
their selectivity catalogs — are built once per session here and shared, so
the benchmark timings measure the experiment itself rather than set-up.

Scales are deliberately small (pure-Python substrate); the *shape* of each
result is what the reproduction tracks, and EXPERIMENTS.md records the
paper-vs-measured comparison for every entry.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import available_datasets, load_dataset
from repro.paths.catalog import SelectivityCatalog

#: Per-dataset scales used by the benchmark harness: large enough to show the
#: paper's effects, small enough that a full run finishes in a few minutes.
BENCH_SCALES: dict[str, float] = {
    "moreno-health": 0.05,
    "dbpedia": 0.01,
    "snap-er": 0.006,
    "snap-ff": 0.01,
}

#: The maximum path length used by the accuracy benchmarks.
BENCH_MAX_LENGTH = 3


@pytest.fixture(scope="session")
def bench_graphs():
    """All four dataset stand-ins at benchmark scale, keyed by name."""
    return {
        name: load_dataset(name, scale=BENCH_SCALES[name])
        for name in available_datasets()
    }


@pytest.fixture(scope="session")
def bench_catalogs(bench_graphs):
    """k=3 selectivity catalogs of every benchmark dataset, keyed by name."""
    return {
        name: SelectivityCatalog.from_graph(graph, BENCH_MAX_LENGTH)
        for name, graph in bench_graphs.items()
    }


@pytest.fixture(scope="session")
def moreno_catalog(bench_catalogs):
    """The Moreno Health stand-in's catalog (the paper's primary dataset)."""
    return bench_catalogs["moreno-health"]
