"""Benchmark: Table 4 — average estimation latency per ordering method.

The paper's finding: estimation latency per query is small, shrinks slightly
with fewer buckets, and the sum-based ordering pays an extra (un)ranking cost
(~20 % in the paper's Java implementation; larger in pure Python, see
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.table4 import default_bucket_counts, run_table4


def test_table4_estimation_latency(benchmark, moreno_catalog):
    bucket_counts = default_bucket_counts(moreno_catalog.domain_size, steps=5)
    result = benchmark.pedantic(
        run_table4,
        kwargs={
            "catalog": moreno_catalog,
            "bucket_counts": bucket_counts,
            "workload_size": 400,
            "repetitions": 3,
        },
        rounds=1,
        iterations=1,
    )
    print("\nTable 4 — average estimation time per query (ms)")
    print(result.render())
    slowdown = result.slowdown_of("sum-based", "num-alph")
    print(f"\nsum-based slowdown vs num-alph: {slowdown:.2f}x (paper: ~1.2x)")
    assert slowdown > 1.0
    assert all(r.mean_estimation_ms > 0 for r in result.results)
