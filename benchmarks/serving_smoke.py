#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve`` (used by the CI serving job).

Starts the real CLI server as a subprocess on an ephemeral port, fires 100
mixed requests through the stdlib client — single-path estimates, multi-path
bundles, warm/evict management calls, plus deliberate error cases — and
asserts the ``/stats`` counters reflect the traffic (all requests served,
coalescing active, backpressure/error accounting sane).  Also asserts the
pre-v1 unversioned routes are gone — they answer the 404 envelope pointing
at the ``/v1`` spelling — and that non-2xx responses carry the uniform
error envelope.  Exits non-zero on
any failed expectation, so a broken serving path fails the job even when
the unit suite is green.

Usage::

    python benchmarks/serving_smoke.py [--port 18734]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Total mixed requests the smoke fires (the CI contract: 100).
REQUEST_COUNT = 100


def wait_for_server(client, deadline_seconds: float = 30.0) -> None:
    from repro.exceptions import ServingError

    deadline = time.perf_counter() + deadline_seconds
    while True:
        try:
            client.healthz()
            return
        except ServingError:
            if time.perf_counter() > deadline:
                raise
            time.sleep(0.2)


def main(argv: list[str] | None = None) -> int:
    """Entry point: readable one-line failures, never a traceback.

    Floor/expectation failures print as ``smoke FAILURE: ...`` the moment
    they happen; unexpected errors (server died, connection refused, ...)
    are caught in :func:`_run` and reported the same way, so the CI log
    always leads with *what* failed rather than a stack trace.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=18734)
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"smoke FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.exceptions import ServingError
    from repro.serving import ServiceClient

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)
            print(f"smoke FAILURE: {message}", file=sys.stderr)

    with tempfile.TemporaryDirectory() as tmp:
        graph_path = Path(tmp) / "graph.tsv"
        generate = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "generate",
                "moreno-health",
                "--scale",
                "0.02",
                "--seed",
                "5",
                "-o",
                str(graph_path),
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        if generate.returncode != 0:
            print("smoke FAILURE: could not generate the graph", file=sys.stderr)
            return 1

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--graph",
                f"moreno={graph_path}",
                "--port",
                str(args.port),
                "-k",
                "2",
                "--buckets",
                "16",
                "--cache-dir",
                str(Path(tmp) / "cache"),
                # One worker process: the /stats assertions below expect a
                # single server to have seen every request.
                "--workers",
                "1",
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{args.port}", timeout=60.0)
            wait_for_server(client)

            build = client.warm("moreno")
            check(build["domain_size"] > 0, "warm returned an empty domain")

            rows = client.graphs()
            check(
                rows and rows[0]["name"] == "moreno" and rows[0]["built"],
                f"unexpected /graphs rows: {rows}",
            )

            # 100 mixed requests: alternating single-path estimates, 8-path
            # bundles, the occasional management call and expected errors.
            rng = np.random.default_rng(11)
            paths = ["1", "2", "1/2", "2/1", "2/2", "1/1"]
            reference = {path: None for path in paths}
            ok_estimates = 0
            for index in range(REQUEST_COUNT):
                kind = index % 10
                if kind == 7:
                    client.evict("moreno")
                elif kind == 8:
                    client.warm("moreno")
                elif kind == 9:
                    try:
                        client.estimate("moreno", ["99/98"])
                        check(False, "invalid path did not raise")
                    except ServingError as exc:
                        check("400" in str(exc), f"wrong error for bad path: {exc}")
                elif kind % 2 == 0:
                    path = paths[int(rng.integers(0, len(paths)))]
                    value = client.estimate("moreno", [path])[0]
                    if reference[path] is None:
                        reference[path] = value
                    check(
                        value == reference[path],
                        f"estimate for {path} changed across requests",
                    )
                    ok_estimates += 1
                else:
                    bundle = [
                        paths[int(i)] for i in rng.integers(0, len(paths), 8)
                    ]
                    values = client.estimate("moreno", bundle)
                    check(len(values) == 8, "bundle answer has wrong arity")
                    ok_estimates += 1
            # 7 of every 10 requests are estimates (4 singles + 3 bundles).
            check(ok_estimates >= 70, f"only {ok_estimates} estimates succeeded")

            try:
                client.estimate("missing", ["1"])
                check(False, "unknown graph did not raise")
            except ServingError as exc:
                check("404" in str(exc), f"wrong error for unknown graph: {exc}")

            # Incremental update: push a small edge delta through /update and
            # make sure the swapped session keeps serving.
            update_row = client.update(
                "moreno", add=[["smoke-u", "1", "smoke-v"], ["smoke-v", "2", "smoke-u"]]
            )
            check(update_row["built"] is True, f"update did not swap: {update_row}")
            check(
                update_row.get("additions") == 2,
                f"update miscounted additions: {update_row}",
            )
            after = client.estimate("moreno", ["1", "2"])
            check(len(after) == 2, "estimates unavailable after /update")

            stats = client.stats()
            scheduler = stats["scheduler"]
            registry = stats["registry"]
            check(
                scheduler["requests_total"] >= ok_estimates,
                f"stats lost requests: {scheduler['requests_total']} < {ok_estimates}",
            )
            check(
                scheduler["batch_paths_total"] >= ok_estimates,
                "stats lost paths",
            )
            check(scheduler["batches_total"] >= 1, "no batches recorded")
            check(
                scheduler["errors_total"] >= 1, "error accounting never fired"
            )
            check(registry["builds"] >= 1, "registry recorded no builds")
            check(registry["evictions"] >= 1, "registry recorded no evictions")
            check(registry["updates"] >= 1, "registry recorded no updates")
            check(
                registry["sessions_resident"] >= 1, "no resident session after traffic"
            )

            # The pre-v1 unversioned aliases are removed: they must answer
            # the 404 envelope pointing at the /v1 spelling (and nothing
            # else), so a straggler client gets an actionable error.
            import http.client
            import json as json_module

            conn = http.client.HTTPConnection("127.0.0.1", args.port, timeout=30)
            try:
                for method, route, body in (
                    ("GET", "/stats", None),
                    ("GET", "/graphs", None),
                    (
                        "POST",
                        "/estimate",
                        json_module.dumps({"graph": "moreno", "paths": ["1"]}),
                    ),
                ):
                    conn.request(
                        method,
                        route,
                        body=body,
                        headers={"Content-Type": "application/json"}
                        if body
                        else {},
                    )
                    response = conn.getresponse()
                    alias_envelope = json_module.loads(
                        response.read().decode("utf-8")
                    )
                    check(
                        response.status == 404,
                        f"removed alias {route} answered {response.status}, "
                        "expected 404",
                    )
                    check(
                        f"/v1{route}" in alias_envelope.get("error", ""),
                        f"alias {route} 404 does not point at /v1{route}: "
                        f"{alias_envelope}",
                    )
                conn.request("GET", "/v1/definitely-not-a-route")
                response = conn.getresponse()
                envelope = json_module.loads(response.read().decode("utf-8"))
                check(response.status == 404, "unknown route was not a 404")
                check(
                    set(envelope)
                    >= {"error", "code", "retry_after", "request_id"},
                    f"error envelope incomplete: {envelope}",
                )
            finally:
                conn.close()

            if not failures:
                print(
                    f"smoke ok: {scheduler['requests_total']} requests in "
                    f"{scheduler['batches_total']} batches, "
                    f"{registry['builds']} builds, "
                    f"{registry['evictions']} evictions"
                )
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                server.kill()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
