"""Benchmarks: the concurrent estimation service.

Tracks the serving layer's claims: (1) the micro-batching scheduler turns
many concurrent small requests into few large ``estimate_batch`` calls and
beats the naive per-path ``estimate`` loop by multiples at 32 concurrent
clients (``run_all.py`` measures this directly and enforces the ≥ 5x floor);
(2) the registry's single-flight lock makes a warm lookup essentially free;
(3) the vectorised ``Ordering.index_array`` builds the engine's position
table far faster than the per-path scalar loop.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.paths.enumeration import enumerate_label_paths
from repro.serving import EstimateScheduler, SessionRegistry

SERVING_CONFIG = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)

#: Concurrent clients / paths per request for the coalescing benchmarks.
CLIENT_COUNT = 32
BUNDLE_SIZE = 32
ROUNDS_PER_CLIENT = 4


@pytest.fixture(scope="module")
def serving_registry(bench_graphs) -> SessionRegistry:
    """A registry over the Moreno stand-in with its session pre-built."""
    registry = SessionRegistry(default_config=SERVING_CONFIG)
    registry.register("moreno", graph=bench_graphs["moreno-health"])
    registry.get("moreno")
    return registry


@pytest.fixture(scope="module")
def client_workloads(serving_registry) -> list[list[list[str]]]:
    """Per-client request bundles sampled from the full domain."""
    session = serving_registry.get("moreno")
    domain = [
        str(path)
        for path in enumerate_label_paths(
            session.catalog.labels, SERVING_CONFIG.max_length
        )
    ]
    rng = np.random.default_rng(7)
    return [
        [
            [domain[i] for i in rng.integers(0, len(domain), BUNDLE_SIZE)]
            for _ in range(ROUNDS_PER_CLIENT)
        ]
        for _ in range(CLIENT_COUNT)
    ]


def _run_clients(target, workloads) -> None:
    threads = [
        threading.Thread(target=target, args=(workload,)) for workload in workloads
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_naive_per_path_loop_32_clients(benchmark, serving_registry, client_workloads):
    """32 threads looping one ``estimate`` call per path (the status quo)."""
    session = serving_registry.get("moreno")

    def client(rounds):
        estimate = session.estimate
        for bundle in rounds:
            for path in bundle:
                estimate(path)

    benchmark(_run_clients, client, client_workloads)


def test_coalesced_scheduler_32_clients(benchmark, serving_registry, client_workloads):
    """The same traffic through the micro-batching scheduler."""

    def run() -> None:
        with EstimateScheduler(serving_registry, max_batch_paths=2048) as scheduler:

            def client(rounds):
                for bundle in rounds:
                    scheduler.submit_many("moreno", bundle).result()

            _run_clients(client, client_workloads)

    benchmark(run)


def test_scheduler_results_match_direct_batch(serving_registry, client_workloads):
    session = serving_registry.get("moreno")
    bundle = client_workloads[0][0]
    with EstimateScheduler(serving_registry, window_seconds=0.0) as scheduler:
        got = scheduler.submit_many("moreno", bundle).result(timeout=30)
    assert np.allclose(got, session.estimate_batch(bundle))


def test_warm_registry_lookup(benchmark, serving_registry):
    """A hot ``registry.get`` is a dict lookup + LRU bump, nothing more."""
    benchmark(serving_registry.get, "moreno")


def test_position_table_vectorised(benchmark, serving_registry):
    """``index_array()`` over the whole domain (the engine's position table)."""
    ordering = serving_registry.get("moreno").ordering
    positions = benchmark(ordering.index_array)
    assert positions.shape == (ordering.size,)


def test_position_table_scalar_loop(benchmark, serving_registry):
    """The pre-vectorisation per-path loop, kept as the comparison baseline."""
    session = serving_registry.get("moreno")
    ordering = session.ordering
    labels = sorted(session.catalog.labels)

    def scalar() -> np.ndarray:
        return np.fromiter(
            (
                ordering.index(path)
                for path in enumerate_label_paths(labels, ordering.max_length)
            ),
            dtype=np.int64,
            count=ordering.size,
        )

    positions = benchmark(scalar)
    assert positions.shape == (ordering.size,)
