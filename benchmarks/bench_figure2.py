"""Benchmark: Figure 2 — mean estimation error per ordering method.

Regenerates every panel (dataset × k) of the paper's Figure 2 at benchmark
scale and prints the β × method error matrices.  The shape assertions encode
the paper's findings: sum-based wins overall, and errors fall as β grows.
"""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2
from repro.ordering.registry import PAPER_ORDERINGS

BUCKET_FRACTIONS = (0.02, 0.05, 0.15)
MAX_LENGTHS = (2, 3)


def test_figure2_accuracy_sweep(benchmark, bench_catalogs):
    result = benchmark.pedantic(
        run_figure2,
        kwargs={
            "datasets": tuple(bench_catalogs),
            "max_lengths": MAX_LENGTHS,
            "bucket_fractions": BUCKET_FRACTIONS,
            "catalogs": bench_catalogs,
        },
        rounds=1,
        iterations=1,
    )
    for dataset in bench_catalogs:
        for max_length in MAX_LENGTHS:
            print(f"\nFigure 2 panel — {dataset}, k={max_length} (mean error rate)")
            print(result.render(dataset, max_length))

    print("\nMean error per method across every panel:")
    overall = result.mean_error_by_method()
    for method in PAPER_ORDERINGS:
        print(f"  {method:10s} {overall[method]:.4f}")

    # Headline finding: sum-based has the lowest average error overall.
    others = [value for method, value in overall.items() if method != "sum-based"]
    assert overall["sum-based"] <= min(others) + 1e-9
    # And the synthetic datasets show a clear (>= 5 %) relative improvement
    # over the native ordering, mirroring the paper's "far superior" claim.
    for synthetic in ("snap-er", "snap-ff"):
        per_dataset = result.mean_error_by_method(synthetic)
        assert per_dataset["sum-based"] <= per_dataset["num-alph"]
