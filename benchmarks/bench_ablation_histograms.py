"""Benchmark: Ablation A — histogram type under a fixed ordering."""

from __future__ import annotations

from repro.experiments.ablation_histograms import run_histogram_ablation
from repro.experiments.reporting import format_records
from repro.histogram.builder import HISTOGRAM_KINDS


def test_histogram_type_ablation(benchmark, moreno_catalog):
    result = benchmark.pedantic(
        run_histogram_ablation,
        kwargs={
            "catalog": moreno_catalog,
            "bucket_counts": (8, 32, 128),
            "methods": ("num-alph", "sum-based"),
        },
        rounds=1,
        iterations=1,
    )
    print("\nAblation A — mean error rate per (ordering, histogram kind, β)")
    print(format_records(result.records))
    print("\nMean error per histogram kind:")
    for method in ("num-alph", "sum-based"):
        for kind in sorted(HISTOGRAM_KINDS):
            print(f"  {method:10s} {kind:12s} {result.mean_error(method, kind):.4f}")
    # V-optimal is never worse than equi-width under either ordering.
    for method in ("num-alph", "sum-based"):
        assert result.mean_error(method, "v-optimal") <= result.mean_error(
            method, "equi-width"
        ) + 1e-9
