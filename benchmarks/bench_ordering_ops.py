"""Micro-benchmarks: the (un)ranking operations underlying Table 4.

Table 4's latency differences come entirely from the cost of
``Ordering.index`` (ranking a query path into the histogram domain).  These
micro-benchmarks time ``index`` and ``path`` for every ordering method
directly, which makes the source of the sum-based overhead visible without
the histogram lookup noise.
"""

from __future__ import annotations

import pytest

from repro.estimation.workload import sampled_workload
from repro.ordering.registry import PAPER_ORDERINGS, make_ordering

BUCKETED_METHODS = list(PAPER_ORDERINGS)


@pytest.mark.parametrize("method", BUCKETED_METHODS)
def test_index_latency(benchmark, moreno_catalog, method):
    ordering = make_ordering(method, catalog=moreno_catalog)
    workload = sampled_workload(moreno_catalog, 256, seed=1)

    def rank_all():
        total = 0
        for path in workload:
            total += ordering.index(path)
        return total

    checksum = benchmark(rank_all)
    assert checksum >= 0


@pytest.mark.parametrize("method", BUCKETED_METHODS)
def test_unrank_latency(benchmark, moreno_catalog, method):
    ordering = make_ordering(method, catalog=moreno_catalog)
    indices = list(range(0, ordering.size, max(1, ordering.size // 256)))

    def unrank_all():
        lengths = 0
        for index in indices:
            lengths += ordering.path(index).length
        return lengths

    checksum = benchmark(unrank_all)
    assert checksum > 0


def test_estimator_point_query_latency(benchmark, moreno_catalog):
    """End-to-end point-query latency of the sum-based estimator (ms scale)."""
    from repro.estimation.estimator import PathSelectivityEstimator

    estimator = PathSelectivityEstimator.build(
        moreno_catalog, ordering="sum-based", bucket_count=64
    )
    workload = sampled_workload(moreno_catalog, 256, seed=3)

    def estimate_all():
        return sum(estimator.estimate(path) for path in workload)

    total = benchmark(estimate_all)
    assert total >= 0.0
