#!/usr/bin/env python
"""Run every ``bench_*.py`` and emit one machine-readable JSON.

The script is the repo's benchmark-regression entry point: it executes the
whole pytest-benchmark suite in one invocation (so the session-scoped graph
and catalog fixtures are built once), then measures the engine's two
headline numbers directly — batch-vs-loop speedup on a ≥ 10k-path workload
and cold-vs-warm session build — and writes everything to a single JSON
document whose filename convention (``BENCH_engine.json``) accumulates the
perf trajectory over PRs.

Usage::

    python benchmarks/run_all.py --quick --json BENCH_engine.json

``--quick`` trims pytest-benchmark to one round per benchmark; the full run
uses the calibrated defaults.  Exit code is non-zero when the pytest run
fails or the engine acceptance numbers regress (speedup < 10×, warm build
rebuilding the catalog).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Allow running straight from a checkout without installing the package.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Workload size for the direct batch-vs-loop measurement.
BATCH_SIZE = 10_000

#: Acceptance floor for the batch speedup (see ISSUE/ROADMAP).
SPEEDUP_FLOOR = 10.0

QUICK_FLAGS = [
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.1",
    "--benchmark-warmup=off",
]


def discover_bench_files() -> list[Path]:
    """All ``bench_*.py`` files, sorted by name."""
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_pytest_suite(quick: bool) -> dict[str, object]:
    """Run the whole benchmark suite once; return wall time + per-bench stats."""
    bench_files = discover_bench_files()
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest-benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *[str(path) for path in bench_files],
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={json_path}",
        ]
        if quick:
            command.extend(QUICK_FLAGS)
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        started = time.perf_counter()
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        wall_seconds = time.perf_counter() - started
        benchmarks: list[dict[str, object]] = []
        if json_path.exists():
            document = json.loads(json_path.read_text(encoding="utf-8"))
            for entry in document.get("benchmarks", []):
                stats = entry.get("stats", {})
                benchmarks.append(
                    {
                        "file": str(entry.get("fullname", "")).split("::")[0],
                        "name": entry.get("name"),
                        "group": entry.get("group"),
                        "mean_seconds": stats.get("mean"),
                        "stddev_seconds": stats.get("stddev"),
                        "min_seconds": stats.get("min"),
                        "rounds": stats.get("rounds"),
                    }
                )
    return {
        "exit_code": completed.returncode,
        "wall_seconds": wall_seconds,
        "files": [path.name for path in bench_files],
        "benchmarks": benchmarks,
    }


def measure_engine(quick: bool) -> dict[str, object]:
    """Directly measure the engine acceptance numbers.

    Returns batch-vs-loop timings on a ``BATCH_SIZE``-path workload and
    cold/warm session-build timings against a throwaway artifact cache.
    """
    import numpy as np

    from repro.datasets.registry import load_dataset
    from repro.engine import EngineConfig, EstimationSession
    from repro.paths.enumeration import enumerate_label_paths

    scale = 0.03 if quick else 0.05
    graph = load_dataset("moreno-health", scale=scale, seed=11)
    config = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)

    with tempfile.TemporaryDirectory() as cache_dir:
        started = time.perf_counter()
        cold = EstimationSession.build(graph, config, cache_dir=cache_dir, workers=4)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = EstimationSession.build(graph, config, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - started

        domain = [
            str(path)
            for path in enumerate_label_paths(
                cold.catalog.labels, config.max_length
            )
        ]
        rng = np.random.default_rng(7)
        workload = [domain[i] for i in rng.integers(0, len(domain), BATCH_SIZE)]

        # Warm both paths once so neither pays one-time lazy costs in the
        # timed region, then time each over identical inputs.
        cold.estimate_batch(workload[:64])
        [cold.estimate(path) for path in workload[:64]]

        started = time.perf_counter()
        batch = cold.estimate_batch(workload)
        batch_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loop = [cold.estimate(path) for path in workload]
        loop_seconds = time.perf_counter() - started

        parity = bool(np.allclose(batch, np.asarray(loop)))
        speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")

        return {
            "dataset": "moreno-health",
            "scale": scale,
            "domain_size": cold.domain_size,
            "batch_paths": BATCH_SIZE,
            "batch_seconds": batch_seconds,
            "loop_seconds": loop_seconds,
            "batch_speedup": speedup,
            "batch_speedup_floor": SPEEDUP_FLOOR,
            "batch_matches_loop": parity,
            "cold_build_seconds": cold_seconds,
            "warm_build_seconds": warm_seconds,
            "cold_catalog_seconds": cold.stats.catalog_seconds,
            "warm_catalog_seconds": warm.stats.catalog_seconds,
            "warm_catalog_from_cache": warm.stats.catalog_from_cache,
            "warm_histogram_from_cache": warm.stats.histogram_from_cache,
            "warm_positions_from_cache": warm.stats.positions_from_cache,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-round benchmarks and a smaller engine graph (CI smoke mode)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the pytest-benchmark suite, emit only the engine numbers",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    suite = None if args.skip_suite else run_pytest_suite(args.quick)
    engine = measure_engine(args.quick)
    total_seconds = time.perf_counter() - started

    document = {
        "schema": "repro-bench/v1",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "generated_unix": time.time(),
        "total_wall_seconds": total_seconds,
        "engine": engine,
    }
    if suite is not None:
        document["suite"] = suite

    output = Path(args.json)
    output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    ok = engine["batch_matches_loop"] and engine["batch_speedup"] >= SPEEDUP_FLOOR
    ok = ok and engine["warm_catalog_from_cache"]
    if suite is not None:
        ok = ok and suite["exit_code"] == 0
    print(
        f"wrote {output} — batch speedup {engine['batch_speedup']:.1f}x "
        f"on {engine['batch_paths']} paths, warm catalog from cache: "
        f"{engine['warm_catalog_from_cache']}, total {total_seconds:.1f}s"
    )
    if not ok:
        print("benchmark regression: acceptance thresholds not met", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
