#!/usr/bin/env python
"""Run every ``bench_*.py`` and emit one machine-readable JSON.

The script is the repo's benchmark-regression entry point: it executes the
whole pytest-benchmark suite in one invocation (so the session-scoped graph
and catalog fixtures are built once), then measures the headline numbers
directly — batch-vs-loop speedup on a ≥ 10k-path workload, cold-vs-warm
session build, the columnar catalog numbers (cold-build wall time,
columnar-vs-dict build speedup, process-vs-serial build speedup at
``|L| ≥ 6, k ≥ 4``, npz-vs-JSON artifact size), the serving layer's
numbers (coalesced-vs-naive throughput at 32 concurrent clients plus the
single-flight build guarantee), and the incremental-update numbers
(delta-patched rebuild vs cold rebuild on a schema-structured graph) — and
writes everything to a single JSON document whose filename convention
(``BENCH_engine.json``) accumulates the perf trajectory over PRs.

Usage::

    python benchmarks/run_all.py --quick --json BENCH_engine.json

``--quick`` trims pytest-benchmark to one round per benchmark; the full run
uses the calibrated defaults.  Exit code is non-zero when the pytest run
fails or the acceptance numbers regress: batch speedup < 10×, warm build
rebuilding the catalog, columnar build < 3× over the dict builder, npz
artifact > 25% of the JSON size, (on machines with ≥ 2 cores) process
build < 1.5× over serial, coalesced serving throughput < 5× the naive
per-path loop at 32 concurrent clients, more than one build under
concurrent first access to one graph, an incremental delta rebuild
< 5× the cold rebuild when ≤ 10% of first-label subtrees are touched,
or any sparse-catalog floor: sparse build < 2× the dense build on the
|L|=20, k=6 graph (67M-entry dense domain), the ``backend="matrix"``
build < 2× the sparse DFS build (or its nonzero streams not byte-identical
to it), sparse npz artifact > 5% of the dense npz at ≤ 1% density, sparse
histogram boundaries diverging from the dense build, ``repro serve``
exceeding 1 GiB peak RSS on that domain, or any chaos floor: availability
under fault injection < 99%, a hung request thread, a worker crash or
corrupt artifact that is not transparently healed, an open circuit
answering in ≥ 10 ms, or any serving-load floor: (on ≥ 4-core machines)
the pre-fork tier < 2× single-process QPS or p99 > 1.5× under 32
keep-alive clients, or each extra mmap worker costing > 25% of a private
catalog copy, or any remote-tier floor: a fresh replica warm-starting from
the shared artifact store < 10× faster than rebuilding, its estimates
diverging from the cold build, availability < 99% with the store down or
corrupting payloads, a corrupt payload escaping quarantine, the remote
circuit breaker never opening (or answering an open-circuit fetch in
≥ 10 ms), or a ``.tmp`` file left behind.  Floor failures are printed
*first*, one readable line each, and never as tracebacks — CI logs lead
with the failing floor.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# Allow running straight from a checkout without installing the package.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

# The serve-RSS measurement shares its workload spec and ceiling with the
# smoke script, so the recorded build/artifact numbers and the measured RSS
# always describe the same graph.
import sparse_smoke  # noqa: E402

# The chaos section runs the fault-injection scenario in-process and shares
# its availability/fast-fail floors with the standalone CI chaos job.
import chaos_smoke  # noqa: E402

# The obs section runs the observability scenario in-process (metrics,
# traces, readiness) and adds the instrumentation-overhead floor on top.
import obs_smoke  # noqa: E402

# The load section drives the real ``repro serve`` CLI over keep-alive
# connections, once single-process and once pre-forked, and shares its
# throughput/memory floors with the standalone CI load-smoke job.
import bench_load  # noqa: E402

# The remote section exercises the shared artifact store (warm-start value,
# corrupt-payload quarantine, outage degradation) and shares its floors
# with the standalone CI remote-smoke job.
import bench_remote  # noqa: E402

#: Workload size for the direct batch-vs-loop measurement.
BATCH_SIZE = 10_000

#: Acceptance floor for the batch speedup (see ISSUE/ROADMAP).
SPEEDUP_FLOOR = 10.0

#: Acceptance floor for the columnar builder over the dict builder (cold).
COLUMNAR_SPEEDUP_FLOOR = 3.0

#: Acceptance floor for the process backend over the serial build.  Only
#: enforced when the machine has at least this many cores — a single-core
#: runner cannot demonstrate parallel speedup.
PROCESS_SPEEDUP_FLOOR = 1.5
PROCESS_FLOOR_MIN_CPUS = 2

#: Acceptance ceiling for the npz catalog artifact relative to legacy JSON.
NPZ_SIZE_RATIO_CEILING = 0.25

#: Acceptance floor for the micro-batching scheduler over the naive
#: per-path estimate loop at SERVING_CLIENTS concurrent clients.
SERVING_SPEEDUP_FLOOR = 5.0
SERVING_CLIENTS = 32
SERVING_BUNDLE = 32

#: Acceptance floor for an incremental delta rebuild over a cold rebuild
#: when the delta touches at most DELTA_SUBTREE_FRACTION of the first-label
#: subtrees (the ISSUE's ≤ 10% regime).
DELTA_SPEEDUP_FLOOR = 5.0
DELTA_SUBTREE_FRACTION = 0.10
DELTA_EDGES = 100

#: Acceptance floor for the sparse catalog build over the dense columnar
#: build on the |L|=20, k=6 graph (67M-entry dense domain, ~1e-6 density).
SPARSE_BUILD_SPEEDUP_FLOOR = 2.0

#: Acceptance floor for the matrix-chain backend (``backend="matrix"``)
#: over the sparse DFS build on the same |L|=20, k=6 graph.  The kernel
#: batches all live prefixes of a level into one stacked CSR product
#: (k·|L| scipy calls instead of one per trie node), so it measures well
#: clear of this floor (~8-11x locally); 2x is the enforced minimum.
MATRIX_BUILD_SPEEDUP_FLOOR = 2.0

#: Acceptance ceiling for the sparse npz artifact relative to the dense npz
#: of the same catalog.  Only meaningful at low density (deflate compresses
#: zero runs extremely well), so the workload is additionally asserted to
#: sit at or below this nonzero density.  (Distinct from the *storage
#: heuristic* ceiling ``repro.paths.catalog.SPARSE_DENSITY_CEILING``.)
SPARSE_ARTIFACT_RATIO_CEILING = 0.05
SPARSE_ARTIFACT_DENSITY_CEILING = 0.01

#: Peak-RSS ceiling for serving the 67M-domain graph through ``repro
#: serve`` — shared with benchmarks/sparse_smoke.py, which measures it in a
#: subprocess and enforces the same bound itself.
SPARSE_SERVE_RSS_CEILING_BYTES = sparse_smoke.RSS_CEILING_BYTES

#: Inner timeout for the sparse_smoke subprocess.  Deliberately below the
#: CI step wrappers so a wedged smoke still surfaces as a one-line floor
#: failure from run_all rather than an opaque outer SIGTERM.
SPARSE_SMOKE_TIMEOUT_SECONDS = 240

#: Availability floor for the chaos scenario (fraction of requests that get
#: a clean answer while faults are being injected) and the ceiling for
#: answering a request against an open circuit — shared with the smoke.
CHAOS_AVAILABILITY_FLOOR = chaos_smoke.AVAILABILITY_FLOOR
CHAOS_FAST_FAIL_CEILING_SECONDS = chaos_smoke.FAST_FAIL_CEILING_SECONDS

#: Floors for the remote artifact tier — a fresh replica must warm-start
#: this much faster than rebuilding, builds must survive a dead/corrupting
#: store, and an open remote breaker must answer under the ceiling.
#: Shared with benchmarks/bench_remote.py, which enforces them standalone.
REMOTE_WARM_SPEEDUP_FLOOR = bench_remote.WARM_SPEEDUP_FLOOR
REMOTE_AVAILABILITY_FLOOR = bench_remote.AVAILABILITY_FLOOR
REMOTE_FAST_FAIL_CEILING_SECONDS = bench_remote.FAST_FAIL_CEILING_SECONDS

#: Acceptance floor for serving throughput with the full observability
#: stack on (metrics + per-request traces) relative to the kill-switched
#: baseline: instrumentation may cost at most 5% of throughput.
OBS_OVERHEAD_RATIO_FLOOR = 0.95


class FloorFailure(AssertionError):
    """A benchmark invariant failed; rendered as one readable line, not a
    traceback, so CI logs lead with the failing floor."""

QUICK_FLAGS = [
    "--benchmark-min-rounds=1",
    "--benchmark-max-time=0.1",
    "--benchmark-warmup=off",
]


def discover_bench_files() -> list[Path]:
    """All ``bench_*.py`` files, sorted by name."""
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_pytest_suite(quick: bool) -> dict[str, object]:
    """Run the whole benchmark suite once; return wall time + per-bench stats."""
    bench_files = discover_bench_files()
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "pytest-benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *[str(path) for path in bench_files],
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={json_path}",
        ]
        if quick:
            command.extend(QUICK_FLAGS)
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        started = time.perf_counter()
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        wall_seconds = time.perf_counter() - started
        benchmarks: list[dict[str, object]] = []
        if json_path.exists():
            document = json.loads(json_path.read_text(encoding="utf-8"))
            for entry in document.get("benchmarks", []):
                stats = entry.get("stats", {})
                benchmarks.append(
                    {
                        "file": str(entry.get("fullname", "")).split("::")[0],
                        "name": entry.get("name"),
                        "group": entry.get("group"),
                        "mean_seconds": stats.get("mean"),
                        "stddev_seconds": stats.get("stddev"),
                        "min_seconds": stats.get("min"),
                        "rounds": stats.get("rounds"),
                    }
                )
    return {
        "exit_code": completed.returncode,
        "wall_seconds": wall_seconds,
        "files": [path.name for path in bench_files],
        "benchmarks": benchmarks,
    }


def measure_engine(quick: bool) -> dict[str, object]:
    """Directly measure the engine acceptance numbers.

    Returns batch-vs-loop timings on a ``BATCH_SIZE``-path workload and
    cold/warm session-build timings against a throwaway artifact cache.
    """
    import numpy as np

    from repro.datasets.registry import load_dataset
    from repro.engine import EngineConfig, EstimationSession
    from repro.paths.enumeration import enumerate_label_paths

    scale = 0.03 if quick else 0.05
    graph = load_dataset("moreno-health", scale=scale, seed=11)
    config = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)

    with tempfile.TemporaryDirectory() as cache_dir:
        started = time.perf_counter()
        cold = EstimationSession.build(graph, config, cache_dir=cache_dir, workers=4)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = EstimationSession.build(graph, config, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - started

        domain = [
            str(path)
            for path in enumerate_label_paths(
                cold.catalog.labels, config.max_length
            )
        ]
        rng = np.random.default_rng(7)
        workload = [domain[i] for i in rng.integers(0, len(domain), BATCH_SIZE)]

        # Warm both paths once so neither pays one-time lazy costs in the
        # timed region, then time each over identical inputs.
        cold.estimate_batch(workload[:64])
        [cold.estimate(path) for path in workload[:64]]

        started = time.perf_counter()
        batch = cold.estimate_batch(workload)
        batch_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loop = [cold.estimate(path) for path in workload]
        loop_seconds = time.perf_counter() - started

        parity = bool(np.allclose(batch, np.asarray(loop)))
        speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")

        return {
            "dataset": "moreno-health",
            "scale": scale,
            "domain_size": cold.domain_size,
            "batch_paths": BATCH_SIZE,
            "batch_seconds": batch_seconds,
            "loop_seconds": loop_seconds,
            "batch_speedup": speedup,
            "batch_speedup_floor": SPEEDUP_FLOOR,
            "batch_matches_loop": parity,
            "cold_build_seconds": cold_seconds,
            "warm_build_seconds": warm_seconds,
            "cold_catalog_seconds": cold.stats.catalog_seconds,
            "warm_catalog_seconds": warm.stats.catalog_seconds,
            "warm_catalog_from_cache": warm.stats.catalog_from_cache,
            "warm_histogram_from_cache": warm.stats.histogram_from_cache,
            "warm_positions_from_cache": warm.stats.positions_from_cache,
        }


def measure_catalog(quick: bool) -> dict[str, object]:
    """Directly measure the columnar catalog acceptance numbers.

    Two generated graphs, both at the ISSUE scale ``|L| ≥ 6, k ≥ 4``:

    * a *sparse* one (``|L|=8, k=6``: a 300k-path domain dominated by zero
      subtrees) where the columnar builder's O(1) slice fills and the absence
      of per-path ``LabelPath``/dict work shows up — measured against the
      legacy dict builder;
    * a *dense* one (``|L|=6, k=4``) where sparse matmuls dominate — measured
      serial vs the process-sharded backend.

    Also records the npz-vs-JSON artifact size for the sparse graph's
    catalog.
    """
    import numpy as np

    from repro.graph.generators import erdos_renyi_graph, zipf_labeled_graph
    from repro.paths.catalog import SelectivityCatalog
    from repro.paths.enumeration import (
        compute_selectivities,
        compute_selectivity_vector,
    )

    cpu_count = os.cpu_count() or 1

    # --- columnar vs dict cold catalog build (sparse, zero-dominated) -----
    # Both sides are timed end-to-end to a finished SelectivityCatalog: that
    # is what "cold catalog build" means to a session, and it keeps the
    # comparison fair (the dict path pays mapping construction, the columnar
    # path pays the from_frequencies wrap).  Quick mode deliberately does
    # NOT shrink this graph: the 1.1M-path domain is what keeps the ratio
    # overhead-dominated (~8-10x measured), while a ~300k-path version
    # measured as low as 3.1x under full-suite load — too close to the 3x
    # floor for a hard CI gate.  The dict baseline costs the quick run a few
    # extra seconds; a flaky red gate would cost far more.
    sparse_graph = zipf_labeled_graph(500, 500, 10, skew=0.8, seed=17, name="bench-sparse")
    sparse_k = 6
    started = time.perf_counter()
    catalog = SelectivityCatalog.from_graph(sparse_graph, sparse_k)
    columnar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mapping = compute_selectivities(sparse_graph, sparse_k)
    dict_catalog = SelectivityCatalog(sparse_graph.labels(), sparse_k, mapping)
    dict_seconds = time.perf_counter() - started

    vector = catalog.frequency_vector()
    if not np.array_equal(vector, dict_catalog.frequency_vector()):
        raise FloorFailure("columnar and dict builders disagree")
    columnar_speedup = dict_seconds / columnar_seconds if columnar_seconds > 0 else float("inf")

    # --- npz vs JSON artifact size ---------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "catalog.json"
        npz_path = Path(tmp) / "catalog.npz"
        catalog.save(json_path)
        catalog.save_npz(npz_path)
        json_bytes = json_path.stat().st_size
        npz_bytes = npz_path.stat().st_size
    npz_ratio = npz_bytes / json_bytes if json_bytes else float("inf")

    # --- process vs serial (dense, matmul-dominated) ----------------------
    vertices, edges = (1600, 20000) if quick else (3000, 40000)
    dense_graph = erdos_renyi_graph(vertices, edges, 6, seed=23)
    dense_k = 4
    workers = min(cpu_count, dense_graph.label_count)
    started = time.perf_counter()
    serial_vector = compute_selectivity_vector(dense_graph, dense_k)
    serial_seconds = time.perf_counter() - started
    # With fewer than two workers the process backend would silently degrade
    # to serial; recording a serial-vs-serial ratio as "process speedup"
    # would poison the perf trajectory, so the measurement is skipped.
    process_floor_enforced = cpu_count >= PROCESS_FLOOR_MIN_CPUS and workers >= 2
    process_seconds: float | None = None
    process_speedup: float | None = None
    if workers >= 2:
        started = time.perf_counter()
        process_vector = compute_selectivity_vector(
            dense_graph, dense_k, backend="process", workers=workers
        )
        process_seconds = time.perf_counter() - started
        if not np.array_equal(serial_vector, process_vector):
            raise FloorFailure("process and serial builds disagree")
        process_speedup = (
            serial_seconds / process_seconds if process_seconds > 0 else float("inf")
        )

    return {
        "cpu_count": cpu_count,
        "sparse_graph": {
            "labels": sparse_graph.label_count,
            "max_length": sparse_k,
            "vertices": sparse_graph.vertex_count,
            "edges": sparse_graph.edge_count,
            "domain_size": int(vector.size),
            "nonzero_paths": int((vector > 0).sum()),
        },
        "cold_build_seconds": columnar_seconds,
        "dict_build_seconds": dict_seconds,
        "columnar_speedup": columnar_speedup,
        "columnar_speedup_floor": COLUMNAR_SPEEDUP_FLOOR,
        "artifact_json_bytes": json_bytes,
        "artifact_npz_bytes": npz_bytes,
        "artifact_npz_ratio": npz_ratio,
        "artifact_npz_ratio_ceiling": NPZ_SIZE_RATIO_CEILING,
        "dense_graph": {
            "labels": dense_graph.label_count,
            "max_length": dense_k,
            "vertices": vertices,
            "edges": dense_graph.edge_count,
        },
        "serial_build_seconds": serial_seconds,
        "process_build_seconds": process_seconds,
        "process_workers": workers,
        "process_speedup": process_speedup,
        "process_speedup_floor": PROCESS_SPEEDUP_FLOOR,
        "process_floor_enforced": process_floor_enforced,
    }


def measure_serving(quick: bool) -> dict[str, object]:
    """Directly measure the serving layer's acceptance numbers.

    Two measurements:

    * **Coalescing throughput** — ``SERVING_CLIENTS`` threads each stream
      requests of ``SERVING_BUNDLE`` paths (the shape of a query optimizer
      asking for all interval estimates of one plan search).  The *naive*
      side answers each path with one ``session.estimate`` call — the
      status-quo per-request loop; the *coalesced* side routes the same
      traffic through the micro-batching ``EstimateScheduler``.  The floor
      is ``SERVING_SPEEDUP_FLOOR``x on total path throughput.
    * **Single-flight builds** — ``SERVING_CLIENTS`` threads request one
      unbuilt graph simultaneously; the registry must run exactly one build.
    """
    import threading

    import numpy as np

    from repro.datasets.registry import load_dataset
    from repro.engine import EngineConfig
    from repro.paths.enumeration import enumerate_label_paths
    from repro.serving import EstimateScheduler, SessionRegistry

    scale = 0.03 if quick else 0.05
    # Enough rounds that the 32 threads' startup cost does not dominate the
    # coalesced side (it finishes ~7x sooner than the naive side).
    rounds = 16 if quick else 32
    graph = load_dataset("moreno-health", scale=scale, seed=11)
    config = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)

    registry = SessionRegistry(default_config=config)
    registry.register("moreno", graph=graph)
    session = registry.get("moreno")
    domain = [
        str(path)
        for path in enumerate_label_paths(session.catalog.labels, config.max_length)
    ]
    rng = np.random.default_rng(7)
    workloads = [
        [
            [domain[i] for i in rng.integers(0, len(domain), SERVING_BUNDLE)]
            for _ in range(rounds)
        ]
        for _ in range(SERVING_CLIENTS)
    ]
    total_paths = SERVING_CLIENTS * rounds * SERVING_BUNDLE

    def run_clients(client) -> float:
        threads = [
            threading.Thread(target=client, args=(workload,))
            for workload in workloads
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started

    def naive_client(rounds_for_client):
        estimate = session.estimate
        for bundle in rounds_for_client:
            for path in bundle:
                estimate(path)

    def measure_coalesced() -> tuple[float, dict[str, object]]:
        scheduler = EstimateScheduler(registry, max_batch_paths=2048)
        try:

            def client(rounds_for_client):
                for bundle in rounds_for_client:
                    scheduler.submit_many("moreno", bundle).result()

            seconds = run_clients(client)
            return seconds, scheduler.stats.snapshot()
        finally:
            scheduler.close()

    # Warm both hot paths, then keep the best of three (thread scheduling
    # noise at 32 threads is substantial).
    session.estimate_batch(domain[:64])
    [session.estimate(path) for path in domain[:64]]
    naive_seconds = min(run_clients(naive_client) for _ in range(3))
    coalesced_runs = [measure_coalesced() for _ in range(3)]
    coalesced_seconds = min(seconds for seconds, _ in coalesced_runs)
    scheduler_stats = min(coalesced_runs, key=lambda run: run[0])[1]

    # Parity: the scheduler must answer exactly what the session answers.
    probe = workloads[0][0]
    with EstimateScheduler(registry, window_seconds=0.0) as scheduler:
        served = scheduler.submit_many("moreno", probe).result(timeout=60)
    parity = bool(np.allclose(served, session.estimate_batch(probe)))

    # Single-flight: N concurrent first requests, exactly one build.
    flight_registry = SessionRegistry(default_config=config)
    flight_registry.register("moreno", graph=graph)
    barrier = threading.Barrier(SERVING_CLIENTS)

    def first_access():
        barrier.wait()
        flight_registry.get("moreno")

    threads = [
        threading.Thread(target=first_access) for _ in range(SERVING_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    speedup = (
        naive_seconds / coalesced_seconds if coalesced_seconds > 0 else float("inf")
    )
    return {
        "dataset": "moreno-health",
        "scale": scale,
        "clients": SERVING_CLIENTS,
        "bundle_paths": SERVING_BUNDLE,
        "total_paths": total_paths,
        "naive_seconds": naive_seconds,
        "coalesced_seconds": coalesced_seconds,
        "naive_paths_per_second": total_paths / naive_seconds,
        "coalesced_paths_per_second": total_paths / coalesced_seconds,
        "coalesced_speedup": speedup,
        "coalesced_speedup_floor": SERVING_SPEEDUP_FLOOR,
        "coalesced_matches_direct": parity,
        "mean_batch_paths": scheduler_stats["mean_batch_paths"],
        "mean_coalesced_requests": scheduler_stats["mean_coalesced_requests"],
        "batches_total": scheduler_stats["batches_total"],
        "single_flight_clients": SERVING_CLIENTS,
        "single_flight_builds": flight_registry.stats.builds,
        "single_flight_waits": flight_registry.stats.single_flight_waits,
    }


def measure_delta(quick: bool) -> dict[str, object]:
    """Directly measure the incremental-update acceptance numbers.

    The workload is a schema-structured ring graph (label ``i`` connects
    layer ``i`` to layer ``i + 1``, so labels compose only along the
    schema): a ``DELTA_EDGES``-edge delta on one label can affect at most
    ``k`` of the ``|L|`` first-label subtrees — the ISSUE's ≤ 10% regime.
    Both sides are measured to the same finished product (a full frequency
    vector for the post-delta graph): *cold* runs
    ``compute_selectivity_vector`` from scratch, *incremental* runs
    ``update_selectivity_vector`` against the pre-delta vector.  The floor
    is ``DELTA_SPEEDUP_FLOOR``× with byte-identical results.
    """
    import random

    import numpy as np

    from repro.graph.delta import GraphDelta, affected_first_labels
    from repro.graph.generators import ring_labeled_graph
    from repro.paths.enumeration import (
        compute_selectivity_vector,
        update_selectivity_vector,
    )

    # 40 labels, k=3: a one-label delta affects at most 3/40 = 7.5% of the
    # first-label subtrees, comfortably inside the ≤ 10% regime, and the
    # measured speedup (~8x) sits well clear of the 5x floor.
    label_count = 40
    layer_size = 200 if quick else 300
    edges_per_label = 1500 if quick else 3000
    max_length = 3
    rounds = 3

    graph = ring_labeled_graph(
        label_count, layer_size, edges_per_label, seed=17, name="bench-delta-ring"
    )
    old_vector = compute_selectivity_vector(graph, max_length)

    # A scripted delta on one mid-ring label: half removals of existing
    # edges, half additions between the label's layers.
    rng = random.Random(23)
    label = sorted(graph.labels())[label_count // 2]
    removals = rng.sample(list(graph.edges_with_label(label)), DELTA_EDGES // 2)
    layer = [str(i) for i in range(1, label_count + 1)].index(label)
    additions: set[tuple[int, str, int]] = set()
    while len(additions) < DELTA_EDGES - len(removals):
        source = layer * layer_size + rng.randrange(layer_size)
        target = ((layer + 1) % label_count) * layer_size + rng.randrange(layer_size)
        if not graph.has_edge(source, label, target):
            additions.add((source, label, target))
    delta = GraphDelta(additions=sorted(additions), removals=removals)
    updated = graph.copy()
    delta.apply(updated)

    affected = affected_first_labels(updated, delta, max_length)
    subtree_fraction = len(affected) / label_count
    if subtree_fraction > DELTA_SUBTREE_FRACTION:
        raise FloorFailure(
            f"delta workload touches {subtree_fraction:.0%} of first-label "
            f"subtrees (> {DELTA_SUBTREE_FRACTION:.0%}); the benchmark graph "
            "no longer localises deltas"
        )

    cold_seconds = float("inf")
    cold_vector = None
    for _ in range(rounds):
        started = time.perf_counter()
        cold_vector = compute_selectivity_vector(updated, max_length)
        cold_seconds = min(cold_seconds, time.perf_counter() - started)

    incremental_seconds = float("inf")
    patched = None
    for _ in range(rounds):
        started = time.perf_counter()
        patched = update_selectivity_vector(updated, max_length, old_vector, delta)
        incremental_seconds = min(
            incremental_seconds, time.perf_counter() - started
        )

    matches = bool(np.array_equal(cold_vector, patched))
    speedup = (
        cold_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf")
    )
    return {
        "graph": {
            "labels": label_count,
            "layer_size": layer_size,
            "edges": updated.edge_count,
            "max_length": max_length,
            "domain_size": int(old_vector.size),
        },
        "delta_edges": len(delta),
        "affected_subtrees": len(affected),
        "subtrees_total": label_count,
        "subtree_fraction": subtree_fraction,
        "subtree_fraction_ceiling": DELTA_SUBTREE_FRACTION,
        "cold_rebuild_seconds": cold_seconds,
        "incremental_seconds": incremental_seconds,
        "incremental_speedup": speedup,
        "incremental_speedup_floor": DELTA_SPEEDUP_FLOOR,
        "patched_matches_cold": matches,
    }


def measure_sparse(quick: bool) -> dict[str, object]:
    """Directly measure the sparse-catalog acceptance numbers.

    The workload is the ISSUE's dense-infeasible scenario: ``|L|=20, k=6``
    (a 67,368,420-entry dense domain) on a 400-edge graph whose nonzero
    path set is tiny.  Five things are measured:

    * **Build** — ``storage="sparse"`` (O(nnz) collection) vs
      ``storage="dense"`` (the columnar vector build) to a finished
      catalog, identical nonzeros required; floor
      ``SPARSE_BUILD_SPEEDUP_FLOOR``x.
    * **Matrix-chain build** — the same sparse catalog through
      ``backend="matrix"`` (stacked level-synchronous matrix products) vs
      the sparse DFS build, byte-identical nonzero streams required; floor
      ``MATRIX_BUILD_SPEEDUP_FLOOR``x.
    * **Artifact** — the sparse npz vs the dense npz of the same catalog;
      ceiling ``SPARSE_ARTIFACT_RATIO_CEILING`` at ≤
      ``SPARSE_DENSITY_CEILING`` density (deflate compresses zero runs
      well, so the ratio is only meaningful when zeros dominate).
    * **Histograms** — every histogram kind built from the sparse nonzero
      stream must place byte-identical bucket boundaries to the dense
      build.  Checked on the committed |L|=10, k=6 benchmark graph
      (1,111,110-entry domain) where the dense build is still cheap.
    * **Serving RSS** — ``benchmarks/sparse_smoke.py`` serves the 67M
      domain through the real ``repro serve`` CLI in a subprocess; its
      peak RSS must stay under ``SPARSE_SERVE_RSS_CEILING_BYTES``.

    ``quick`` deliberately does not shrink this workload: the floors are
    only meaningful at the dense-infeasible scale, and the whole
    measurement (dense build included) costs a few seconds.
    """
    del quick  # the ISSUE-scale workload *is* the measurement

    import numpy as np

    from repro.graph.generators import zipf_labeled_graph
    from repro.histogram import HISTOGRAM_KINDS, domain_frequencies
    from repro.ordering.registry import make_ordering
    from repro.paths.catalog import SelectivityCatalog

    # --- sparse vs dense cold build (|L|=20, k=6: 67M dense entries) ------
    spec = sparse_smoke.GRAPH_SPEC
    graph = zipf_labeled_graph(
        spec["vertices"],
        spec["edges"],
        spec["labels"],
        skew=spec["skew"],
        seed=spec["seed"],
        name="bench-sparse-20",
    )
    k = sparse_smoke.MAX_LENGTH
    started = time.perf_counter()
    sparse_catalog = SelectivityCatalog.from_graph(graph, k, storage="sparse")
    sparse_seconds = time.perf_counter() - started

    started = time.perf_counter()
    matrix_catalog = SelectivityCatalog.from_graph(
        graph, k, storage="sparse", backend="matrix"
    )
    matrix_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense_catalog = SelectivityCatalog.from_graph(graph, k, storage="dense")
    dense_seconds = time.perf_counter() - started

    sparse_indices, sparse_counts = sparse_catalog.nonzero_arrays()
    dense_indices, dense_counts = dense_catalog.nonzero_arrays()
    if not (
        np.array_equal(sparse_indices, dense_indices)
        and np.array_equal(sparse_counts, dense_counts)
    ):
        raise FloorFailure("sparse and dense catalog builds disagree")
    matrix_indices, matrix_counts = matrix_catalog.nonzero_arrays()
    if not (
        sparse_indices.tobytes() == matrix_indices.tobytes()
        and sparse_counts.tobytes() == matrix_counts.tobytes()
    ):
        raise FloorFailure(
            "matrix-chain backend nonzero streams are not byte-identical to "
            "the sparse DFS build"
        )
    del matrix_catalog
    density = sparse_catalog.density
    if density > SPARSE_ARTIFACT_DENSITY_CEILING:
        raise FloorFailure(
            f"sparse benchmark graph has density {density:.2e} "
            f"(> {SPARSE_ARTIFACT_DENSITY_CEILING:.0%}); the artifact ratio "
            "floor is only meaningful when zeros dominate"
        )
    build_speedup = dense_seconds / sparse_seconds if sparse_seconds > 0 else float("inf")
    matrix_speedup = sparse_seconds / matrix_seconds if matrix_seconds > 0 else float("inf")

    # --- artifact sizes ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        sparse_path = Path(tmp) / "sparse.npz"
        dense_path = Path(tmp) / "dense.npz"
        sparse_catalog.save_npz(sparse_path)
        dense_catalog.save_npz(dense_path)
        sparse_bytes = sparse_path.stat().st_size
        dense_bytes = dense_path.stat().st_size
    artifact_ratio = sparse_bytes / dense_bytes if dense_bytes else float("inf")

    # Free the 512 MB dense vector before the histogram stage.
    dense_memory_bytes = dense_catalog.memory_bytes()
    del dense_catalog

    # --- byte-identical histogram boundaries (1.1M-entry domain) ----------
    histogram_graph = zipf_labeled_graph(500, 500, 10, skew=0.8, seed=17, name="bench-sparse")
    histogram_k = 6
    dense_small = SelectivityCatalog.from_graph(histogram_graph, histogram_k, storage="dense")
    sparse_small = SelectivityCatalog.from_graph(histogram_graph, histogram_k, storage="sparse")
    ordering = make_ordering("sum-based", catalog=dense_small)
    dense_layout = domain_frequencies(dense_small, ordering)
    sparse_layout = domain_frequencies(sparse_small, ordering)
    buckets = 64
    boundary_kinds: dict[str, bool] = {}
    for kind, histogram_cls in sorted(HISTOGRAM_KINDS.items()):
        dense_histogram = histogram_cls(dense_layout, buckets)
        sparse_histogram = histogram_cls(sparse_layout, buckets)
        boundary_kinds[kind] = [
            (bucket.start, bucket.end) for bucket in dense_histogram.buckets
        ] == [(bucket.start, bucket.end) for bucket in sparse_histogram.buckets]
    boundaries_identical = all(boundary_kinds.values())

    # --- serve the 67M domain in < 1 GiB RSS (subprocess) -----------------
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    try:
        smoke = subprocess.run(
            [sys.executable, str(BENCH_DIR / "sparse_smoke.py"), "--json"],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=SPARSE_SMOKE_TIMEOUT_SECONDS,
        )
    except subprocess.TimeoutExpired as exc:
        raise FloorFailure(
            f"sparse_smoke.py wedged (> {SPARSE_SMOKE_TIMEOUT_SECONDS}s)"
        ) from exc
    serve: dict[str, object] = {}
    if smoke.returncode == 0:
        for line in reversed(smoke.stdout.strip().splitlines()):
            line = line.strip()
            if line.startswith("{"):
                serve = json.loads(line)
                break
    if not serve:
        raise FloorFailure(
            "sparse_smoke.py failed: "
            + (smoke.stderr.strip().splitlines() or ["no output"])[-1]
        )

    return {
        "graph": {
            "labels": graph.label_count,
            "max_length": k,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "domain_size": sparse_catalog.domain_size,
            "nnz": sparse_catalog.nnz,
            "density": density,
            "density_ceiling": SPARSE_ARTIFACT_DENSITY_CEILING,
        },
        "sparse_build_seconds": sparse_seconds,
        "dense_build_seconds": dense_seconds,
        "build_speedup": build_speedup,
        "build_speedup_floor": SPARSE_BUILD_SPEEDUP_FLOOR,
        "matrix_build_seconds": matrix_seconds,
        "matrix_speedup": matrix_speedup,
        "matrix_speedup_floor": MATRIX_BUILD_SPEEDUP_FLOOR,
        "matrix_streams_identical": True,
        "sparse_artifact_bytes": sparse_bytes,
        "dense_artifact_bytes": dense_bytes,
        "artifact_ratio": artifact_ratio,
        "artifact_ratio_ceiling": SPARSE_ARTIFACT_RATIO_CEILING,
        "sparse_memory_bytes": sparse_catalog.memory_bytes(),
        "dense_memory_bytes": dense_memory_bytes,
        "histogram_domain_size": dense_small.domain_size,
        "histogram_nnz": dense_small.nnz,
        "histogram_bucket_count": buckets,
        "histogram_boundaries_identical": boundaries_identical,
        "histogram_boundary_kinds": boundary_kinds,
        "serve_max_rss_bytes": serve.get("max_rss_bytes"),
        "serve_rss_ceiling_bytes": SPARSE_SERVE_RSS_CEILING_BYTES,
        "serve_build_seconds": serve.get("build_seconds"),
        "serve_session_memory_bytes": serve.get("session_memory_bytes"),
        "serve_ok": serve.get("ok", False),
    }


def measure_chaos(quick: bool) -> dict[str, object]:
    """The fault-injection scenario (see ``benchmarks/chaos_smoke.py``).

    Runs in-process: injected worker crashes, on-disk artifact corruption,
    a doomed graph tripping its circuit breaker, and a backpressure burst
    against an 8-deep queue.  The recorded availability (clean answers /
    total requests under chaos) is floor-gated, as are the recovery
    booleans and the open-circuit fast-fail latency.
    """
    report = chaos_smoke.run_scenario(quick=quick)
    for failure in chaos_smoke.collect_failures(report):
        raise FloorFailure(failure)
    return report


def measure_obs(quick: bool) -> dict[str, object]:
    """The observability scenario plus the instrumentation-overhead floor.

    First runs ``benchmarks/obs_smoke.py`` in-process (Prometheus scrape
    coverage, trace retention, readiness transitions — every expectation is
    a hard gate).  Then measures what the instrumentation *costs* where it
    is actually paid: ``/estimate`` requests through the HTTP server, timed
    with the full stack on (metrics enabled, one trace per request, traces
    recorded and logged) and with both kill switches thrown
    (``metrics.set_enabled(False)`` + ``set_tracing_enabled(False)`` — the
    pre-instrumentation serving stack).  The switches alternate on every
    request so both sides sample the same short-term CPU state, and each
    side's cost is its *minimum* per-request latency — scheduling noise
    and CPU drift only ever add time, so the minima converge on the true
    fast-path costs while means and medians wander by more than the
    overhead being measured.  ``overhead_ratio`` is instrumented
    throughput over baseline throughput (``baseline_seconds /
    instrumented_seconds``) and must stay at or above
    :data:`OBS_OVERHEAD_RATIO_FLOOR`.
    """
    import threading

    import numpy as np

    from repro.datasets.registry import load_dataset
    from repro.engine import EngineConfig
    from repro.obs.metrics import set_enabled
    from repro.obs.tracing import set_tracing_enabled
    from repro.paths.enumeration import enumerate_label_paths
    from repro.serving import ServiceClient, SessionRegistry, make_server

    report = obs_smoke.run_scenario(quick=quick)
    for failure in obs_smoke.collect_failures(report):
        raise FloorFailure(failure)

    iterations = 6 if quick else 10
    requests_per_run = 64
    bundle = 512
    graph = load_dataset("moreno-health", scale=0.03, seed=11)
    config = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)
    registry = SessionRegistry(default_config=config)
    registry.register("moreno", graph=graph)
    session = registry.get("moreno")
    domain = [
        str(path)
        for path in enumerate_label_paths(session.catalog.labels, config.max_length)
    ]
    rng = np.random.default_rng(7)
    bundles = [
        [domain[i] for i in rng.integers(0, len(domain), bundle)]
        for _ in range(requests_per_run)
    ]

    server = make_server(registry, port=0, window_seconds=0.001, max_batch_paths=2048)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    client = ServiceClient(base, timeout=60, max_retries=2)

    instrumented_latencies: list[float] = []
    baseline_latencies: list[float] = []
    try:
        # Warm: build the session, then two full untimed passes — loopback
        # serving drifts for the first few hundred requests (thread and
        # allocator warmup), and the ratio needs both sides past it.
        client.estimate("moreno", bundles[0])
        for _ in range(2):
            for bundle_paths in bundles:
                client.estimate("moreno", bundle_paths)
        try:
            for repetition in range(iterations):
                for index, bundle_paths in enumerate(bundles):
                    instrumented = (index + repetition) % 2 == 0
                    set_enabled(instrumented)
                    set_tracing_enabled(instrumented)
                    started = time.perf_counter()
                    client.estimate("moreno", bundle_paths)
                    elapsed = time.perf_counter() - started
                    if instrumented:
                        instrumented_latencies.append(elapsed)
                    else:
                        baseline_latencies.append(elapsed)
        finally:
            set_enabled(True)
            set_tracing_enabled(True)
    finally:
        server.shutdown()
        server.close()
        server_thread.join(timeout=15)
    instrumented_seconds = min(instrumented_latencies)
    baseline_seconds = min(baseline_latencies)
    overhead_ratio = (
        baseline_seconds / instrumented_seconds
        if instrumented_seconds > 0
        else float("inf")
    )
    report.update(
        {
            "overhead_requests_per_side": len(instrumented_latencies),
            "overhead_bundle_paths": bundle,
            "instrumented_seconds": instrumented_seconds,
            "baseline_seconds": baseline_seconds,
            "instrumented_paths_per_second": bundle / instrumented_seconds,
            "baseline_paths_per_second": bundle / baseline_seconds,
            "overhead_ratio": overhead_ratio,
            "overhead_ratio_floor": OBS_OVERHEAD_RATIO_FLOOR,
        }
    )
    return report


def measure_load(quick: bool) -> dict[str, object]:
    """The keep-alive serving-load scenario (see ``benchmarks/bench_load.py``).

    Starts the real ``repro serve`` CLI twice — ``--workers 1`` (private
    catalog copy) and ``--workers N`` (pre-fork tier over the shared sparse
    mmap sidecar) — and records p50/p99/QPS for both plus the per-worker
    PSS cost.  The throughput floors (multi >= 2x single QPS, p99 <= 1.5x)
    are enforced on >= 4-core machines; the memory floor (each extra worker
    <= 25% of a private catalog copy) whenever the fleet and catalog are
    big enough to measure it.
    """
    return bench_load.run_load_bench(quick)


def measure_remote(quick: bool) -> dict[str, object]:
    """The remote artifact tier (see ``benchmarks/bench_remote.py``).

    Runs in-process against a live artifact server on an ephemeral port:
    one replica's cold build seeds the store, a fresh replica warm-starts
    from it (floor-gated speedup and estimate equality), then the store
    corrupts every payload in flight and finally dies — builds must
    quarantine the damage, degrade to cold builds, trip the circuit
    breaker, fast-fail once open, and leave no ``.tmp`` debris.
    """
    report = bench_remote.run_remote_bench(quick=quick)
    for failure in bench_remote.collect_failures(report):
        raise FloorFailure(failure)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-round benchmarks and a smaller engine graph (CI smoke mode)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_engine.json",
        help="output JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the pytest-benchmark suite, emit only the engine numbers",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    try:
        suite = None if args.skip_suite else run_pytest_suite(args.quick)
        engine = measure_engine(args.quick)
        catalog = measure_catalog(args.quick)
        serving = measure_serving(args.quick)
        delta = measure_delta(args.quick)
        sparse = measure_sparse(args.quick)
        chaos = measure_chaos(args.quick)
        obs = measure_obs(args.quick)
        load = measure_load(args.quick)
        remote = measure_remote(args.quick)
    except FloorFailure as exc:
        # A broken invariant (builders disagreeing, a degenerate workload)
        # is a floor failure, not a crash: one readable line, exit 1.
        print(f"benchmark regression: {exc}", file=sys.stderr)
        return 1
    total_seconds = time.perf_counter() - started

    document = {
        "schema": "repro-bench/v10",
        "quick": args.quick,
        "python": sys.version.split()[0],
        "generated_unix": time.time(),
        "total_wall_seconds": total_seconds,
        "engine": engine,
        "catalog": catalog,
        "serving": serving,
        "delta": delta,
        "sparse": sparse,
        "chaos": chaos,
        "obs": obs,
        "load": load,
        "remote": remote,
    }
    if suite is not None:
        document["suite"] = suite

    output = Path(args.json)
    output.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    failures = collect_floor_failures(document)

    # Failures lead the output — CI logs show the failing floor before the
    # summary prose.
    for failure in failures:
        print(f"benchmark regression: {failure}", file=sys.stderr)

    if catalog["process_speedup"] is None:
        process_note = f"skipped ({catalog['cpu_count']} cpu)"
    elif catalog["process_floor_enforced"]:
        process_note = f"{catalog['process_speedup']:.2f}x"
    else:
        process_note = (
            f"{catalog['process_speedup']:.2f}x (floor skipped: "
            f"{catalog['cpu_count']} cpu)"
        )
    print(
        f"wrote {output} — batch speedup {engine['batch_speedup']:.1f}x "
        f"on {engine['batch_paths']} paths, warm catalog from cache: "
        f"{engine['warm_catalog_from_cache']}, columnar build "
        f"{catalog['columnar_speedup']:.1f}x vs dict, npz artifact "
        f"{catalog['artifact_npz_ratio']:.1%} of JSON, process build "
        f"{process_note}, serving coalesced {serving['coalesced_speedup']:.1f}x "
        f"vs naive at {serving['clients']} clients "
        f"({serving['single_flight_builds']} build under concurrent first "
        f"access), delta rebuild {delta['incremental_speedup']:.1f}x vs cold "
        f"({delta['affected_subtrees']}/{delta['subtrees_total']} subtrees), "
        f"sparse build {sparse['build_speedup']:.1f}x vs dense at "
        f"{sparse['graph']['domain_size'] / 1e6:.0f}M domain (matrix backend "
        f"{sparse['matrix_speedup']:.1f}x vs DFS, artifact "
        f"{sparse['artifact_ratio']:.1%} of dense, serve RSS "
        f"{_format_rss(sparse['serve_max_rss_bytes'])}), chaos availability "
        f"{chaos['availability']:.4f} over {chaos['requests_total']} requests "
        f"(circuit fast-fail {chaos['circuit_fast_fail_seconds'] * 1000:.2f}ms), "
        f"obs overhead ratio {obs['overhead_ratio']:.3f} "
        f"(floor {obs['overhead_ratio_floor']}), "
        f"load {load['workers']}-worker {load['multi_qps']:.0f} qps vs "
        f"single {load['single_qps']:.0f} qps on {load['cpu_count']} cores "
        f"(extra-worker RSS {_format_fraction(load['extra_worker_rss_fraction'])} "
        f"of a private copy), "
        f"remote warm-start {remote['warm_speedup']:.1f}x vs cold with "
        f"availability {remote['availability']:.4f} under store faults "
        f"(breaker fast-fail "
        f"{remote['breaker_fast_fail_seconds'] * 1000:.2f}ms), "
        f"total {total_seconds:.1f}s"
    )
    return 0 if not failures else 1


def _format_rss(rss_bytes: object) -> str:
    if not isinstance(rss_bytes, (int, float)):
        return "n/a"
    return f"{rss_bytes / 2**20:.0f}MiB"


def _format_fraction(fraction: object) -> str:
    if not isinstance(fraction, (int, float)):
        return "n/a"
    return f"{fraction:.1%}"


def collect_floor_failures(document: dict) -> list[str]:
    """Every floor the measured document violates, one readable line each.

    Shared with ``benchmarks/check_regression.py``, which re-evaluates a
    freshly measured document against the floors recorded in the committed
    baseline.
    """
    engine = document["engine"]
    catalog = document["catalog"]
    serving = document["serving"]
    delta = document["delta"]
    sparse = document["sparse"]
    suite = document.get("suite")

    failures: list[str] = []
    if not engine["batch_matches_loop"]:
        failures.append("batch estimates diverge from the per-path loop")
    if engine["batch_speedup"] < engine.get("batch_speedup_floor", SPEEDUP_FLOOR):
        failures.append(
            f"batch speedup {engine['batch_speedup']:.1f}x "
            f"< {engine.get('batch_speedup_floor', SPEEDUP_FLOOR)}x"
        )
    if not engine["warm_catalog_from_cache"]:
        failures.append("warm build rebuilt the catalog")
    columnar_floor = catalog.get("columnar_speedup_floor", COLUMNAR_SPEEDUP_FLOOR)
    if catalog["columnar_speedup"] < columnar_floor:
        failures.append(
            f"columnar build speedup {catalog['columnar_speedup']:.1f}x "
            f"< {columnar_floor}x over the dict builder"
        )
    npz_ceiling = catalog.get("artifact_npz_ratio_ceiling", NPZ_SIZE_RATIO_CEILING)
    if catalog["artifact_npz_ratio"] > npz_ceiling:
        failures.append(
            f"npz artifact is {catalog['artifact_npz_ratio']:.0%} of the JSON "
            f"size (ceiling {npz_ceiling:.0%})"
        )
    process_floor = catalog.get("process_speedup_floor", PROCESS_SPEEDUP_FLOOR)
    if (
        catalog["process_floor_enforced"]
        and catalog["process_speedup"] < process_floor
    ):
        failures.append(
            f"process build speedup {catalog['process_speedup']:.2f}x "
            f"< {process_floor}x on {catalog['cpu_count']} cores"
        )
    if not serving["coalesced_matches_direct"]:
        failures.append("scheduler estimates diverge from direct estimate_batch")
    serving_floor = serving.get("coalesced_speedup_floor", SERVING_SPEEDUP_FLOOR)
    if serving["coalesced_speedup"] < serving_floor:
        failures.append(
            f"coalesced serving speedup {serving['coalesced_speedup']:.1f}x "
            f"< {serving_floor}x at {serving['clients']} clients"
        )
    if serving["single_flight_builds"] != 1:
        failures.append(
            f"single-flight violated: {serving['single_flight_builds']} builds "
            f"for {serving['single_flight_clients']} concurrent first requests"
        )
    if not delta["patched_matches_cold"]:
        failures.append("delta-patched vector diverges from the cold rebuild")
    delta_floor = delta.get("incremental_speedup_floor", DELTA_SPEEDUP_FLOOR)
    if delta["incremental_speedup"] < delta_floor:
        failures.append(
            f"incremental delta rebuild {delta['incremental_speedup']:.1f}x "
            f"< {delta_floor}x vs cold ({delta['affected_subtrees']}/"
            f"{delta['subtrees_total']} subtrees touched)"
        )
    sparse_build_floor = sparse.get("build_speedup_floor", SPARSE_BUILD_SPEEDUP_FLOOR)
    if sparse["build_speedup"] < sparse_build_floor:
        failures.append(
            f"sparse catalog build {sparse['build_speedup']:.1f}x "
            f"< {sparse_build_floor}x over the dense build at "
            f"{sparse['graph']['domain_size']:,} domain entries"
        )
    if not sparse.get("matrix_streams_identical", True):
        failures.append(
            "matrix-chain backend nonzero streams diverge from the sparse "
            "DFS build"
        )
    matrix_speedup = sparse.get("matrix_speedup")
    matrix_floor = sparse.get("matrix_speedup_floor", MATRIX_BUILD_SPEEDUP_FLOOR)
    if matrix_speedup is not None and matrix_speedup < matrix_floor:
        failures.append(
            f"matrix-chain build {matrix_speedup:.1f}x < {matrix_floor}x "
            f"over the sparse DFS build at "
            f"{sparse['graph']['domain_size']:,} domain entries"
        )
    sparse_artifact_ceiling = sparse.get(
        "artifact_ratio_ceiling", SPARSE_ARTIFACT_RATIO_CEILING
    )
    if sparse["artifact_ratio"] > sparse_artifact_ceiling:
        failures.append(
            f"sparse artifact is {sparse['artifact_ratio']:.1%} of the dense "
            f"npz (ceiling {sparse_artifact_ceiling:.0%} at "
            f"{sparse['graph']['density']:.2e} density)"
        )
    if not sparse["histogram_boundaries_identical"]:
        broken = sorted(
            kind
            for kind, identical in sparse.get("histogram_boundary_kinds", {}).items()
            if not identical
        )
        failures.append(
            "sparse histogram boundaries diverge from the dense build"
            + (f" ({', '.join(broken)})" if broken else "")
        )
    # A locally measured document always has serve_ok=true (measure_sparse
    # raises before writing one otherwise); these branches exist for
    # check_regression.py, which re-evaluates documents measured elsewhere
    # (possibly merged with the committed baseline's floors).
    if not sparse.get("serve_ok", False):
        failures.append("sparse serve smoke failed")
    rss = sparse.get("serve_max_rss_bytes")
    rss_ceiling = sparse.get(
        "serve_rss_ceiling_bytes", SPARSE_SERVE_RSS_CEILING_BYTES
    )
    if isinstance(rss, (int, float)) and rss >= rss_ceiling:
        failures.append(
            f"sparse serve peak RSS {_format_rss(rss)} >= "
            f"{_format_rss(rss_ceiling)} for the "
            f"{sparse['graph']['domain_size']:,}-entry domain"
        )
    chaos = document.get("chaos")
    if chaos is None:
        failures.append("chaos section missing from the benchmark document")
    else:
        failures.extend(chaos_smoke.collect_failures(chaos))
    obs = document.get("obs")
    if obs is None:
        failures.append("obs section missing from the benchmark document")
    else:
        failures.extend(obs_smoke.collect_failures(obs))
        ratio = obs.get("overhead_ratio")
        ratio_floor = obs.get("overhead_ratio_floor", OBS_OVERHEAD_RATIO_FLOOR)
        if ratio is not None and ratio < ratio_floor:
            failures.append(
                f"observability overhead: instrumented serving runs at "
                f"{ratio:.1%} of the kill-switched baseline "
                f"(floor {ratio_floor:.0%})"
            )
    load = document.get("load")
    if load is None:
        failures.append("load section missing from the benchmark document")
    else:
        failures.extend(bench_load.collect_failures(load))
    remote = document.get("remote")
    if remote is None:
        failures.append("remote section missing from the benchmark document")
    else:
        failures.extend(bench_remote.collect_failures(remote))
    if suite is not None and suite["exit_code"] != 0:
        failures.append("pytest-benchmark suite failed")
    return failures


if __name__ == "__main__":
    sys.exit(main())
