"""Benchmarks: the batched estimation engine.

Tracks the two claims the engine makes: (1) ``estimate_batch`` beats a
per-path ``estimate`` loop by an order of magnitude on large workloads, and
(2) a warm artifact cache turns a session build into pure artifact loading
(no catalog construction).  ``benchmarks/run_all.py`` additionally measures
both claims directly and records the numbers in ``BENCH_engine.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, EstimationSession
from repro.paths.enumeration import enumerate_label_paths

#: Workload size for the batch-vs-loop comparison (the acceptance threshold
#: is ≥ 10× on ≥ 10k paths).
BATCH_SIZE = 10_000

ENGINE_CONFIG = EngineConfig(max_length=3, ordering="sum-based", bucket_count=32)


@pytest.fixture(scope="module")
def engine_session(bench_graphs) -> EstimationSession:
    """A session over the Moreno stand-in (built once per module, no cache)."""
    return EstimationSession.build(bench_graphs["moreno-health"], ENGINE_CONFIG)


@pytest.fixture(scope="module")
def engine_workload(engine_session) -> list[str]:
    """10k paths sampled uniformly from the full domain (deterministic)."""
    catalog = engine_session.catalog
    domain = [
        str(path)
        for path in enumerate_label_paths(catalog.labels, catalog.max_length)
    ]
    rng = np.random.default_rng(7)
    return [domain[i] for i in rng.integers(0, len(domain), BATCH_SIZE)]


def test_estimate_batch_10k(benchmark, engine_session, engine_workload):
    estimates = benchmark(engine_session.estimate_batch, engine_workload)
    assert estimates.shape == (BATCH_SIZE,)


def test_estimate_loop_10k(benchmark, engine_session, engine_workload):
    def per_path_loop():
        estimate = engine_session.estimate
        return [estimate(path) for path in engine_workload]

    estimates = benchmark(per_path_loop)
    assert len(estimates) == BATCH_SIZE


def test_batch_matches_loop(engine_session, engine_workload):
    batch = engine_session.estimate_batch(engine_workload)
    loop = np.array([engine_session.estimate(path) for path in engine_workload])
    assert np.allclose(batch, loop)


def test_session_cold_build(benchmark, bench_graphs):
    session = benchmark.pedantic(
        EstimationSession.build,
        args=(bench_graphs["moreno-health"], ENGINE_CONFIG),
        rounds=1,
        iterations=1,
    )
    assert not session.stats.catalog_from_cache


def test_session_warm_build(benchmark, bench_graphs, tmp_path):
    graph = bench_graphs["moreno-health"]
    EstimationSession.build(graph, ENGINE_CONFIG, cache_dir=tmp_path)  # pre-warm

    session = benchmark(
        lambda: EstimationSession.build(graph, ENGINE_CONFIG, cache_dir=tmp_path)
    )
    assert session.stats.catalog_from_cache
    assert session.stats.histogram_from_cache


def test_parallel_catalog_build(benchmark, bench_graphs):
    from repro.paths.catalog import SelectivityCatalog

    catalog = benchmark.pedantic(
        SelectivityCatalog.from_graph,
        args=(bench_graphs["moreno-health"], 3),
        kwargs={"workers": 4},
        rounds=1,
        iterations=1,
    )
    assert catalog.domain_size == 258
