#!/usr/bin/env python
"""Remote artifact tier: warm-start value and graceful degradation.

Measures the two promises the shared artifact store makes, in one
in-process scenario against a live ``ArtifactHTTPServer`` on an ephemeral
port:

1. **Warm-start value** — one replica's cold build is pushed to the store;
   a fresh replica (empty local cache) must then warm-start by fetching the
   verified artifacts at least :data:`WARM_SPEEDUP_FLOOR` times faster than
   rebuilding them.
2. **Graceful degradation** — with the store killed mid-fleet, and again
   with the store corrupting every payload in flight (bit-flips injected at
   the ``remote.fetch`` fault point), every build must still complete by
   falling back to a cold build: availability (successful builds / total)
   must clear :data:`AVAILABILITY_FLOOR`, corrupt payloads must land in
   quarantine (never be loaded), the circuit breaker must fast-fail in
   under :data:`FAST_FAIL_CEILING_SECONDS` once open, and no ``.tmp``
   debris may remain in any cache directory afterwards.

Run directly (CI) or via ``run_all.py``, which records the numbers in
``BENCH_engine.json`` under the ``remote`` section and enforces the floors.

Usage::

    python benchmarks/bench_remote.py [--json remote-report.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: A fresh replica must warm-start at least this much faster than building.
WARM_SPEEDUP_FLOOR = 10.0

#: Fraction of builds that must succeed with the remote tier down/corrupting.
AVAILABILITY_FLOOR = 0.99

#: Ceiling for a fetch answered against an open circuit breaker.
FAST_FAIL_CEILING_SECONDS = 0.010

#: Open-circuit probes measured for the fast-fail bound (min is reported).
FAST_FAIL_PROBES = 5


def run_remote_bench(quick: bool = False) -> dict[str, object]:
    """Run the full remote-tier scenario; returns the JSON-ready report."""
    from repro.engine import ArtifactCache, EngineConfig, EstimationSession
    from repro.engine.remote import RemoteArtifactStore
    from repro.graph.generators import zipf_labeled_graph
    from repro.obs.metrics import MetricsRegistry
    from repro.serving.artifacts import make_artifact_server
    from repro.testing import bitflip_bytes, injector

    outage_builds = 5 if quick else 10
    corrupt_builds = 5 if quick else 10

    graph = zipf_labeled_graph(80, 400, 3, skew=1.0, seed=13, name="remote-g")
    config = EngineConfig(max_length=7, bucket_count=16)

    injector.reset()
    report: dict[str, object] = {
        "quick": quick,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "availability_floor": AVAILABILITY_FLOOR,
        "fast_fail_ceiling_seconds": FAST_FAIL_CEILING_SECONDS,
    }
    caches: list[ArtifactCache] = []

    with tempfile.TemporaryDirectory(prefix="repro-remote-") as workdir:
        root = Path(workdir)
        server = make_artifact_server(
            root / "store", port=0, metrics=MetricsRegistry()
        )
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        try:
            # Phase 1: one replica builds cold and pushes to the store.
            seeder = ArtifactCache(root / "seed", remote=RemoteArtifactStore(url))
            caches.append(seeder)
            started = time.perf_counter()
            cold = EstimationSession.build(graph, config, cache_dir=seeder)
            cold_seconds = time.perf_counter() - started
            seeder.remote.flush(timeout=60)
            if seeder.remote.pushes < 3:
                raise AssertionError(
                    f"cold build pushed {seeder.remote.pushes} artifacts, "
                    "expected the catalog/histogram/positions trio"
                )

            # Phase 2: a fresh replica warm-starts from the store.
            warm_cache = ArtifactCache(
                root / "warm", remote=RemoteArtifactStore(url)
            )
            caches.append(warm_cache)
            started = time.perf_counter()
            warm = EstimationSession.build(graph, config, cache_dir=warm_cache)
            warm_seconds = time.perf_counter() - started
            probe_paths = ["1/2/3", "2/2", "3/1/2/3"]
            warm_matches = bool(
                warm.stats.catalog_from_cache
                and list(warm.estimate_batch(probe_paths))
                == list(cold.estimate_batch(probe_paths))
            )
            report.update(
                {
                    "cold_build_seconds": cold_seconds,
                    "warm_start_seconds": warm_seconds,
                    "warm_speedup": cold_seconds / warm_seconds,
                    "warm_catalog_from_cache": warm.stats.catalog_from_cache,
                    "warm_matches_cold": warm_matches,
                    "remote_hits": warm_cache.remote_hits,
                    "pushes": seeder.remote.pushes,
                }
            )

            # Phase 3: the store starts corrupting every payload in flight.
            # Builds must quarantine the damage and fall back cold.
            injector.arm("remote.fetch", mutate=bitflip_bytes, times=-1)
            corrupt_ok = 0
            try:
                for index in range(corrupt_builds):
                    cache = ArtifactCache(
                        root / f"corrupt-{index}",
                        remote=RemoteArtifactStore(url),
                    )
                    caches.append(cache)
                    try:
                        session = EstimationSession.build(
                            graph, config, cache_dir=cache
                        )
                    except Exception:  # noqa: BLE001 - availability counts
                        continue
                    # A corrupt payload must never be adopted as a warm hit.
                    if not session.stats.catalog_from_cache:
                        corrupt_ok += 1
            finally:
                injector.reset()
            quarantined = sum(
                cache.quarantined for cache in caches[-corrupt_builds:]
            )
            report.update(
                {
                    "corrupt_builds": corrupt_builds,
                    "corrupt_builds_ok": corrupt_ok,
                    "corrupt_quarantined": quarantined,
                }
            )
        finally:
            server.shutdown()
            server.server_close()
            server_thread.join(timeout=15)

        # Phase 4: the store is dead (listener gone).  Builds must degrade
        # to cold; the breaker must open and then fast-fail.
        outage_ok = 0
        breaker_store = RemoteArtifactStore(
            url, timeout=1.0, max_retries=1, backoff_seconds=0.0
        )
        for index in range(outage_builds):
            cache = ArtifactCache(
                root / f"outage-{index}",
                remote=RemoteArtifactStore(
                    url, timeout=1.0, max_retries=1, backoff_seconds=0.0
                ),
            )
            caches.append(cache)
            try:
                session = EstimationSession.build(graph, config, cache_dir=cache)
            except Exception:  # noqa: BLE001 - availability counts
                continue
            if session.domain_size > 0:
                outage_ok += 1

        # Trip the breaker explicitly, then time open-circuit fetches.
        sink = root / "breaker-probe"
        sink.mkdir()
        attempts = 0
        while not breaker_store.breaker_open and attempts < 10:
            breaker_store.fetch("catalog-probe.npz", sink / "catalog-probe.npz")
            attempts += 1
        fast_fails = []
        for _ in range(FAST_FAIL_PROBES):
            started = time.perf_counter()
            outcome = breaker_store.fetch(
                "catalog-probe.npz", sink / "catalog-probe.npz"
            )
            fast_fails.append(time.perf_counter() - started)
            if outcome != "unavailable":
                raise AssertionError(
                    f"open breaker returned {outcome!r}, expected unavailable"
                )
        total = outage_builds + corrupt_builds
        ok = outage_ok + report["corrupt_builds_ok"]
        debris = sum(len(cache.temp_files()) for cache in caches)
        debris += len(list((root / "store").glob(".*.tmp*")))
        report.update(
            {
                "outage_builds": outage_builds,
                "outage_builds_ok": outage_ok,
                "requests_total": total,
                "availability": ok / total if total else 1.0,
                "breaker_opened": breaker_store.breaker_open,
                "breaker_fast_fail_seconds": min(fast_fails),
                "tmp_debris": debris,
            }
        )
    return report


def collect_failures(report: dict[str, object]) -> list[str]:
    """Every remote-tier floor the report violates, one readable line each."""
    failures: list[str] = []
    warm_floor = report.get("warm_speedup_floor", WARM_SPEEDUP_FLOOR)
    if report["warm_speedup"] < warm_floor:
        failures.append(
            f"remote warm-start {report['warm_speedup']:.1f}x < {warm_floor}x "
            f"vs the cold build ({report['warm_start_seconds'] * 1000:.0f}ms "
            f"vs {report['cold_build_seconds'] * 1000:.0f}ms)"
        )
    if not report.get("warm_catalog_from_cache", False):
        failures.append("remote warm-start rebuilt the catalog")
    if not report.get("warm_matches_cold", False):
        failures.append("remote warm-start estimates diverge from the cold build")
    floor = report.get("availability_floor", AVAILABILITY_FLOOR)
    if report["availability"] < floor:
        failures.append(
            f"availability {report['availability']:.4f} < {floor} with the "
            f"remote store down/corrupting "
            f"({report['requests_total']} builds)"
        )
    if report.get("corrupt_quarantined", 0) < 1:
        failures.append("no corrupt remote payload was quarantined")
    if not report.get("breaker_opened", False):
        failures.append("the dead store never tripped the circuit breaker")
    ceiling = report.get("fast_fail_ceiling_seconds", FAST_FAIL_CEILING_SECONDS)
    if report["breaker_fast_fail_seconds"] >= ceiling:
        failures.append(
            f"open breaker answered in "
            f"{report['breaker_fast_fail_seconds'] * 1000:.1f}ms "
            f">= {ceiling * 1000:.0f}ms ceiling"
        )
    if report.get("tmp_debris", 0):
        failures.append(
            f"{report['tmp_debris']} .tmp debris file(s) left behind"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the scenario, report floors, exit non-zero on breach."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write the report to this path")
    parser.add_argument(
        "--quick", action="store_true", help="fewer fault builds (CI smoke mode)"
    )
    args = parser.parse_args(argv)
    try:
        report = run_remote_bench(quick=args.quick)
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"remote FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    failures = collect_failures(report)
    for failure in failures:
        print(f"remote FAILURE: {failure}", file=sys.stderr)
    print(
        f"remote: warm-start {report['warm_speedup']:.1f}x vs cold "
        f"({report['warm_start_seconds'] * 1000:.0f}ms vs "
        f"{report['cold_build_seconds'] * 1000:.0f}ms, "
        f"{report['remote_hits']} remote hits), availability "
        f"{report['availability']:.4f} over {report['requests_total']} builds "
        f"with the store down/corrupting "
        f"({report['corrupt_quarantined']} payload(s) quarantined), breaker "
        f"fast-fail {report['breaker_fast_fail_seconds'] * 1000:.2f}ms, "
        f"tmp debris {report['tmp_debris']}"
    )
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
