"""Benchmark: Ablation C — histogram estimator vs synopsis-free baselines."""

from __future__ import annotations

from repro.experiments.ablation_baselines import run_baseline_ablation
from repro.experiments.reporting import format_records


def test_baseline_ablation(benchmark, bench_graphs, bench_catalogs):
    graph = bench_graphs["moreno-health"]
    catalog = bench_catalogs["moreno-health"]
    result = benchmark.pedantic(
        run_baseline_ablation,
        kwargs={"graph": graph, "catalog": catalog, "sample_size": 60},
        rounds=1,
        iterations=1,
    )
    print("\nAblation C — accuracy vs memory for every estimator family")
    print(format_records(result.records))
    assert result.mean_error("exact oracle") == 0.0
    # The histogram approach beats the independence assumption at a
    # comparable (Markov-sized) memory budget.
    assert result.mean_error("sum-based histogram") <= result.mean_error("independence")
