#!/usr/bin/env python
"""Chaos smoke: availability of the serving stack under injected faults.

Runs one in-process ``make_server`` endpoint through the fault phases
driven by :mod:`repro.testing.faults`:

1. **baseline** — plain traffic through a retrying client;
2. **worker crash** — the scheduler's drain loop is killed mid-batch; the
   supervisor must fail the in-flight futures, restart the worker, and the
   client's retry must land;
3. **corrupt artifact** — the cached catalog ``.npz`` is deterministically
   damaged on disk; the next build must quarantine it and rebuild with no
   client-visible error;
4. **circuit breaker** — a doomed graph (every build fails after a 250 ms
   stall) trips its circuit; once open, requests must fast-fail in under
   :data:`FAST_FAIL_CEILING_SECONDS` instead of queueing behind the stall;
5. **backpressure burst** — more concurrent clients than the 8-deep queue
   admits; retries with jitter + ``Retry-After`` must absorb the burst;
6. **remote artifact tier** — a live ``make_artifact_server`` store first
   bit-flips every payload in flight (the fetch must quarantine the damage
   and the build degrade to a cold start), then dies entirely (the
   :class:`~repro.engine.remote.RemoteArtifactStore` breaker must open and
   fast-fail under the same ceiling as the registry circuit, with no
   ``.tmp`` debris left in any cache).

Every request is classified: ``ok`` (answered), ``clean_unavailable``
(429/503 carrying a retry hint, or 504), ``clean_rejected`` (4xx client
fault), or ``bad`` (anything else — including a 503 *without* a retry
hint).  Availability = non-``bad`` / total and must clear
:data:`AVAILABILITY_FLOOR`; a thread that never returns counts as a hang
and any hang fails the run.

A final phase scrapes ``GET /metrics`` and asserts the exported series
*tell the truth about the faults just injected*: the breaker-open
transition, the quarantine counter and the worker-restart counter must
all be visible to an external scraper, not just to in-process state.

Run directly (CI chaos job) or with ``--json`` (consumed by ``run_all.py``,
which records the numbers in ``BENCH_engine.json`` and enforces the
floors).

Usage::

    python benchmarks/chaos_smoke.py [--json chaos-report.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Fraction of chaos-phase requests that must get a clean answer.
AVAILABILITY_FLOOR = 0.99

#: Ceiling for answering a request against an open circuit.
FAST_FAIL_CEILING_SECONDS = 0.010

#: Open-circuit probes measured for the fast-fail bound (min is reported).
FAST_FAIL_PROBES = 5


class _Outcomes:
    """Thread-safe request classification counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ok = 0
        self.clean_unavailable = 0
        self.clean_rejected = 0
        self.bad = 0

    def record(self, call) -> object:
        """Run ``call``, classify its outcome, and return its result (or None)."""
        from repro.exceptions import ServiceRequestError

        try:
            result = call()
        except ServiceRequestError as exc:
            with self._lock:
                if exc.status in (429, 503) and exc.retry_after is not None:
                    self.clean_unavailable += 1
                elif exc.status == 504:
                    self.clean_unavailable += 1
                elif exc.status is not None and 400 <= exc.status < 500:
                    self.clean_rejected += 1
                else:
                    self.bad += 1
            return None
        except Exception:  # noqa: BLE001 - anything else is a dirty failure
            with self._lock:
                self.bad += 1
            return None
        with self._lock:
            self.ok += 1
        return result

    @property
    def total(self) -> int:
        with self._lock:
            return self.ok + self.clean_unavailable + self.clean_rejected + self.bad

    def availability(self) -> float:
        """Fraction of requests that got a clean (non-``bad``) answer."""
        total = self.total
        if total == 0:
            return 1.0
        with self._lock:
            return 1.0 - self.bad / total


def scrape_metric(text: str, name: str, **labels: str) -> float:
    """Sum every ``name`` sample in a Prometheus text document matching ``labels``."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        series, _, value = line.rpartition(" ")
        if series != name and not series.startswith(name + "{"):
            continue
        if any(f'{key}="{val}"' not in series for key, val in labels.items()):
            continue
        total += float(value)
    return total


def run_scenario(quick: bool = False) -> dict[str, object]:
    """Run every chaos phase in-process; returns the JSON-ready report."""
    from repro.engine import ArtifactCache, EngineConfig, EstimationSession
    from repro.engine.remote import RemoteArtifactStore
    from repro.exceptions import EngineError, ServiceRequestError
    from repro.graph.generators import zipf_labeled_graph
    from repro.obs.metrics import MetricsRegistry
    from repro.serving import ServiceClient, SessionRegistry, make_server
    from repro.serving.artifacts import make_artifact_server
    from repro.testing import bitflip_bytes, corrupt_file, injector

    baseline_requests = 20 if quick else 40
    burst_threads = 24 if quick else 60

    injector.reset()
    outcomes = _Outcomes()
    report: dict[str, object] = {
        "quick": quick,
        "availability_floor": AVAILABILITY_FLOOR,
        "fast_fail_ceiling_seconds": FAST_FAIL_CEILING_SECONDS,
    }

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as cache_dir:
        registry = SessionRegistry(
            cache_dir=cache_dir,
            default_config=EngineConfig(max_length=2, bucket_count=8),
            breaker_threshold=2,
            breaker_reset_seconds=60.0,
        )
        registry.register(
            "g", graph=zipf_labeled_graph(40, 160, 3, skew=1.0, seed=13, name="g")
        )
        registry.register(
            "doomed",
            graph=zipf_labeled_graph(20, 50, 3, skew=1.0, seed=17, name="doomed"),
        )
        injector.arm(
            "registry.build",
            error=lambda: EngineError("chaos: doomed build"),
            delay=0.25,
            times=-1,
            match=lambda ctx: ctx.get("graph") == "doomed",
        )
        server = make_server(
            registry, port=0, window_seconds=0.001, max_pending=8
        )
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                url, timeout=10, max_retries=6, backoff_seconds=0.02
            )
            paths = ["1/2", "2", "3/3", "2/1"]

            # Phase 1: baseline traffic.
            reference = outcomes.record(lambda: client.estimate("g", paths))
            assert reference is not None, "baseline estimate failed"
            for _ in range(baseline_requests - 1):
                outcomes.record(lambda: client.estimate("g", paths))

            # Phase 2: worker crash mid-batch; the retry must recover.
            injector.arm("scheduler.worker", error=RuntimeError("chaos"), times=1)
            crashed_answer = outcomes.record(lambda: client.estimate("g", paths))
            stats = client.stats()["scheduler"]
            report["worker_restarts"] = stats["worker_restarts"]
            report["crashed_requests_total"] = stats["crashed_requests_total"]
            report["recovered_after_crash"] = (
                crashed_answer == reference and stats["worker_restarts"] >= 1
            )

            # Phase 3: corrupt the cached catalog; rebuild must be invisible.
            key = registry.get("g").stats.catalog_key
            registry.evict("g")
            corrupt_file(registry.cache.catalog_path(key), mode="bitflip")
            healed_answer = outcomes.record(lambda: client.estimate("g", paths))
            report["quarantined"] = registry.cache.quarantined
            report["quarantine_rebuilt"] = (
                healed_answer == reference and registry.cache.quarantined >= 1
            )

            # Phase 4: trip the doomed graph's circuit, then time fast-fails.
            no_retry = ServiceClient(url, timeout=10, max_retries=0)
            for _ in range(2):  # breaker_threshold slow failures (400s)
                outcomes.record(lambda: no_retry.warm("doomed"))
            fast_fail_seconds = []
            for _ in range(FAST_FAIL_PROBES):
                started = time.perf_counter()
                try:
                    no_retry.warm("doomed")
                    raise AssertionError("open circuit answered a warm")
                except ServiceRequestError as exc:
                    elapsed = time.perf_counter() - started
                    with outcomes._lock:
                        if exc.status == 503 and exc.retry_after is not None:
                            outcomes.clean_unavailable += 1
                        else:
                            outcomes.bad += 1
                fast_fail_seconds.append(elapsed)
            report["circuit_fast_fail_seconds"] = min(fast_fail_seconds)
            report["circuits_opened"] = registry.stats.circuits_opened

            # Phase 5: backpressure burst against the 8-deep queue.
            injector.arm("scheduler.worker", delay=0.15, times=1)
            burst_clients = [
                ServiceClient(
                    url,
                    timeout=10,
                    max_retries=8,
                    backoff_seconds=0.02,
                    backoff_max_seconds=0.5,
                )
                for _ in range(burst_threads)
            ]
            threads = [
                threading.Thread(
                    target=lambda c=c: outcomes.record(
                        lambda: c.estimate("g", paths)
                    ),
                    daemon=True,
                )
                for c in burst_clients
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=60)
            report["hangs"] = sum(worker.is_alive() for worker in threads)

            # Phase 6: remote artifact tier under chaos.  A store that
            # corrupts every payload in flight must end in quarantine
            # (the damage is never loaded) with the build degrading to
            # cold; a dead store must trip the client's circuit breaker
            # and then fast-fail instead of stalling builds.
            remote_root = Path(cache_dir)
            artifact_server = make_artifact_server(
                remote_root / "remote-store", port=0, metrics=MetricsRegistry()
            )
            remote_host, remote_port = artifact_server.server_address[:2]
            remote_url = f"http://{remote_host}:{remote_port}"
            artifact_thread = threading.Thread(
                target=artifact_server.serve_forever, daemon=True
            )
            artifact_thread.start()
            remote_graph = zipf_labeled_graph(
                30, 120, 3, skew=1.0, seed=23, name="remote-g"
            )
            remote_config = EngineConfig(max_length=2, bucket_count=8)
            try:
                seed_cache = ArtifactCache(
                    remote_root / "remote-seed",
                    remote=RemoteArtifactStore(remote_url),
                )
                outcomes.record(
                    lambda: EstimationSession.build(
                        remote_graph, remote_config, cache_dir=seed_cache
                    )
                )
                seed_cache.remote.flush(timeout=30)
                corrupting = injector.arm(
                    "remote.fetch", mutate=bitflip_bytes, times=-1
                )
                try:
                    chaos_cache = ArtifactCache(
                        remote_root / "remote-chaos",
                        remote=RemoteArtifactStore(remote_url),
                    )
                    rebuilt = outcomes.record(
                        lambda: EstimationSession.build(
                            remote_graph, remote_config, cache_dir=chaos_cache
                        )
                    )
                finally:
                    injector.disarm(corrupting)
                report["remote_quarantined"] = chaos_cache.quarantined
                report["remote_corrupt_rebuilt"] = (
                    rebuilt is not None
                    and not rebuilt.stats.catalog_from_cache
                    and chaos_cache.quarantined >= 1
                )
            finally:
                artifact_server.shutdown()
                artifact_server.server_close()
                artifact_thread.join(timeout=15)

            # The store is now dead: the build degrades to cold and the
            # breaker opens, after which fetches fast-fail.
            dead_store = RemoteArtifactStore(
                remote_url, timeout=1.0, max_retries=1, backoff_seconds=0.0
            )
            dead_cache = ArtifactCache(
                remote_root / "remote-dead", remote=dead_store
            )
            degraded = outcomes.record(
                lambda: EstimationSession.build(
                    remote_graph, remote_config, cache_dir=dead_cache
                )
            )
            report["remote_outage_degraded"] = (
                degraded is not None and not degraded.stats.catalog_from_cache
            )
            probes = 0
            sink = remote_root / "remote-dead" / "catalog-probe.npz"
            while not dead_store.breaker_open and probes < 10:
                dead_store.fetch("catalog-probe.npz", sink)
                probes += 1
            report["remote_breaker_opened"] = dead_store.breaker_open
            remote_fast_fails = []
            for _ in range(FAST_FAIL_PROBES):
                started = time.perf_counter()
                dead_store.fetch("catalog-probe.npz", sink)
                remote_fast_fails.append(time.perf_counter() - started)
            report["remote_fast_fail_seconds"] = min(remote_fast_fails)
            report["remote_tmp_debris"] = sum(
                len(cache.temp_files())
                for cache in (seed_cache, chaos_cache, dead_cache)
            )

            # Phase 7: the metrics must tell the truth about the faults.
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
                exposition = response.read().decode("utf-8")
            report["metrics_breaker_open_transitions"] = scrape_metric(
                exposition,
                "repro_registry_circuit_transitions_total",
                graph="doomed",
                state="open",
            )
            report["metrics_quarantined_total"] = scrape_metric(
                exposition, "repro_cache_quarantined_total"
            )
            report["metrics_worker_restarts_total"] = scrape_metric(
                exposition, "repro_scheduler_worker_restarts_total"
            )
            report["metrics_remote_corrupt_total"] = scrape_metric(
                exposition, "repro_remote_fetch_total", outcome="corrupt"
            )
            report["metrics_remote_breaker_open_transitions"] = scrape_metric(
                exposition, "repro_remote_breaker_transitions_total", state="open"
            )
        finally:
            injector.reset()
            server.shutdown()
            server.close()
            thread.join(timeout=15)

    report.update(
        {
            "requests_total": outcomes.total,
            "ok": outcomes.ok,
            "clean_unavailable": outcomes.clean_unavailable,
            "clean_rejected": outcomes.clean_rejected,
            "bad": outcomes.bad,
            "availability": outcomes.availability(),
        }
    )
    return report


def collect_failures(report: dict[str, object]) -> list[str]:
    """Every chaos floor the report violates, one readable line each."""
    failures: list[str] = []
    floor = report.get("availability_floor", AVAILABILITY_FLOOR)
    if report["availability"] < floor:
        failures.append(
            f"chaos availability {report['availability']:.4f} < {floor} "
            f"({report['bad']} dirty failures of {report['requests_total']})"
        )
    if report.get("hangs", 0):
        failures.append(f"{report['hangs']} request thread(s) never returned")
    if not report.get("recovered_after_crash", False):
        failures.append("client retry did not recover across the worker crash")
    if not report.get("quarantine_rebuilt", False):
        failures.append("corrupt catalog was not quarantined + rebuilt cleanly")
    ceiling = report.get("fast_fail_ceiling_seconds", FAST_FAIL_CEILING_SECONDS)
    if report["circuit_fast_fail_seconds"] >= ceiling:
        failures.append(
            f"open circuit answered in {report['circuit_fast_fail_seconds'] * 1000:.1f}ms "
            f">= {ceiling * 1000:.0f}ms ceiling"
        )
    if report.get("circuits_opened", 0) < 1:
        failures.append("the doomed graph never tripped its circuit")
    if not report.get("remote_corrupt_rebuilt", False):
        failures.append(
            "corrupting remote store was not quarantined + rebuilt cleanly"
        )
    if not report.get("remote_outage_degraded", False):
        failures.append("dead remote store did not degrade to a cold build")
    if not report.get("remote_breaker_opened", False):
        failures.append("the dead remote store never tripped its breaker")
    if report.get("remote_fast_fail_seconds", 0.0) >= ceiling:
        failures.append(
            f"open remote breaker answered in "
            f"{report['remote_fast_fail_seconds'] * 1000:.1f}ms "
            f">= {ceiling * 1000:.0f}ms ceiling"
        )
    if report.get("remote_tmp_debris", 0):
        failures.append(
            f"{report['remote_tmp_debris']} .tmp debris file(s) in "
            "remote-backed caches"
        )
    for key, label in (
        ("metrics_breaker_open_transitions", "breaker-open transition"),
        ("metrics_quarantined_total", "artifact quarantine"),
        ("metrics_worker_restarts_total", "worker restart"),
        ("metrics_remote_corrupt_total", "remote corrupt-fetch counter"),
        ("metrics_remote_breaker_open_transitions", "remote breaker-open"),
    ):
        if report.get(key, 0) < 1:
            failures.append(f"/metrics did not expose the {label} counter (>= 1)")
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the scenario, report floors, exit non-zero on breach."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write the report to this path")
    parser.add_argument(
        "--quick", action="store_true", help="smaller burst (CI smoke mode)"
    )
    args = parser.parse_args(argv)
    try:
        report = run_scenario(quick=args.quick)
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"chaos FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    failures = collect_failures(report)
    for failure in failures:
        print(f"chaos FAILURE: {failure}", file=sys.stderr)
    print(
        f"chaos: availability {report['availability']:.4f} over "
        f"{report['requests_total']} requests "
        f"(ok {report['ok']}, unavailable {report['clean_unavailable']}, "
        f"rejected {report['clean_rejected']}, bad {report['bad']}, "
        f"hangs {report['hangs']}), worker restarts {report['worker_restarts']}, "
        f"quarantined {report['quarantined']}, circuit fast-fail "
        f"{report['circuit_fast_fail_seconds'] * 1000:.2f}ms, remote "
        f"quarantined {report['remote_quarantined']}, remote breaker fast-fail "
        f"{report['remote_fast_fail_seconds'] * 1000:.2f}ms"
    )
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
