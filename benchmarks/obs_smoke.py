#!/usr/bin/env python
"""Observability smoke: /metrics, /traces and readiness under real traffic.

Boots an in-process ``make_server`` endpoint (cold artifact cache, one
graph), drives mixed traffic through the retrying client — estimates,
a warm, a deliberate 404 — then verifies the observability surface from
the *outside*, the way a scraper would:

* ``GET /metrics`` is valid Prometheus text (``# HELP``/``# TYPE`` pairs,
  content type 0.0.4) and the series named in :data:`REQUIRED_SERIES`
  all moved: HTTP layer, scheduler, registry build timings, per-stage
  session builds, catalog core and artifact cache — one counter per
  instrumented layer, so a layer silently losing its instruments fails
  the smoke even when the unit suite is green;
* ``GET /traces`` retains the client's last ``X-Request-Id`` with the
  spans that crossed the scheduler thread boundary;
* readiness tells the truth during a drain: ``/readyz`` answers 200
  before ``begin_drain()`` and 503 after, while ``/healthz`` (liveness)
  stays 200 and flips its body to ``draining``.

Run directly (CI obs job) or with ``--json`` (consumed by ``run_all.py``,
which adds the instrumentation-overhead floor on top).

Usage::

    python benchmarks/obs_smoke.py [--json obs-report.json] [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from chaos_smoke import scrape_metric  # noqa: E402

#: Series that must have moved after the traffic phase — one per layer the
#: tentpole instruments.  ``(metric name, labels, minimum value)``.
REQUIRED_SERIES: tuple[tuple[str, dict[str, str], float], ...] = (
    ("repro_http_requests_total", {}, 1),
    ("repro_http_request_seconds_count", {"route": "/estimate"}, 1),
    ("repro_scheduler_requests_total", {}, 1),
    ("repro_scheduler_batch_seconds_count", {}, 1),
    ("repro_registry_build_seconds_count", {"graph": "g"}, 1),
    ("repro_registry_hits_total", {}, 1),
    ("repro_build_stage_seconds_count", {"stage": "histogram"}, 1),
    ("repro_build_stage_seconds_count", {"stage": "catalog"}, 1),
    ("repro_catalog_build_seconds_count", {}, 1),
    ("repro_cache_misses_total", {"kind": "catalog"}, 1),
)


def _get(url: str) -> tuple[int, str, str]:
    """``(status, body, content type)`` for a GET, keeping error bodies."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8"), exc.headers.get("Content-Type", "")


def run_scenario(quick: bool = False) -> dict[str, object]:
    """Boot, drive, scrape, drain; returns the JSON-ready report."""
    from repro.engine import EngineConfig
    from repro.exceptions import ServiceRequestError
    from repro.graph.generators import zipf_labeled_graph
    from repro.serving import ServiceClient, SessionRegistry, make_server

    estimate_requests = 10 if quick else 30
    report: dict[str, object] = {"quick": quick}

    with tempfile.TemporaryDirectory(prefix="repro-obs-") as cache_dir:
        registry = SessionRegistry(
            cache_dir=cache_dir,
            default_config=EngineConfig(max_length=2, bucket_count=8),
        )
        registry.register(
            "g", graph=zipf_labeled_graph(40, 160, 3, skew=1.0, seed=13, name="g")
        )
        server = make_server(registry, port=0, window_seconds=0.001)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(base, timeout=10, max_retries=3)
            paths = ["1/2", "2", "3/3", "2/1"]

            # Pre-drain readiness, before any build.
            status, body, _ = _get(f"{base}/readyz")
            report["readyz_ready"] = status == 200 and json.loads(body)["status"] == "ready"

            # Traffic: estimates (cold build on the first), a warm, a 404.
            for _ in range(estimate_requests):
                client.estimate("g", paths)
            traced_request_id = client.last_request_id
            client.warm("g")
            try:
                client.estimate("nope", paths)
                report["unknown_graph_rejected"] = False
            except ServiceRequestError as exc:
                report["unknown_graph_rejected"] = exc.status == 404

            # The scrape: valid exposition, every required series moved.
            status, exposition, content_type = _get(f"{base}/metrics")
            report["metrics_status"] = status
            report["metrics_content_type_ok"] = content_type.startswith(
                "text/plain"
            ) and "version=0.0.4" in content_type
            lines = exposition.splitlines()
            helps = sum(line.startswith("# HELP ") for line in lines)
            types = sum(line.startswith("# TYPE ") for line in lines)
            report["metrics_help_type_pairs"] = helps == types and helps > 0
            missing = [
                f"{name}{labels or ''} = {scrape_metric(exposition, name, **labels)}"
                f" (need >= {minimum})"
                for name, labels, minimum in REQUIRED_SERIES
                if scrape_metric(exposition, name, **labels) < minimum
            ]
            report["metrics_missing_series"] = missing
            report["http_requests_total"] = scrape_metric(
                exposition, "repro_http_requests_total"
            )
            report["scheduler_requests_total"] = scrape_metric(
                exposition, "repro_scheduler_requests_total"
            )
            report["estimate_404_counted"] = (
                scrape_metric(
                    exposition,
                    "repro_http_requests_total",
                    route="/estimate",
                    status="404",
                )
                >= 1
            )
            report["sessions_resident_gauge"] = scrape_metric(
                exposition, "repro_registry_sessions_resident"
            )

            # The trace store retains the client's request id with spans
            # from across the scheduler thread boundary.
            status, body, _ = _get(f"{base}/traces")
            rows = json.loads(body)["recent"] + json.loads(body)["slowest"]
            row = next(
                (r for r in rows if r["request_id"] == traced_request_id), None
            )
            report["trace_found"] = row is not None
            span_names = {span["name"] for span in row["spans"]} if row else set()
            report["trace_crosses_scheduler"] = "scheduler.estimate_batch" in span_names

            # The drain window: readiness flips, liveness does not.
            server.begin_drain()
            status, body, _ = _get(f"{base}/healthz")
            document = json.loads(body)
            report["healthz_draining"] = (
                status == 200 and document["status"] == "draining"
            )
            status, body, _ = _get(f"{base}/readyz")
            report["readyz_unready_after_drain"] = (
                status == 503 and json.loads(body)["status"] == "unready"
            )
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=15)
    return report


def collect_failures(report: dict[str, object]) -> list[str]:
    """Every observability expectation the report violates, one line each."""
    failures: list[str] = []
    expectations = (
        ("readyz_ready", "/readyz did not answer ready before the drain"),
        ("unknown_graph_rejected", "an unknown graph was not rejected with 404"),
        ("metrics_content_type_ok", "/metrics content type is not text 0.0.4"),
        ("metrics_help_type_pairs", "/metrics HELP/TYPE headers are unpaired"),
        ("estimate_404_counted", "the 404 was not counted by route/status"),
        ("trace_found", "the client's X-Request-Id is not in /traces"),
        (
            "trace_crosses_scheduler",
            "the retained trace has no scheduler-side spans",
        ),
        ("healthz_draining", "/healthz did not report the drain (or went down)"),
        ("readyz_unready_after_drain", "/readyz stayed ready during the drain"),
    )
    for key, message in expectations:
        if not report.get(key, False):
            failures.append(message)
    if report.get("metrics_status") != 200:
        failures.append(f"/metrics answered {report.get('metrics_status')}")
    for line in report.get("metrics_missing_series", []):
        failures.append(f"/metrics series did not move: {line}")
    if report.get("sessions_resident_gauge", 0) < 1:
        failures.append("the resident-sessions gauge reads 0 with a built session")
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the scenario, report expectations, exit non-zero on breach."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write the report to this path")
    parser.add_argument(
        "--quick", action="store_true", help="fewer requests (CI smoke mode)"
    )
    args = parser.parse_args(argv)
    try:
        report = run_scenario(quick=args.quick)
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"obs FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        Path(args.json).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    failures = collect_failures(report)
    for failure in failures:
        print(f"obs FAILURE: {failure}", file=sys.stderr)
    print(
        f"obs: {report['http_requests_total']:.0f} HTTP requests scraped, "
        f"{report['scheduler_requests_total']:.0f} through the scheduler, "
        f"trace retained: {report['trace_found']}, readiness flipped on "
        f"drain: {report['readyz_unready_after_drain']}"
    )
    return 0 if not failures else 1


if __name__ == "__main__":
    raise SystemExit(main())
