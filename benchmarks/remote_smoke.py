#!/usr/bin/env python
"""End-to-end smoke of the remote artifact tier (CI ``remote-smoke`` job).

Drives the fleet warm-start loop through the real CLI, process boundaries
included:

1. ``repro artifact-server`` starts as a subprocess on an ephemeral port
   (the bound address is parsed from its stdout);
2. a cold ``repro engine build --cache-dir A --remote-cache URL`` builds
   from scratch and pushes the catalog/histogram/positions trio;
3. a second build with a **fresh** cache directory warm-starts entirely
   from the store (``catalog_from_cache`` in its ``--json`` stats);
4. ``repro engine cache list --remote`` audits presence: every pushed
   primary must show ``both``;
5. fault phase — the server is killed and the build is rerun against yet
   another fresh cache: it must degrade to a cold build with exit 0, and
   no ``.tmp`` debris may remain in any cache directory.

Exits non-zero on any failed expectation, so a broken remote path fails
the CI job even when the unit suite is green.

Usage::

    python benchmarks/remote_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Seconds to wait for the artifact server to announce its address.
SERVER_START_DEADLINE = 30.0


def main() -> int:
    """Entry point: readable one-line failures, never a traceback."""
    try:
        return _run()
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"remote-smoke FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _run() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)
            print(f"remote-smoke FAILURE: {message}", file=sys.stderr)

    def cli(*argv: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )

    with tempfile.TemporaryDirectory(prefix="repro-remote-smoke-") as tmp:
        root = Path(tmp)
        graph_path = root / "graph.tsv"
        generated = cli(
            "generate", "moreno-health", "--scale", "0.05", "--seed", "5",
            "-o", str(graph_path),
        )
        check(generated.returncode == 0, "could not generate the graph")
        if generated.returncode != 0:
            return 1

        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "artifact-server",
                "--dir", str(root / "store"), "--port", "0",
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            url = _wait_for_address(server)

            # Phase 1: cold build pushes to the store.
            cold = cli(
                "engine", "build", str(graph_path), "-k", "3",
                "--cache-dir", str(root / "cacheA"),
                "--remote-cache", url, "--json",
            )
            check(cold.returncode == 0, f"cold build failed: {cold.stderr.strip()}")
            cold_stats = json.loads(cold.stdout)
            check(
                cold_stats["catalog_from_cache"] is False,
                "first build was unexpectedly warm",
            )
            deadline = time.perf_counter() + 30
            while (
                len(list((root / "store").iterdir())) < 3
                and time.perf_counter() < deadline
            ):
                time.sleep(0.1)
            stored = sorted(path.name for path in (root / "store").iterdir())
            check(
                len(stored) >= 3,
                f"cold build pushed {len(stored)} artifacts, expected >= 3: {stored}",
            )

            # Phase 2: a fresh cache warm-starts from the store.
            warm = cli(
                "engine", "build", str(graph_path), "-k", "3",
                "--cache-dir", str(root / "cacheB"),
                "--remote-cache", url, "--json",
            )
            check(warm.returncode == 0, f"warm build failed: {warm.stderr.strip()}")
            warm_stats = json.loads(warm.stdout)
            check(
                warm_stats["catalog_from_cache"] is True,
                "second process did not warm-start from the remote store",
            )

            # Phase 3: the presence audit sees every primary on both tiers.
            audit = cli(
                "engine", "cache", "list",
                "--cache-dir", str(root / "cacheB"),
                "--remote", url, "--json",
            )
            check(audit.returncode == 0, f"cache audit failed: {audit.stderr.strip()}")
            document = json.loads(audit.stdout)
            presence = {
                row["file"]: row["presence"] for row in document["files"]
            }
            primaries = [
                name
                for name in presence
                if name.endswith((".npz", ".json"))
                or (name.startswith("positions-") and name.endswith(".npy"))
            ]
            check(bool(primaries), f"audit saw no primary artifacts: {presence}")
            wrong = {
                name: presence[name]
                for name in primaries
                if presence[name] != "both"
            }
            check(not wrong, f"primaries not present on both tiers: {wrong}")
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung server
                server.kill()
                server.wait(timeout=15)

        # Phase 4: the store is gone; the build must degrade to cold.
        degraded = cli(
            "engine", "build", str(graph_path), "-k", "3",
            "--cache-dir", str(root / "cacheC"),
            "--remote-cache", url, "--json",
        )
        check(
            degraded.returncode == 0,
            f"build with a dead store failed: {degraded.stderr.strip()}",
        )
        if degraded.returncode == 0:
            degraded_stats = json.loads(degraded.stdout)
            check(
                degraded_stats["catalog_from_cache"] is False,
                "dead-store build claimed a warm start",
            )
            check(
                degraded_stats["domain_size"] > 0,
                "dead-store build produced an empty domain",
            )

        # No half-written files anywhere, in caches or the store directory.
        debris = [
            str(path)
            for name in ("cacheA", "cacheB", "cacheC", "store")
            if (root / name).exists()
            for path in (root / name).glob(".*.tmp*")
        ]
        check(not debris, f".tmp debris left behind: {debris}")

    if not failures:
        print(
            "remote-smoke ok: cold build pushed, fresh process warm-started, "
            "presence audit clean, dead-store build degraded cold, no debris"
        )
    return 0 if not failures else 1


def _wait_for_address(server: subprocess.Popen) -> str:
    """Parse the announced ``http://host:port`` from the server's stdout."""
    assert server.stdout is not None
    deadline = time.perf_counter() + SERVER_START_DEADLINE
    while True:
        if server.poll() is not None:
            raise RuntimeError(
                f"artifact server exited early with code {server.returncode}"
            )
        line = server.stdout.readline()
        match = re.search(r"on (http://[^\s]+)", line)
        if match:
            return match.group(1)
        if time.perf_counter() > deadline:
            raise RuntimeError("artifact server never announced its address")


if __name__ == "__main__":
    raise SystemExit(main())
