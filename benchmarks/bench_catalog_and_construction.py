"""Benchmarks: catalog construction and histogram construction.

Not a paper table, but the two dominant offline costs of the approach: the
one-off exact evaluation of every label path (catalog build) and the
per-ordering histogram construction.  Tracked so regressions in the
substrate show up even when the experiment-level benchmarks still pass.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.histogram.builder import domain_frequencies, make_histogram
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog


def test_catalog_build_k3(benchmark):
    graph = load_dataset("moreno-health", scale=0.05)
    catalog = benchmark.pedantic(
        SelectivityCatalog.from_graph, args=(graph, 3), rounds=1, iterations=1
    )
    assert catalog.domain_size == 258


def test_catalog_build_k4(benchmark):
    graph = load_dataset("moreno-health", scale=0.05)
    catalog = benchmark.pedantic(
        SelectivityCatalog.from_graph, args=(graph, 4), rounds=1, iterations=1
    )
    assert catalog.domain_size == 1554


@pytest.mark.parametrize("kind", ["equi-width", "equi-depth", "maxdiff", "end-biased", "v-optimal"])
def test_histogram_construction(benchmark, moreno_catalog, kind):
    ordering = make_ordering("sum-based", catalog=moreno_catalog)
    frequencies = domain_frequencies(moreno_catalog, ordering)
    histogram = benchmark(make_histogram, frequencies, kind, 32)
    assert histogram.bucket_count <= 32


def test_domain_frequency_layout(benchmark, moreno_catalog):
    ordering = make_ordering("sum-based", catalog=moreno_catalog)
    frequencies = benchmark(domain_frequencies, moreno_catalog, ordering)
    assert frequencies.shape == (moreno_catalog.domain_size,)
