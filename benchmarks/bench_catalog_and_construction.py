"""Benchmarks: catalog construction and histogram construction.

Not a paper table, but the two dominant offline costs of the approach: the
one-off exact evaluation of every label path (catalog build) and the
per-ordering histogram construction.  Tracked so regressions in the
substrate show up even when the experiment-level benchmarks still pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import load_dataset
from repro.graph.generators import zipf_labeled_graph
from repro.histogram.builder import domain_frequencies, make_histogram
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import compute_selectivities, compute_selectivity_vector


def test_catalog_build_k3(benchmark):
    graph = load_dataset("moreno-health", scale=0.05)
    catalog = benchmark.pedantic(
        SelectivityCatalog.from_graph, args=(graph, 3), rounds=1, iterations=1
    )
    assert catalog.domain_size == 258


def test_catalog_build_k4(benchmark):
    graph = load_dataset("moreno-health", scale=0.05)
    catalog = benchmark.pedantic(
        SelectivityCatalog.from_graph, args=(graph, 4), rounds=1, iterations=1
    )
    assert catalog.domain_size == 1554


@pytest.fixture(scope="module")
def sparse_bench_graph():
    """A zero-subtree-dominated graph (|L|=8, k=6 domain of ~300k paths)."""
    return zipf_labeled_graph(400, 400, 8, skew=0.8, seed=17, name="bench-sparse")


def test_columnar_build_sparse_k6(benchmark, sparse_bench_graph):
    vector = benchmark.pedantic(
        compute_selectivity_vector,
        args=(sparse_bench_graph, 6),
        rounds=1,
        iterations=1,
    )
    assert vector.size == 299_592


def test_dict_build_sparse_k6(benchmark, sparse_bench_graph):
    """The legacy dict builder over the same domain (the PR 1 baseline)."""
    selectivities = benchmark.pedantic(
        compute_selectivities,
        args=(sparse_bench_graph, 6),
        rounds=1,
        iterations=1,
    )
    assert len(selectivities) == 299_592


def test_columnar_build_process_backend(benchmark, sparse_bench_graph):
    vector = benchmark.pedantic(
        compute_selectivity_vector,
        args=(sparse_bench_graph, 6),
        kwargs={"backend": "process", "workers": 2},
        rounds=1,
        iterations=1,
    )
    assert np.array_equal(vector, compute_selectivity_vector(sparse_bench_graph, 6))


@pytest.mark.parametrize("kind", ["equi-width", "equi-depth", "maxdiff", "end-biased", "v-optimal"])
def test_histogram_construction(benchmark, moreno_catalog, kind):
    ordering = make_ordering("sum-based", catalog=moreno_catalog)
    frequencies = domain_frequencies(moreno_catalog, ordering)
    histogram = benchmark(make_histogram, frequencies, kind, 32)
    assert histogram.bucket_count <= 32


def test_domain_frequency_layout(benchmark, moreno_catalog):
    ordering = make_ordering("sum-based", catalog=moreno_catalog)
    frequencies = benchmark(domain_frequencies, moreno_catalog, ordering)
    assert frequencies.shape == (moreno_catalog.domain_size,)
