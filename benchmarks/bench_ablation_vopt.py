"""Benchmark: Ablation B — exact vs greedy V-optimal construction.

Quantifies the reproduction's substitution of a greedy-split V-optimal
approximation for the exact dynamic program on large domains, both in
construction time (the benchmark timing) and in quality (the printed
SSE / error ratios).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ablation_vopt import run_vopt_ablation, synthetic_distribution
from repro.experiments.reporting import format_records
from repro.histogram.vopt import VOptimalHistogram


def test_vopt_quality_ablation(benchmark):
    result = benchmark.pedantic(
        run_vopt_ablation,
        kwargs={"domain_size": 256, "bucket_counts": (4, 16, 64), "seed": 0},
        rounds=1,
        iterations=1,
    )
    print("\nAblation B — greedy vs exact V-optimal quality")
    print(format_records(result.records))
    print(f"\nworst greedy/exact SSE ratio:  {result.worst_sse_ratio():.3f}")
    print(f"mean greedy/exact error ratio: {result.mean_error_ratio():.3f}")
    # The greedy split can lose noticeably on adversarial small-β cells (the
    # point of the ablation is to measure that), but the *estimation error*
    # it induces stays close to exact.
    assert result.mean_error_ratio() < 1.25


def test_vopt_construction_exact(benchmark):
    frequencies = synthetic_distribution("zipf", 512, seed=1)
    histogram = benchmark(VOptimalHistogram, frequencies, 32, strategy="exact")
    assert histogram.bucket_count == 32


def test_vopt_construction_greedy(benchmark):
    frequencies = synthetic_distribution("zipf", 512, seed=1)
    histogram = benchmark(VOptimalHistogram, frequencies, 32, strategy="greedy")
    assert histogram.bucket_count == 32


def test_vopt_construction_greedy_large_domain(benchmark):
    rng = np.random.default_rng(7)
    frequencies = rng.integers(0, 1000, size=20_000).astype(float)
    histogram = benchmark.pedantic(
        VOptimalHistogram,
        args=(frequencies, 256),
        kwargs={"strategy": "greedy"},
        rounds=1,
        iterations=1,
    )
    assert histogram.bucket_count == 256
