"""Benchmarks: incremental catalog updates vs cold rebuilds.

Tracks the incremental-update claim: on a schema-structured graph (labels
compose only along the schema, so an edge delta localises to few first-label
subtrees) ``update_selectivity_vector`` beats a cold
``compute_selectivity_vector`` by rebuilding only the affected slices.
``benchmarks/run_all.py`` measures the acceptance floor (≥ 5× when ≤ 10% of
subtrees are touched) directly and records it in ``BENCH_engine.json``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph.delta import GraphDelta, affected_first_labels
from repro.graph.generators import ring_labeled_graph
from repro.paths.enumeration import (
    compute_selectivity_vector,
    update_selectivity_vector,
)

#: Ring shape: enough labels that a k-hop delta footprint stays a small
#: fraction of the first-label subtrees.
LABEL_COUNT = 20
LAYER_SIZE = 200
EDGES_PER_LABEL = 1500
MAX_LENGTH = 3
DELTA_EDGES = 100


@pytest.fixture(scope="module")
def delta_setup():
    """(post-delta graph, pre-delta vector, delta) over the ring graph."""
    graph = ring_labeled_graph(
        LABEL_COUNT, LAYER_SIZE, EDGES_PER_LABEL, seed=17, name="bench-ring"
    )
    old_vector = compute_selectivity_vector(graph, MAX_LENGTH)
    rng = random.Random(23)
    label = sorted(graph.labels())[LABEL_COUNT // 2]
    removals = rng.sample(list(graph.edges_with_label(label)), DELTA_EDGES // 2)
    layer = [str(i) for i in range(1, LABEL_COUNT + 1)].index(label)
    additions: set[tuple[int, str, int]] = set()
    while len(additions) < DELTA_EDGES // 2:
        source = layer * LAYER_SIZE + rng.randrange(LAYER_SIZE)
        target = ((layer + 1) % LABEL_COUNT) * LAYER_SIZE + rng.randrange(LAYER_SIZE)
        if not graph.has_edge(source, label, target):
            additions.add((source, label, target))
    delta = GraphDelta(additions=sorted(additions), removals=removals)
    updated = graph.copy()
    delta.apply(updated)
    return updated, old_vector, delta


def test_cold_rebuild(benchmark, delta_setup):
    updated, _, _ = delta_setup
    vector = benchmark(compute_selectivity_vector, updated, MAX_LENGTH)
    assert vector.size > 0


def test_incremental_update(benchmark, delta_setup):
    updated, old_vector, delta = delta_setup
    vector = benchmark(
        update_selectivity_vector, updated, MAX_LENGTH, old_vector, delta
    )
    assert vector.size == old_vector.size


def test_incremental_matches_cold(delta_setup):
    updated, old_vector, delta = delta_setup
    cold = compute_selectivity_vector(updated, MAX_LENGTH)
    patched = update_selectivity_vector(updated, MAX_LENGTH, old_vector, delta)
    assert np.array_equal(cold, patched)


def test_delta_footprint_is_local(delta_setup):
    updated, _, delta = delta_setup
    affected = affected_first_labels(updated, delta, MAX_LENGTH)
    assert 0 < len(affected) <= MAX_LENGTH
