#!/usr/bin/env python
"""End-to-end smoke of a sparse-storage session at dense-infeasible scale.

Generates a ``|L|=20, k=6`` synthetic graph — a 67,368,420-entry dense
domain, ~512 MB as an ``int64`` vector before counting the position table —
writes it to an edge list, starts the **real** ``repro serve`` CLI with
``--storage sparse``, and drives estimates through the stdlib client.  The
server process's peak RSS (``VmHWM``) must stay under 1 GiB: the proof that
the sparse catalog core, the lazy position mode and the O(nnz) histograms
hold end to end, not just in unit tests.

Run directly (CI job) or with ``--json`` (consumed by ``run_all.py``, which
records the numbers in ``BENCH_engine.json`` and enforces the RSS floor).

Usage::

    python benchmarks/sparse_smoke.py [--port 18791] [--json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: The smoke graph: |L| = 20 labels at k = 6 (dense domain 67,368,420).
GRAPH_SPEC = dict(vertices=2000, edges=400, labels=20, skew=0.5, seed=29)
MAX_LENGTH = 6

#: Peak-RSS ceiling for the serving process (the ISSUE acceptance bound).
RSS_CEILING_BYTES = 1 << 30


def peak_rss_bytes(pid: int) -> int | None:
    """The process's peak resident set (``VmHWM``), or ``None`` off-Linux."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def wait_for_server(client, deadline_seconds: float = 120.0) -> None:
    from repro.exceptions import ServingError

    deadline = time.perf_counter() + deadline_seconds
    while True:
        try:
            client.healthz()
            return
        except ServingError:
            if time.perf_counter() > deadline:
                raise
            time.sleep(0.2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=18791)
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON result document"
    )
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except Exception as exc:  # noqa: BLE001 - smoke harness boundary
        print(f"sparse smoke FAILURE: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


def _run(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.graph.generators import zipf_labeled_graph
    from repro.graph.io import write_edge_list
    from repro.paths.catalog import SelectivityCatalog
    from repro.serving import ServiceClient

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)
            print(f"sparse smoke FAILURE: {message}", file=sys.stderr)

    graph = zipf_labeled_graph(
        GRAPH_SPEC["vertices"],
        GRAPH_SPEC["edges"],
        GRAPH_SPEC["labels"],
        skew=GRAPH_SPEC["skew"],
        seed=GRAPH_SPEC["seed"],
        name="sparse-smoke",
    )
    # Reference truths from an in-process sparse catalog: the served session
    # must agree on which paths exist at all.
    reference = SelectivityCatalog.from_graph(graph, MAX_LENGTH, storage="sparse")
    nonzero = [str(path) for path in reference.nonzero_paths()[:32]]
    check(len(nonzero) >= 8, f"degenerate smoke graph: only {len(nonzero)} paths")

    result: dict[str, object] = {
        "labels": GRAPH_SPEC["labels"],
        "max_length": MAX_LENGTH,
        "domain_size": reference.domain_size,
        "nnz": reference.nnz,
        "density": reference.density,
        "rss_ceiling_bytes": RSS_CEILING_BYTES,
    }

    with tempfile.TemporaryDirectory() as tmp:
        graph_path = Path(tmp) / "graph.tsv"
        write_edge_list(graph, graph_path)

        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--graph",
                f"big={graph_path}",
                "--port",
                str(args.port),
                "-k",
                str(MAX_LENGTH),
                "--buckets",
                "64",
                "--storage",
                "sparse",
                # One worker process: the RSS measurement below reads this
                # pid's VmHWM and must cover the process that built/served.
                "--workers",
                "1",
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{args.port}", timeout=300.0)
            wait_for_server(client)

            started = time.perf_counter()
            build = client.warm("big")
            build_seconds = time.perf_counter() - started
            check(
                build.get("domain_size") == reference.domain_size,
                f"served domain {build.get('domain_size')} != "
                f"{reference.domain_size}",
            )

            rows = client.graphs()
            check(
                bool(rows) and rows[0].get("catalog_storage") == "sparse",
                f"server did not build a sparse catalog: {rows}",
            )
            memory_bytes = rows[0].get("memory_bytes") if rows else None

            estimates = client.estimate("big", nonzero)
            check(len(estimates) == len(nonzero), "estimate arity mismatch")
            check(
                bool(np.all(np.asarray(estimates) >= 0.0)),
                "negative estimates served",
            )

            rss = peak_rss_bytes(server.pid)
            result.update(
                {
                    "build_seconds": build_seconds,
                    "session_memory_bytes": memory_bytes,
                    "max_rss_bytes": rss,
                    "estimated_paths": len(nonzero),
                }
            )
            if rss is not None:
                check(
                    rss < RSS_CEILING_BYTES,
                    f"server peak RSS {rss / 2**20:.0f} MiB >= 1 GiB",
                )
            if not failures and not args.json:
                rss_note = f"{rss / 2**20:.0f} MiB" if rss is not None else "n/a"
                print(
                    f"sparse smoke ok: domain {reference.domain_size:,} "
                    f"(nnz {reference.nnz}) served with peak RSS {rss_note}, "
                    f"build {build_seconds:.1f}s"
                )
        finally:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                server.kill()

    result["ok"] = not failures
    if args.json:
        print(json.dumps(result))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
