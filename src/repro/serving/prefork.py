"""Pre-fork multi-process serving tier.

One parent process binds the listening socket (and optionally pre-builds
every registered session so the artifact cache is warm), then forks
``worker_count`` children.  Each child runs the ordinary
:func:`~repro.serving.http.make_server` stack — its own
:class:`~repro.serving.registry.SessionRegistry`, scheduler threads and
``ThreadingHTTPServer`` accept loop — against read-only memory-mapped
catalog artifacts, so the large arrays are file-backed pages every worker
shares instead of N private copies.

Socket sharing strategy
-----------------------
Where the platform offers ``SO_REUSEPORT`` each worker binds its *own*
socket to the parent's resolved address and the kernel load-balances
accepted connections across them.  Elsewhere the workers run a classic
inherited-FD accept loop on the one socket the parent bound before
forking.  Either way the parent itself never accepts a connection.

Lifecycle
---------
* A worker that exits unexpectedly is respawned; consecutive fast deaths
  back the respawn off exponentially (``backoff_seconds`` doubling up to
  ``backoff_max_seconds``) so a crash-looping worker cannot spin the
  parent at 100% CPU.
* ``SIGTERM``/``SIGINT`` to the parent forwards ``SIGTERM`` to every
  worker; each worker's own handler flips ``/readyz`` to 503 first
  (``begin_drain``) and then drains in-flight requests before exiting, so
  a load balancer sees the drain while answers are still being written.
  The parent waits for all children, escalating to ``SIGKILL`` only after
  ``drain_seconds``.
* Observability is **per worker**: ``/metrics``, ``/stats`` and
  ``/traces`` describe only the worker that happened to answer the
  request.  Scrapers must aggregate across workers (or pin a worker);
  cross-request counter comparisons on one keep-alive connection stay
  consistent because a connection never migrates between workers.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from typing import Callable, Optional

from repro.exceptions import ServingError

__all__ = ["PreforkServer"]


def _bind_socket(
    host: str, port: int, *, reuse_port: bool, listen: bool
) -> socket.socket:
    """Bind ``host:port``; optionally with ``SO_REUSEPORT`` and a listen().

    ``listen=False`` matters in the ``SO_REUSEPORT`` topology: the kernel
    spreads connections across every *listening* socket on the port, so
    the parent claims the port (and resolves an ephemeral one) with a
    bound-but-silent socket while only the workers listen — a listening
    parent would swallow its share of connections and never accept them.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except OSError:
        sock.close()
        raise
    return sock


class PreforkServer:
    """Parent-side supervisor for a fleet of forked serving workers.

    Parameters
    ----------
    host / port:
        Address to serve on; ``port=0`` binds an ephemeral port (read the
        resolved one back from :attr:`port` — the socket is bound in the
        constructor, before any fork).
    worker_count:
        Number of worker processes to fork (must be >= 1).
    registry_factory:
        Zero-argument callable building a fresh
        :class:`~repro.serving.registry.SessionRegistry`; called once in
        each child *after* the fork so scheduler threads and locks are
        born in the process that uses them.
    server_factory:
        ``(registry, inherited_socket) ->`` server callable building the
        worker's :class:`~repro.serving.http.EstimationHTTPServer` on the
        shared socket; also called post-fork, in the child.
    warm:
        Optional zero-argument callable the parent runs once before
        forking (typically: build every session so workers find a warm
        artifact cache).
    backoff_seconds / backoff_max_seconds / stable_seconds:
        Respawn backoff: a worker that lived less than ``stable_seconds``
        doubles the pause before its replacement is forked, capped at
        ``backoff_max_seconds``; a stable worker resets the schedule.
    drain_seconds:
        How long a terminating parent waits for workers to drain before
        escalating to ``SIGKILL``.
    """

    def __init__(
        self,
        *,
        host: str,
        port: int,
        worker_count: int,
        registry_factory: Callable[[], object],
        server_factory: Callable[..., object],
        warm: Optional[Callable[[], None]] = None,
        backoff_seconds: float = 0.1,
        backoff_max_seconds: float = 2.0,
        stable_seconds: float = 5.0,
        drain_seconds: float = 15.0,
    ) -> None:
        if worker_count < 1:
            raise ServingError("worker_count must be >= 1")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ServingError("pre-fork serving requires os.fork (POSIX only)")
        self._worker_count = worker_count
        self._registry_factory = registry_factory
        self._server_factory = server_factory
        self._warm = warm
        self._backoff = backoff_seconds
        self._backoff_max = backoff_max_seconds
        self._stable_seconds = stable_seconds
        self._drain_seconds = drain_seconds
        self._reuse_port = hasattr(socket, "SO_REUSEPORT")
        self._socket = _bind_socket(
            host, port, reuse_port=self._reuse_port, listen=not self._reuse_port
        )
        self._host, self._port = self._socket.getsockname()[:2]
        self._children: dict[int, float] = {}  # pid -> fork time
        self._draining = False

    @property
    def port(self) -> int:
        """The resolved listening port (useful with ``port=0``)."""
        return self._port

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` address."""
        return (self._host, self._port)

    # ------------------------------------------------------------------
    # child side
    # ------------------------------------------------------------------
    def _worker_socket(self) -> socket.socket:
        """The socket this worker should accept on.

        With ``SO_REUSEPORT`` the worker binds its own socket so the
        kernel load-balances connections across workers; the inherited
        one is closed.  If that bind fails (the option unsupported at
        bind time), fall back to the inherited-FD accept loop —
        correctness over balance.  Either way the server's
        ``server_activate`` issues the ``listen()``.
        """
        if self._reuse_port:
            try:
                own = _bind_socket(
                    self._host, self._port, reuse_port=True, listen=False
                )
            except OSError:
                return self._socket
            self._socket.close()
            return own
        return self._socket

    def _child_main(self) -> None:
        """Run one worker to completion; never returns to caller code."""
        exit_code = 0
        try:
            sock = self._worker_socket()
            registry = self._registry_factory()
            server = self._server_factory(registry, sock)

            def _drain(signum: int, frame: object) -> None:
                server.begin_drain()  # /readyz flips to 503 first
                threading.Thread(target=server.shutdown, daemon=True).start()

            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(signum, _drain)
            try:
                server.serve_forever()
            finally:
                server.close()
        except BaseException as exc:  # noqa: BLE001 - process boundary
            print(
                f"[prefork] worker pid={os.getpid()} crashed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
                flush=True,
            )
            exit_code = 1
        # _exit, not sys.exit: unwinding into the parent's CLI stack from
        # a forked child would run its atexit hooks and finally blocks a
        # second time.
        os._exit(exit_code)

    # ------------------------------------------------------------------
    # parent side
    # ------------------------------------------------------------------
    def _spawn(self) -> int:
        pid = os.fork()
        if pid == 0:
            self._child_main()
            raise AssertionError("unreachable")  # pragma: no cover
        self._children[pid] = time.monotonic()
        return pid

    def _terminate_children(self, signum: int = signal.SIGTERM) -> None:
        for pid in list(self._children):
            try:
                os.kill(pid, signum)
            except ProcessLookupError:  # pragma: no cover - already reaped
                pass

    def _install_signal_handlers(self) -> None:
        def _drain(signum: int, frame: object) -> None:
            # PEP 475 retries the blocking waitpid after this handler
            # returns, so the forwarding must happen here: the children
            # exit, waitpid reaps them, and run()'s loop ends.  A hung
            # worker would park waitpid forever, hence the escalation
            # timer rather than a deadline check inside the loop.
            if self._draining:
                return
            self._draining = True
            print(
                f"[prefork] signal {signum}: draining {len(self._children)} "
                "worker(s)",
                file=sys.stderr,
                flush=True,
            )
            self._terminate_children()
            killer = threading.Timer(
                self._drain_seconds,
                lambda: self._terminate_children(signal.SIGKILL),
            )
            killer.daemon = True
            killer.start()

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, _drain)
            except ValueError:  # pragma: no cover - non-main thread
                pass

    def run(self) -> int:
        """Fork the workers and supervise until drained; returns exit code."""
        if self._warm is not None:
            self._warm()
        self._install_signal_handlers()
        failures = 0
        for _ in range(self._worker_count):
            self._spawn()
        while self._children:
            try:
                pid, status = os.waitpid(-1, 0)
            except InterruptedError:  # pragma: no cover - pre-PEP475 paths
                continue
            except ChildProcessError:  # pragma: no cover - raced a reap
                break
            born = self._children.pop(pid, time.monotonic())
            if self._draining:
                continue
            lifetime = time.monotonic() - born
            code = os.waitstatus_to_exitcode(status)
            if lifetime < self._stable_seconds:
                failures += 1
            else:
                failures = 0
            pause = min(self._backoff_max, self._backoff * (2 ** max(0, failures - 1)))
            print(
                f"[prefork] worker pid={pid} exited "
                f"({'signal ' + str(-code) if code < 0 else 'code ' + str(code)}) "
                f"after {lifetime:.1f}s; respawning in {pause:.2f}s",
                file=sys.stderr,
                flush=True,
            )
            # An interruptible pause: a drain signal during the sleep
            # must not be followed by a fresh fork.
            end = time.monotonic() + pause
            while not self._draining and time.monotonic() < end:
                time.sleep(min(0.05, max(0.0, end - time.monotonic())))
            if self._draining:
                continue
            self._spawn()
        self._socket.close()
        print("[prefork] drained; bye", file=sys.stderr, flush=True)
        return 0
