"""The concurrent estimation service.

This subsystem turns the single-graph :class:`~repro.engine.session.EstimationSession`
into a multi-graph, multi-client serving layer:

* :class:`~repro.serving.registry.SessionRegistry` owns many named sessions
  keyed by graph digest + config hash, builds each lazily on first use behind
  a single-flight lock, and evicts by LRU under a session-count and/or byte
  budget;
* :class:`~repro.serving.scheduler.EstimateScheduler` coalesces individual
  estimate requests arriving within a short window into one
  ``estimate_batch`` call per session, with backpressure via a bounded queue
  and latency/throughput counters on a
  :class:`~repro.serving.scheduler.ServiceStats`;
* :class:`~repro.serving.service.EstimationService` is the asyncio front-end
  (``await estimate / estimate_many / warm / evict``);
* :mod:`repro.serving.http` / :mod:`repro.serving.client` are a stdlib JSON
  HTTP endpoint and client, drivable end-to-end via ``repro serve`` and
  ``repro client`` with no dependencies beyond the standard library.  The
  HTTP API is versioned under ``/v1/`` (see ``docs/API.md``);
* :class:`~repro.serving.prefork.PreforkServer` scales the endpoint across
  CPU cores: one parent forks N workers sharing the listening socket, each
  running the full handler/scheduler stack against read-only memory-mapped
  catalog artifacts (``repro serve --workers N``);
* :mod:`repro.serving.artifacts` is the directory-backed content-addressed
  artifact server (``repro artifact-server``) behind which a fleet shares
  build artifacts through :class:`~repro.engine.remote.RemoteArtifactStore`.
"""

from repro.serving.artifacts import ArtifactHTTPServer, make_artifact_server
from repro.serving.client import ServiceClient
from repro.serving.http import API_PREFIX, EstimationHTTPServer, make_server
from repro.serving.prefork import PreforkServer
from repro.serving.registry import RegistryStats, SessionRegistry
from repro.serving.scheduler import EstimateScheduler, ServiceStats
from repro.serving.service import EstimationService

__all__ = [
    "API_PREFIX",
    "ArtifactHTTPServer",
    "EstimateScheduler",
    "EstimationHTTPServer",
    "EstimationService",
    "PreforkServer",
    "RegistryStats",
    "ServiceClient",
    "ServiceStats",
    "SessionRegistry",
    "make_artifact_server",
    "make_server",
]
