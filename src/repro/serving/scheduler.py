"""Micro-batching scheduler: coalesce point estimates into batched calls.

Individual ``estimate(path)`` requests forfeit the engine's ~40x batch
advantage: the vectorised hot path only pays off when many paths go through
one ``estimate_batch`` call.  :class:`EstimateScheduler` restores that
advantage for concurrent clients: requests land in a bounded queue, a single
worker thread drains them, waits up to a *coalescing window* (default 2 ms)
for more to arrive, groups everything by session, and issues **one**
``estimate_batch`` per session per batch.  Callers get a
:class:`concurrent.futures.Future` resolving to their own slice of the
results.

Backpressure is the bounded queue: when ``max_pending`` requests are already
waiting, ``submit`` raises
:class:`~repro.exceptions.ServiceOverloadedError` instead of queueing more
work than the service can absorb (the HTTP layer maps this to 503 with a
``Retry-After`` hint).  An optional per-graph admission budget
(``max_pending_per_graph``) additionally rejects a single hot graph with
:class:`~repro.exceptions.GraphOverloadedError` (HTTP 429) before it can
monopolise the shared queue.

The worker runs under a supervisor: if the drain loop ever crashes (a bug,
an injected fault, ``MemoryError``), the in-flight batch's futures are
failed with :class:`~repro.exceptions.SchedulerCrashError` — no caller is
ever stranded on an unresolved future — the restart is counted in
:class:`ServiceStats`, and a fresh loop resumes from the intact queue.

Every batch feeds :class:`ServiceStats` — request/path/batch counters,
coalesced batch sizes, queue-wait and batch-execution latency — so the
service's throughput story is observable from ``/stats`` and asserted by the
benchmark suite.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional, Sequence, Union

from repro.exceptions import (
    GraphOverloadedError,
    SchedulerCrashError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.obs import tracing
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.paths.label_path import LabelPath
from repro.serving.registry import SessionRegistry
from repro.testing import faults

__all__ = ["ServiceStats", "EstimateScheduler"]

PathLike = Union[str, LabelPath]

#: Queue sentinel that tells the worker to exit after draining earlier work.
_SHUTDOWN = object()


class ServiceStats:
    """Latency/throughput counters for the serving layer, metric-backed.

    Every number lives in a :mod:`repro.obs.metrics` instrument — the same
    series ``GET /metrics`` exposes — and :meth:`snapshot` is a *view* over
    those instruments that keeps the historical ``/stats`` JSON keys (plus
    ``batch_paths_min``, new with the histogram backing).  Each
    ``ServiceStats`` owns fresh instrument objects: the registry's
    replace-on-register semantics make the newest instance the one the
    scrape endpoint shows.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else default_registry()
        self._started_monotonic = time.perf_counter()
        self.started_unix = time.time()
        self._requests = Counter(
            "repro_scheduler_requests_total",
            "Estimate requests accepted and drained by the scheduler.",
            registry=reg,
        )
        self._paths = Counter(
            "repro_scheduler_paths_total",
            "Paths estimated across every drained request.",
            registry=reg,
        )
        self._rejected = Counter(
            "repro_scheduler_rejected_total",
            "Requests rejected at admission, by scope (queue or graph).",
            labelnames=("scope",),
            registry=reg,
        )
        self._errors = Counter(
            "repro_scheduler_errors_total",
            "Requests that failed while being served.",
            registry=reg,
        )
        self._restarts = Counter(
            "repro_scheduler_worker_restarts_total",
            "Supervisor-driven worker restarts after a crash.",
            registry=reg,
        )
        self._crashed = Counter(
            "repro_scheduler_crashed_requests_total",
            "In-flight requests failed by a worker crash.",
            registry=reg,
        )
        self._batch_paths = Histogram(
            "repro_scheduler_batch_paths",
            "Paths per coalesced batch.",
            buckets=SIZE_BUCKETS,
            registry=reg,
        )
        self._batch_requests = Histogram(
            "repro_scheduler_batch_requests",
            "Requests coalesced into each batch.",
            buckets=SIZE_BUCKETS,
            registry=reg,
        )
        self._batch_sessions = Histogram(
            "repro_scheduler_batch_sessions",
            "Distinct sessions touched per batch.",
            buckets=SIZE_BUCKETS,
            registry=reg,
        )
        self._batch_seconds = Histogram(
            "repro_scheduler_batch_seconds",
            "Batch execution latency in seconds.",
            buckets=LATENCY_BUCKETS,
            registry=reg,
        )
        self._wait_seconds = Histogram(
            "repro_scheduler_wait_seconds",
            "Per-request queue wait in seconds.",
            buckets=LATENCY_BUCKETS,
            registry=reg,
        )

    def observe_rejected(self) -> None:
        """Count one request rejected at submission (queue full / closed)."""
        self._rejected.inc(scope="queue")

    def observe_graph_rejected(self) -> None:
        """Count one request rejected by a per-graph admission budget (429)."""
        self._rejected.inc(scope="graph")

    def observe_worker_restart(self, crashed_requests: int) -> None:
        """Count one supervisor-driven worker restart and its failed batch."""
        self._restarts.inc()
        if crashed_requests:
            self._crashed.inc(crashed_requests)

    def observe_error(self, count: int = 1) -> None:
        """Count ``count`` requests that failed while being served."""
        self._errors.inc(count)

    def observe_batch(
        self,
        *,
        requests: int,
        paths: int,
        sessions: int,
        batch_seconds: float,
        wait_seconds: Sequence[float],
    ) -> None:
        """Record one drained batch (sizes, per-request waits, fan-out)."""
        # Submission counters are updated here too (not on the submit
        # path) so 32 submitting threads never contend on these series.
        self._requests.inc(requests)
        self._paths.inc(paths)
        self._batch_requests.observe(requests)
        self._batch_paths.observe(paths)
        self._batch_sessions.observe(sessions)
        self._batch_seconds.observe(batch_seconds)
        for waited in wait_seconds:
            self._wait_seconds.observe(waited)

    def snapshot(self) -> dict[str, object]:
        """Counters + derived rates as one JSON-ready dict.

        A view over the backing instruments: the historical keys are all
        preserved, with ``batch_paths_min`` added alongside the existing
        max/mean so ``/stats`` reports the full batch-size spread.
        """
        uptime = time.perf_counter() - self._started_monotonic
        batches = self._batch_paths.count()
        requests = int(self._batch_requests.total())
        batch_paths_total = int(self._batch_paths.total())
        batch_seconds_total = self._batch_seconds.total()
        wait_count = self._wait_seconds.count()
        return {
            "uptime_seconds": uptime,
            "requests_total": int(self._requests.value()),
            "paths_total": int(self._paths.value()),
            "rejected_total": int(self._rejected.value(scope="queue")),
            "rejected_graph_total": int(self._rejected.value(scope="graph")),
            "errors_total": int(self._errors.value()),
            "worker_restarts": int(self._restarts.value()),
            "crashed_requests_total": int(self._crashed.value()),
            "batches_total": batches,
            "batch_requests_total": requests,
            "batch_paths_total": batch_paths_total,
            "batch_paths_min": int(self._batch_paths.minimum()),
            "batch_paths_max": int(self._batch_paths.maximum()),
            "batch_sessions_max": int(self._batch_sessions.maximum()),
            "mean_batch_paths": (batch_paths_total / batches) if batches else 0.0,
            "mean_coalesced_requests": (requests / batches) if batches else 0.0,
            "batch_seconds_total": batch_seconds_total,
            "batch_seconds_max": self._batch_seconds.maximum(),
            "mean_batch_seconds": (batch_seconds_total / batches) if batches else 0.0,
            "wait_seconds_max": self._wait_seconds.maximum(),
            "mean_wait_seconds": (
                (self._wait_seconds.total() / wait_count) if wait_count else 0.0
            ),
            "paths_per_second": (batch_paths_total / uptime) if uptime > 0 else 0.0,
        }


class _Request:
    """One queued estimate: a path batch bound to a graph and a future."""

    __slots__ = ("graph", "paths", "scalar", "future", "enqueued", "released", "trace")

    def __init__(self, graph: str, paths: list[PathLike], scalar: bool) -> None:
        self.graph = graph
        self.paths = paths
        self.scalar = scalar
        self.future: "Future[object]" = Future()
        self.enqueued = time.perf_counter()
        # Whether the per-graph admission counter has been released for this
        # request (idempotence guard: crash cleanup and normal delivery can
        # both try).
        self.released = False
        # The submitting thread's active trace, carried across the queue so
        # the worker can attach wait/batch spans to the originating request.
        self.trace = tracing.current_trace()


class EstimateScheduler:
    """Coalesce point estimates into per-session ``estimate_batch`` calls.

    Parameters
    ----------
    registry:
        The session source; unknown graph names fail the affected requests
        only, never the batch.
    window_seconds:
        How long the worker keeps collecting after the first request of a
        batch arrives (the micro-batching window).  ``0`` still coalesces
        whatever is already queued, it just never *waits* for more.
    max_batch_paths:
        Path budget per batch; the worker stops collecting once reached
        (requests are never split across batches, so a batch can overshoot
        by the last request's size).
    min_coalesce_paths:
        Once a *drained* queue has already yielded this many paths, the
        batch executes immediately instead of waiting out the window.  The
        window therefore only delays genuinely sparse traffic (where waiting
        is what buys coalescing), never a flood that has already coalesced.
    max_pending:
        Bound of the request queue — the backpressure limit (maps to a 503
        with ``Retry-After`` at the HTTP layer: the whole service is full).
    max_pending_per_graph:
        Optional per-graph admission budget.  When set, a graph whose
        pending request count reaches it gets
        :class:`~repro.exceptions.GraphOverloadedError` (HTTP 429) even
        while the global queue has room, so one hot graph cannot starve
        every other session's slice of the queue.  ``None`` disables the
        check.
    stats:
        Optional shared :class:`ServiceStats` (the HTTP layer passes one so
        every front-end feeds the same counters).
    """

    def __init__(
        self,
        registry: SessionRegistry,
        *,
        window_seconds: float = 0.002,
        max_batch_paths: int = 512,
        min_coalesce_paths: int = 64,
        max_pending: int = 4096,
        max_pending_per_graph: Optional[int] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if window_seconds < 0:
            raise ServingError("window_seconds must be >= 0")
        if max_batch_paths < 1:
            raise ServingError("max_batch_paths must be >= 1")
        if min_coalesce_paths < 1:
            raise ServingError("min_coalesce_paths must be >= 1")
        if max_pending < 1:
            raise ServingError("max_pending must be >= 1")
        if max_pending_per_graph is not None and max_pending_per_graph < 1:
            raise ServingError("max_pending_per_graph must be >= 1")
        self._registry = registry
        self._window = window_seconds
        self._max_batch_paths = max_batch_paths
        self._min_coalesce_paths = min_coalesce_paths
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_pending)
        self._closed = threading.Event()
        self._max_pending_per_graph = max_pending_per_graph
        self._pending_lock = threading.Lock()
        self._pending_per_graph: dict[str, int] = {}
        # The batch the worker is currently draining; the supervisor fails
        # its unresolved futures when the worker crashes.  Only the worker
        # thread reads or writes it, so no lock is needed.
        self._active_batch: Optional[list[_Request]] = None
        self.stats = stats if stats is not None else ServiceStats()
        # Scrape-time gauge: queue depth is read live from the queue rather
        # than written on every put/get (replace-on-register makes the
        # newest scheduler the one /metrics shows).
        self._queue_gauge = Gauge(
            "repro_scheduler_queue_depth",
            "Requests currently waiting in the scheduler queue.",
        )
        self._queue_gauge.set_function(self._queue.qsize)
        self._worker = threading.Thread(
            target=self._supervise, name="repro-estimate-scheduler", daemon=True
        )
        self._worker.start()

    @property
    def registry(self) -> SessionRegistry:
        """The session registry the scheduler serves from."""
        return self._registry

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, graph: str, path: PathLike) -> "Future[object]":
        """Queue one point estimate; the future resolves to a ``float``."""
        return self._enqueue(_Request(graph, [path], scalar=True))

    def submit_many(
        self, graph: str, paths: Sequence[PathLike]
    ) -> "Future[object]":
        """Queue a path batch; the future resolves to a ``list[float]``.

        The batch stays one request: it is never split, and its paths all
        resolve against the same session in the same ``estimate_batch`` call.
        """
        return self._enqueue(_Request(graph, list(paths), scalar=False))

    def _enqueue(self, request: _Request) -> "Future[object]":
        started = time.perf_counter()
        if self._closed.is_set():
            raise ServiceClosedError("scheduler is closed")
        budget = self._max_pending_per_graph
        if budget is not None:
            with self._pending_lock:
                pending = self._pending_per_graph.get(request.graph, 0)
                if pending >= budget:
                    self.stats.observe_graph_rejected()
                    raise GraphOverloadedError(request.graph, pending, budget)
                self._pending_per_graph[request.graph] = pending + 1
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._release(request)
            self.stats.observe_rejected()
            raise ServiceOverloadedError(
                f"request queue full ({self._queue.maxsize} pending)"
            ) from None
        if request.trace is not None:
            request.trace.add_span(
                "scheduler.enqueue",
                time.perf_counter() - started,
                graph=request.graph,
                paths=len(request.paths),
                queue_depth=self._queue.qsize(),
            )
        return request.future

    def _release(self, request: _Request) -> None:
        """Return the request's per-graph admission slot (idempotent)."""
        if self._max_pending_per_graph is None or request.released:
            return
        request.released = True
        with self._pending_lock:
            pending = self._pending_per_graph.get(request.graph, 0)
            if pending <= 1:
                self._pending_per_graph.pop(request.graph, None)
            else:
                self._pending_per_graph[request.graph] = pending - 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def worker_alive(self) -> bool:
        """Whether the supervised worker thread is running (readiness input)."""
        return self._worker.is_alive()

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has begun (no new work is accepted)."""
        return self._closed.is_set()

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, drain what was queued, join the worker."""
        if not self._closed.is_set():
            self._closed.set()
            # The sentinel lands behind every accepted request, so the
            # worker finishes real work before exiting.  put() may block
            # briefly if the queue is at capacity.
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)
        # A submit racing close() can slip its request in *behind* the
        # sentinel; the worker never sees it, so fail it here rather than
        # leave its future (and any awaiting coroutine) hanging forever.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is _SHUTDOWN:
                continue
            self._release(leftover)
            if leftover.future.set_running_or_notify_cancel():
                leftover.future.set_exception(
                    ServiceClosedError("scheduler closed before the request ran")
                )

    def __enter__(self) -> "EstimateScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the worker
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Run the worker loop, failing + restarting on a crash.

        Estimation errors are already mapped onto futures inside
        :meth:`_execute`; anything that escapes :meth:`_run` is a genuine
        worker crash (a bug, an injected fault, ``MemoryError``...).  The
        supervisor fails every unresolved future of the in-flight batch with
        :class:`~repro.exceptions.SchedulerCrashError` — so no caller is left
        awaiting forever — records the restart, and re-enters the loop with
        the queue intact.
        """
        while True:
            try:
                self._run()
                return
            except BaseException as exc:  # noqa: BLE001 - supervisor boundary
                batch = self._active_batch or []
                self._active_batch = None
                crashed = 0
                for request in batch:
                    self._release(request)
                    future = request.future
                    if future.done():
                        continue
                    try:
                        future.set_exception(
                            SchedulerCrashError(
                                f"scheduler worker crashed: {exc!r}; restarting"
                            )
                        )
                        crashed += 1
                    except Exception:  # noqa: BLE001 - racing resolution
                        pass
                self.stats.observe_worker_restart(crashed)
                if self._closed.is_set():
                    return

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            self._active_batch = batch
            total_paths = len(item.paths)
            deadline = time.perf_counter() + self._window
            shutdown = False
            while total_paths < self._max_batch_paths:
                try:
                    # Drain whatever is already queued without waiting...
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    # ...and only wait out the window for stragglers while
                    # the batch is still small.  Closed-loop clients (whose
                    # next request only comes after this batch answers)
                    # would otherwise pay the full window on every round
                    # with nothing to show for it.
                    if total_paths >= self._min_coalesce_paths:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        extra = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if extra is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(extra)
                total_paths += len(extra.paths)
            faults.fire("scheduler.worker", requests=len(batch))
            self._execute(batch)
            self._active_batch = None
            if shutdown:
                return

    def _execute(self, batch: list[_Request]) -> None:
        """Group, estimate, observe, deliver — in that order.

        Futures are resolved only *after* the stats are updated, so a client
        that reads ``/stats`` immediately after receiving its result always
        sees its own request counted.
        """
        started = time.perf_counter()
        by_graph: dict[str, list[_Request]] = {}
        live_requests = 0
        live_paths = 0
        waits: list[float] = []
        for request in batch:
            self._release(request)
            if not request.future.set_running_or_notify_cancel():
                continue  # the caller gave up while the request was queued
            waited = started - request.enqueued
            waits.append(waited)
            if request.trace is not None:
                request.trace.add_span("scheduler.wait", waited, graph=request.graph)
            live_requests += 1
            live_paths += len(request.paths)
            by_graph.setdefault(request.graph, []).append(request)
        deliveries: list[tuple[_Request, bool, object]] = []
        for graph, requests in by_graph.items():
            deliveries.extend(self._prepare_group(graph, requests))
        if live_requests:
            self.stats.observe_batch(
                requests=live_requests,
                paths=live_paths,
                sessions=len(by_graph),
                batch_seconds=time.perf_counter() - started,
                wait_seconds=waits,
            )
        for request, succeeded, payload in deliveries:
            if succeeded:
                request.future.set_result(payload)
            else:
                request.future.set_exception(payload)  # type: ignore[arg-type]

    def _prepare_group(
        self, graph: str, requests: list[_Request]
    ) -> list[tuple[_Request, bool, object]]:
        """One session, one ``estimate_batch`` call, results split per request.

        The batch leader's trace (the first traced request in the group) is
        activated around the registry lookup and the batched estimate, so
        nested spans — ``registry.build``, the session's per-stage spans —
        attach to it; every traced request additionally gets a flat
        ``scheduler.estimate_batch`` span covering the shared group work.
        """
        leader = next((r.trace for r in requests if r.trace is not None), None)
        group_started = time.perf_counter()

        def group_spans() -> None:
            group_seconds = time.perf_counter() - group_started
            for request in requests:
                if request.trace is not None:
                    request.trace.add_span(
                        "scheduler.estimate_batch",
                        group_seconds,
                        graph=graph,
                        coalesced_requests=len(requests),
                    )

        try:
            with tracing.activate(leader):
                session = self._registry.get(graph)
        except Exception as exc:  # noqa: BLE001 - every failure maps to futures
            self.stats.observe_error(len(requests))
            group_spans()
            return [(request, False, exc) for request in requests]
        paths: list[PathLike] = []
        for request in requests:
            paths.extend(request.paths)
        try:
            with tracing.activate(leader):
                estimates = session.estimate_batch(paths)
        except Exception:
            # One bad path must not fail its batch neighbours: retry each
            # request on its own so only the offender sees the error.
            return self._prepare_individually(session, requests)
        finally:
            group_spans()
        values = estimates.tolist()  # one C-level conversion for the whole batch
        deliveries: list[tuple[_Request, bool, object]] = []
        offset = 0
        for request in requests:
            count = len(request.paths)
            if request.scalar:
                deliveries.append((request, True, values[offset]))
            else:
                deliveries.append((request, True, values[offset : offset + count]))
            offset += count
        return deliveries

    def _prepare_individually(
        self, session, requests: list[_Request]
    ) -> list[tuple[_Request, bool, object]]:
        deliveries: list[tuple[_Request, bool, object]] = []
        for request in requests:
            try:
                estimates = session.estimate_batch(request.paths)
            except Exception as exc:  # noqa: BLE001
                self.stats.observe_error()
                deliveries.append((request, False, exc))
                continue
            if request.scalar:
                deliveries.append((request, True, float(estimates[0])))
            else:
                deliveries.append((request, True, estimates.tolist()))
        return deliveries

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<EstimateScheduler window={self._window * 1000:.1f}ms "
            f"max_batch={self._max_batch_paths} pending={self._queue.qsize()}>"
        )
