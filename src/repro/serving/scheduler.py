"""Micro-batching scheduler: coalesce point estimates into batched calls.

Individual ``estimate(path)`` requests forfeit the engine's ~40x batch
advantage: the vectorised hot path only pays off when many paths go through
one ``estimate_batch`` call.  :class:`EstimateScheduler` restores that
advantage for concurrent clients: requests land in a bounded queue, a single
worker thread drains them, waits up to a *coalescing window* (default 2 ms)
for more to arrive, groups everything by session, and issues **one**
``estimate_batch`` per session per batch.  Callers get a
:class:`concurrent.futures.Future` resolving to their own slice of the
results.

Backpressure is the bounded queue: when ``max_pending`` requests are already
waiting, ``submit`` raises
:class:`~repro.exceptions.ServiceOverloadedError` instead of queueing more
work than the service can absorb (the HTTP layer maps this to 503 with a
``Retry-After`` hint).  An optional per-graph admission budget
(``max_pending_per_graph``) additionally rejects a single hot graph with
:class:`~repro.exceptions.GraphOverloadedError` (HTTP 429) before it can
monopolise the shared queue.

The worker runs under a supervisor: if the drain loop ever crashes (a bug,
an injected fault, ``MemoryError``), the in-flight batch's futures are
failed with :class:`~repro.exceptions.SchedulerCrashError` — no caller is
ever stranded on an unresolved future — the restart is counted in
:class:`ServiceStats`, and a fresh loop resumes from the intact queue.

Every batch feeds :class:`ServiceStats` — request/path/batch counters,
coalesced batch sizes, queue-wait and batch-execution latency — so the
service's throughput story is observable from ``/stats`` and asserted by the
benchmark suite.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Optional, Sequence, Union

from repro.exceptions import (
    GraphOverloadedError,
    SchedulerCrashError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.paths.label_path import LabelPath
from repro.serving.registry import SessionRegistry
from repro.testing import faults

__all__ = ["ServiceStats", "EstimateScheduler"]

PathLike = Union[str, LabelPath]

#: Queue sentinel that tells the worker to exit after draining earlier work.
_SHUTDOWN = object()


class ServiceStats:
    """Thread-safe latency/throughput counters for the serving layer.

    All mutation happens under one lock; :meth:`snapshot` returns a plain
    dict with the derived rates, so readers never observe torn counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.perf_counter()
        self.started_unix = time.time()
        self.requests_total = 0
        self.paths_total = 0
        self.rejected_total = 0
        self.rejected_graph_total = 0
        self.errors_total = 0
        self.worker_restarts = 0
        self.crashed_requests_total = 0
        self.batches_total = 0
        self.batch_requests_total = 0
        self.batch_paths_total = 0
        self.batch_paths_max = 0
        self.batch_sessions_max = 0
        self.batch_seconds_total = 0.0
        self.batch_seconds_max = 0.0
        self.wait_seconds_total = 0.0
        self.wait_seconds_max = 0.0

    def observe_rejected(self) -> None:
        """Count one request rejected at submission (queue full / closed)."""
        with self._lock:
            self.rejected_total += 1

    def observe_graph_rejected(self) -> None:
        """Count one request rejected by a per-graph admission budget (429)."""
        with self._lock:
            self.rejected_graph_total += 1

    def observe_worker_restart(self, crashed_requests: int) -> None:
        """Count one supervisor-driven worker restart and its failed batch."""
        with self._lock:
            self.worker_restarts += 1
            self.crashed_requests_total += crashed_requests

    def observe_error(self, count: int = 1) -> None:
        """Count ``count`` requests that failed while being served."""
        with self._lock:
            self.errors_total += count

    def observe_batch(
        self,
        *,
        requests: int,
        paths: int,
        sessions: int,
        batch_seconds: float,
        wait_seconds_total: float,
        wait_seconds_max: float,
    ) -> None:
        """Record one drained batch (sizes, wait times, session fan-out)."""
        with self._lock:
            # Submission counters are updated here too (not on the submit
            # path) so 32 submitting threads never contend on this lock.
            self.requests_total += requests
            self.paths_total += paths
            self.batches_total += 1
            self.batch_requests_total += requests
            self.batch_paths_total += paths
            self.batch_paths_max = max(self.batch_paths_max, paths)
            self.batch_sessions_max = max(self.batch_sessions_max, sessions)
            self.batch_seconds_total += batch_seconds
            self.batch_seconds_max = max(self.batch_seconds_max, batch_seconds)
            self.wait_seconds_total += wait_seconds_total
            self.wait_seconds_max = max(self.wait_seconds_max, wait_seconds_max)

    def snapshot(self) -> dict[str, object]:
        """Counters + derived rates as one JSON-ready dict."""
        with self._lock:
            uptime = time.perf_counter() - self._started_monotonic
            batches = self.batches_total
            requests = self.batch_requests_total
            return {
                "uptime_seconds": uptime,
                "requests_total": self.requests_total,
                "paths_total": self.paths_total,
                "rejected_total": self.rejected_total,
                "rejected_graph_total": self.rejected_graph_total,
                "errors_total": self.errors_total,
                "worker_restarts": self.worker_restarts,
                "crashed_requests_total": self.crashed_requests_total,
                "batches_total": batches,
                "batch_requests_total": requests,
                "batch_paths_total": self.batch_paths_total,
                "batch_paths_max": self.batch_paths_max,
                "batch_sessions_max": self.batch_sessions_max,
                "mean_batch_paths": (self.batch_paths_total / batches) if batches else 0.0,
                "mean_coalesced_requests": (requests / batches) if batches else 0.0,
                "batch_seconds_total": self.batch_seconds_total,
                "batch_seconds_max": self.batch_seconds_max,
                "mean_batch_seconds": (self.batch_seconds_total / batches) if batches else 0.0,
                "wait_seconds_max": self.wait_seconds_max,
                "mean_wait_seconds": (self.wait_seconds_total / requests) if requests else 0.0,
                "paths_per_second": (self.batch_paths_total / uptime) if uptime > 0 else 0.0,
            }


class _Request:
    """One queued estimate: a path batch bound to a graph and a future."""

    __slots__ = ("graph", "paths", "scalar", "future", "enqueued", "released")

    def __init__(self, graph: str, paths: list[PathLike], scalar: bool) -> None:
        self.graph = graph
        self.paths = paths
        self.scalar = scalar
        self.future: "Future[object]" = Future()
        self.enqueued = time.perf_counter()
        # Whether the per-graph admission counter has been released for this
        # request (idempotence guard: crash cleanup and normal delivery can
        # both try).
        self.released = False


class EstimateScheduler:
    """Coalesce point estimates into per-session ``estimate_batch`` calls.

    Parameters
    ----------
    registry:
        The session source; unknown graph names fail the affected requests
        only, never the batch.
    window_seconds:
        How long the worker keeps collecting after the first request of a
        batch arrives (the micro-batching window).  ``0`` still coalesces
        whatever is already queued, it just never *waits* for more.
    max_batch_paths:
        Path budget per batch; the worker stops collecting once reached
        (requests are never split across batches, so a batch can overshoot
        by the last request's size).
    min_coalesce_paths:
        Once a *drained* queue has already yielded this many paths, the
        batch executes immediately instead of waiting out the window.  The
        window therefore only delays genuinely sparse traffic (where waiting
        is what buys coalescing), never a flood that has already coalesced.
    max_pending:
        Bound of the request queue — the backpressure limit (maps to a 503
        with ``Retry-After`` at the HTTP layer: the whole service is full).
    max_pending_per_graph:
        Optional per-graph admission budget.  When set, a graph whose
        pending request count reaches it gets
        :class:`~repro.exceptions.GraphOverloadedError` (HTTP 429) even
        while the global queue has room, so one hot graph cannot starve
        every other session's slice of the queue.  ``None`` disables the
        check.
    stats:
        Optional shared :class:`ServiceStats` (the HTTP layer passes one so
        every front-end feeds the same counters).
    """

    def __init__(
        self,
        registry: SessionRegistry,
        *,
        window_seconds: float = 0.002,
        max_batch_paths: int = 512,
        min_coalesce_paths: int = 64,
        max_pending: int = 4096,
        max_pending_per_graph: Optional[int] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        if window_seconds < 0:
            raise ServingError("window_seconds must be >= 0")
        if max_batch_paths < 1:
            raise ServingError("max_batch_paths must be >= 1")
        if min_coalesce_paths < 1:
            raise ServingError("min_coalesce_paths must be >= 1")
        if max_pending < 1:
            raise ServingError("max_pending must be >= 1")
        if max_pending_per_graph is not None and max_pending_per_graph < 1:
            raise ServingError("max_pending_per_graph must be >= 1")
        self._registry = registry
        self._window = window_seconds
        self._max_batch_paths = max_batch_paths
        self._min_coalesce_paths = min_coalesce_paths
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max_pending)
        self._closed = threading.Event()
        self._max_pending_per_graph = max_pending_per_graph
        self._pending_lock = threading.Lock()
        self._pending_per_graph: dict[str, int] = {}
        # The batch the worker is currently draining; the supervisor fails
        # its unresolved futures when the worker crashes.  Only the worker
        # thread reads or writes it, so no lock is needed.
        self._active_batch: Optional[list[_Request]] = None
        self.stats = stats if stats is not None else ServiceStats()
        self._worker = threading.Thread(
            target=self._supervise, name="repro-estimate-scheduler", daemon=True
        )
        self._worker.start()

    @property
    def registry(self) -> SessionRegistry:
        """The session registry the scheduler serves from."""
        return self._registry

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, graph: str, path: PathLike) -> "Future[object]":
        """Queue one point estimate; the future resolves to a ``float``."""
        return self._enqueue(_Request(graph, [path], scalar=True))

    def submit_many(
        self, graph: str, paths: Sequence[PathLike]
    ) -> "Future[object]":
        """Queue a path batch; the future resolves to a ``list[float]``.

        The batch stays one request: it is never split, and its paths all
        resolve against the same session in the same ``estimate_batch`` call.
        """
        return self._enqueue(_Request(graph, list(paths), scalar=False))

    def _enqueue(self, request: _Request) -> "Future[object]":
        if self._closed.is_set():
            raise ServiceClosedError("scheduler is closed")
        budget = self._max_pending_per_graph
        if budget is not None:
            with self._pending_lock:
                pending = self._pending_per_graph.get(request.graph, 0)
                if pending >= budget:
                    self.stats.observe_graph_rejected()
                    raise GraphOverloadedError(request.graph, pending, budget)
                self._pending_per_graph[request.graph] = pending + 1
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._release(request)
            self.stats.observe_rejected()
            raise ServiceOverloadedError(
                f"request queue full ({self._queue.maxsize} pending)"
            ) from None
        return request.future

    def _release(self, request: _Request) -> None:
        """Return the request's per-graph admission slot (idempotent)."""
        if self._max_pending_per_graph is None or request.released:
            return
        request.released = True
        with self._pending_lock:
            pending = self._pending_per_graph.get(request.graph, 0)
            if pending <= 1:
                self._pending_per_graph.pop(request.graph, None)
            else:
                self._pending_per_graph[request.graph] = pending - 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting work, drain what was queued, join the worker."""
        if not self._closed.is_set():
            self._closed.set()
            # The sentinel lands behind every accepted request, so the
            # worker finishes real work before exiting.  put() may block
            # briefly if the queue is at capacity.
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)
        # A submit racing close() can slip its request in *behind* the
        # sentinel; the worker never sees it, so fail it here rather than
        # leave its future (and any awaiting coroutine) hanging forever.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is _SHUTDOWN:
                continue
            self._release(leftover)
            if leftover.future.set_running_or_notify_cancel():
                leftover.future.set_exception(
                    ServiceClosedError("scheduler closed before the request ran")
                )

    def __enter__(self) -> "EstimateScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the worker
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        """Run the worker loop, failing + restarting on a crash.

        Estimation errors are already mapped onto futures inside
        :meth:`_execute`; anything that escapes :meth:`_run` is a genuine
        worker crash (a bug, an injected fault, ``MemoryError``...).  The
        supervisor fails every unresolved future of the in-flight batch with
        :class:`~repro.exceptions.SchedulerCrashError` — so no caller is left
        awaiting forever — records the restart, and re-enters the loop with
        the queue intact.
        """
        while True:
            try:
                self._run()
                return
            except BaseException as exc:  # noqa: BLE001 - supervisor boundary
                batch = self._active_batch or []
                self._active_batch = None
                crashed = 0
                for request in batch:
                    self._release(request)
                    future = request.future
                    if future.done():
                        continue
                    try:
                        future.set_exception(
                            SchedulerCrashError(
                                f"scheduler worker crashed: {exc!r}; restarting"
                            )
                        )
                        crashed += 1
                    except Exception:  # noqa: BLE001 - racing resolution
                        pass
                self.stats.observe_worker_restart(crashed)
                if self._closed.is_set():
                    return

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            self._active_batch = batch
            total_paths = len(item.paths)
            deadline = time.perf_counter() + self._window
            shutdown = False
            while total_paths < self._max_batch_paths:
                try:
                    # Drain whatever is already queued without waiting...
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    # ...and only wait out the window for stragglers while
                    # the batch is still small.  Closed-loop clients (whose
                    # next request only comes after this batch answers)
                    # would otherwise pay the full window on every round
                    # with nothing to show for it.
                    if total_paths >= self._min_coalesce_paths:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        extra = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if extra is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(extra)
                total_paths += len(extra.paths)
            faults.fire("scheduler.worker", requests=len(batch))
            self._execute(batch)
            self._active_batch = None
            if shutdown:
                return

    def _execute(self, batch: list[_Request]) -> None:
        """Group, estimate, observe, deliver — in that order.

        Futures are resolved only *after* the stats are updated, so a client
        that reads ``/stats`` immediately after receiving its result always
        sees its own request counted.
        """
        started = time.perf_counter()
        by_graph: dict[str, list[_Request]] = {}
        live_requests = 0
        live_paths = 0
        wait_total = 0.0
        wait_max = 0.0
        for request in batch:
            self._release(request)
            if not request.future.set_running_or_notify_cancel():
                continue  # the caller gave up while the request was queued
            waited = started - request.enqueued
            wait_total += waited
            wait_max = max(wait_max, waited)
            live_requests += 1
            live_paths += len(request.paths)
            by_graph.setdefault(request.graph, []).append(request)
        deliveries: list[tuple[_Request, bool, object]] = []
        for graph, requests in by_graph.items():
            deliveries.extend(self._prepare_group(graph, requests))
        if live_requests:
            self.stats.observe_batch(
                requests=live_requests,
                paths=live_paths,
                sessions=len(by_graph),
                batch_seconds=time.perf_counter() - started,
                wait_seconds_total=wait_total,
                wait_seconds_max=wait_max,
            )
        for request, succeeded, payload in deliveries:
            if succeeded:
                request.future.set_result(payload)
            else:
                request.future.set_exception(payload)  # type: ignore[arg-type]

    def _prepare_group(
        self, graph: str, requests: list[_Request]
    ) -> list[tuple[_Request, bool, object]]:
        """One session, one ``estimate_batch`` call, results split per request."""
        try:
            session = self._registry.get(graph)
        except Exception as exc:  # noqa: BLE001 - every failure maps to futures
            self.stats.observe_error(len(requests))
            return [(request, False, exc) for request in requests]
        paths: list[PathLike] = []
        for request in requests:
            paths.extend(request.paths)
        try:
            estimates = session.estimate_batch(paths)
        except Exception:
            # One bad path must not fail its batch neighbours: retry each
            # request on its own so only the offender sees the error.
            return self._prepare_individually(session, requests)
        values = estimates.tolist()  # one C-level conversion for the whole batch
        deliveries: list[tuple[_Request, bool, object]] = []
        offset = 0
        for request in requests:
            count = len(request.paths)
            if request.scalar:
                deliveries.append((request, True, values[offset]))
            else:
                deliveries.append((request, True, values[offset : offset + count]))
            offset += count
        return deliveries

    def _prepare_individually(
        self, session, requests: list[_Request]
    ) -> list[tuple[_Request, bool, object]]:
        deliveries: list[tuple[_Request, bool, object]] = []
        for request in requests:
            try:
                estimates = session.estimate_batch(request.paths)
            except Exception as exc:  # noqa: BLE001
                self.stats.observe_error()
                deliveries.append((request, False, exc))
                continue
            if request.scalar:
                deliveries.append((request, True, float(estimates[0])))
            else:
                deliveries.append((request, True, estimates.tolist()))
        return deliveries

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<EstimateScheduler window={self._window * 1000:.1f}ms "
            f"max_batch={self._max_batch_paths} pending={self._queue.qsize()}>"
        )
