"""Tiny stdlib client for the serving endpoint.

Wraps :mod:`urllib.request` so the CLI (``repro client``), the CI smoke
test and the benchmarks can drive a running ``repro serve`` without any
HTTP dependency.  Every method returns the decoded JSON document; HTTP
errors become :class:`~repro.exceptions.ServingError` (with the server's
``error`` message when it sent one).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.exceptions import ServingError

__all__ = ["ServiceClient"]


class ServiceClient:
    """A blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        """The service base URL (no trailing slash)."""
        return self._base_url

    def _request(self, route: str, payload: Optional[dict] = None) -> dict:
        url = f"{self._base_url}{route}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                document = json.loads(exc.read().decode("utf-8"))
                message = str(document.get("error", exc))
            except (ValueError, UnicodeDecodeError):
                message = str(exc)
            raise ServingError(f"{route} -> HTTP {exc.code}: {message}") from None
        except urllib.error.URLError as exc:
            raise ServingError(f"cannot reach {url}: {exc.reason}") from None
        except (ValueError, json.JSONDecodeError) as exc:
            raise ServingError(f"invalid JSON from {url}: {exc}") from None

    # ------------------------------------------------------------------
    # the endpoint surface
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness document (``status`` + registered graph names)."""
        return self._request("/healthz")

    def stats(self) -> dict:
        """Scheduler + registry counters."""
        return self._request("/stats")

    def graphs(self) -> list[dict]:
        """One row per registered graph."""
        return self._request("/graphs")["graphs"]

    def estimate(self, graph: str, paths: Sequence[str]) -> list[float]:
        """Estimates for ``paths`` on ``graph`` (one request, one batch)."""
        document = self._request("/estimate", {"graph": graph, "paths": list(paths)})
        return [float(value) for value in document["estimates"]]

    def warm(self, graph: str) -> dict:
        """Build ``graph``'s session now; returns the build stats row."""
        return self._request("/warm", {"graph": graph})["stats"]

    def evict(self, graph: str) -> bool:
        """Drop ``graph``'s built session; returns whether one was resident."""
        return bool(self._request("/evict", {"graph": graph})["evicted"])

    def update(
        self,
        graph: str,
        *,
        add: Sequence[Sequence[object]] = (),
        remove: Sequence[Sequence[object]] = (),
    ) -> dict:
        """Apply an edge delta to ``graph`` (incremental catalog rebuild).

        ``add`` / ``remove`` are ``(source, label, target)`` triples; returns
        the server's update row (affected subtree counts, new digest, ...).
        """
        return self._request(
            "/update",
            {"graph": graph, "add": [list(t) for t in add], "remove": [list(t) for t in remove]},
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<ServiceClient {self._base_url!r}>"
