"""Tiny stdlib client for the serving endpoint, with bounded retries.

Wraps :mod:`urllib.request` so the CLI (``repro client``), the CI smoke
test and the benchmarks can drive a running ``repro serve`` without any
HTTP dependency.  Every method returns the decoded JSON document.  API
methods speak the versioned ``/v1/`` routes; only the operational probes
(``/healthz``) stay unversioned, matching the server.

Transient failures — 429 (per-graph admission), 503 (backpressure, open
circuit, closing), 504 (batch deadline) and connection errors — are retried
through the shared :class:`repro.retry.RetryPolicy` core (exponential
backoff with *full jitter*; a server ``Retry-After`` hint — sent on every
backpressure rejection — honoured as a lower bound).  An optional per-call
deadline caps the whole attempt sequence: per-attempt timeouts shrink to
the remaining budget and the client gives up early rather than schedule a
pause it cannot afford.
Exhausted retries and non-retryable statuses raise
:class:`~repro.exceptions.ServiceRequestError` carrying the final status,
the server's retry hint, the attempt count, the request id, and — when the
server answered with the v1 error envelope — its machine-readable ``code``
and the full parsed ``envelope`` document.

Every logical call carries a fresh ``X-Request-Id`` (a uuid4 hex) that the
server echoes into its spans, JSON logs and ``/traces`` buffer, so one
client-side id correlates the whole server-side path of a request.  With
``verbose=True`` the client narrates each attempt — request id, status,
per-attempt latency, backoff pauses — to ``sys.stderr``.
"""

from __future__ import annotations

import http.client
import json
import random
import sys
import time
import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.exceptions import ServiceRequestError
from repro.obs.tracing import new_request_id
from repro.retry import RetryPolicy, parse_retry_after
from repro.serving.http import API_PREFIX

__all__ = ["ServiceClient"]

#: HTTP statuses worth retrying: admission/backpressure rejections and
#: batch timeouts.  Everything else (400, 404, 413...) is the caller's bug.
RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ServiceClient:
    """A blocking JSON client bound to one service base URL.

    Parameters
    ----------
    base_url:
        The service root, e.g. ``"http://127.0.0.1:8080"``.
    timeout:
        Per-attempt socket timeout in seconds.
    max_retries:
        How many *re*-tries follow the first attempt (``0`` disables
        retrying entirely).
    backoff_seconds / backoff_max_seconds:
        Exponential backoff base and cap; the actual pause is drawn
        uniformly from ``[0, min(cap, base * 2**attempt))`` (full jitter)
        and then raised to any server ``Retry-After`` hint.
    deadline_seconds:
        Default budget for one logical call including every retry and
        pause; ``None`` means attempts alone bound the call.  Individual
        calls may override via their ``deadline_seconds`` argument.
    rng:
        Jitter source (a :class:`random.Random`); injectable for
        deterministic tests.
    verbose:
        When true, narrate every attempt (request id, status, per-attempt
        latency, pauses) to ``sys.stderr``.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        backoff_max_seconds: float = 2.0,
        deadline_seconds: Optional[float] = None,
        rng: Optional[random.Random] = None,
        verbose: bool = False,
    ) -> None:
        if timeout <= 0:
            raise ServiceRequestError("timeout must be > 0")
        if max_retries < 0:
            raise ServiceRequestError("max_retries must be >= 0")
        if backoff_seconds < 0 or backoff_max_seconds < 0:
            raise ServiceRequestError("backoff seconds must be >= 0")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ServiceRequestError("deadline_seconds must be > 0")
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._max_retries = max_retries
        self._policy = RetryPolicy(
            max_retries=max_retries,
            backoff_seconds=backoff_seconds,
            backoff_max_seconds=backoff_max_seconds,
            deadline_seconds=deadline_seconds,
            rng=rng,
        )
        self._verbose = verbose
        self.last_request_id: Optional[str] = None
        self.last_attempts: int = 0
        self.last_attempt_seconds: list[float] = []

    def _narrate(self, message: str) -> None:
        """Print one verbose progress line to stderr (no-op otherwise)."""
        if self._verbose:
            print(f"[client] {message}", file=sys.stderr)

    @property
    def base_url(self) -> str:
        """The service base URL (no trailing slash)."""
        return self._base_url

    def _request(
        self,
        route: str,
        payload: Optional[dict] = None,
        *,
        deadline_seconds: Optional[float] = None,
    ) -> dict:
        url = f"{self._base_url}{route}"
        data = None
        request_id = new_request_id()
        headers = {"Accept": "application/json", "X-Request-Id": request_id}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        state = self._policy.start(deadline_seconds=deadline_seconds)
        self.last_request_id = request_id
        self.last_attempts = 0
        self.last_attempt_seconds = []
        while True:
            timeout = state.begin_attempt(self._timeout)
            if timeout is None:
                raise ServiceRequestError(
                    f"{route}: deadline of {state.deadline:.3f}s exhausted "
                    f"after {state.attempts} attempt(s)",
                    attempts=state.attempts,
                    request_id=request_id,
                )
            attempt = state.attempts
            self.last_attempts = attempt
            request = urllib.request.Request(url, data=data, headers=headers)
            retry_after: Optional[float] = None
            attempt_started = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=timeout) as response:
                    document = json.loads(response.read().decode("utf-8"))
                elapsed = time.perf_counter() - attempt_started
                self.last_attempt_seconds.append(elapsed)
                self._narrate(
                    f"{route} ok request_id={request_id} attempt={attempt} "
                    f"seconds={elapsed:.4f}"
                )
                return document
            except urllib.error.HTTPError as exc:
                self.last_attempt_seconds.append(time.perf_counter() - attempt_started)
                retry_after = parse_retry_after(exc.headers.get("Retry-After"))
                envelope: Optional[dict] = None
                code: Optional[str] = None
                try:
                    document = json.loads(exc.read().decode("utf-8"))
                    message = str(document.get("error", exc))
                    if isinstance(document, dict):
                        envelope = document
                        code = document.get("code")
                except (ValueError, UnicodeDecodeError):
                    message = str(exc)
                error = ServiceRequestError(
                    f"{route} -> HTTP {exc.code}: {message}",
                    status=exc.code,
                    retry_after=retry_after,
                    attempts=attempt,
                    request_id=request_id,
                    code=code,
                    envelope=envelope,
                )
                self._narrate(
                    f"{route} HTTP {exc.code} request_id={request_id} "
                    f"attempt={attempt} seconds={self.last_attempt_seconds[-1]:.4f}"
                )
                if exc.code not in RETRYABLE_STATUSES:
                    raise error from None
            except (
                urllib.error.URLError,
                TimeoutError,
                ConnectionError,
                http.client.HTTPException,
            ) as exc:
                # URLError wraps connect-time failures only; a reset or
                # truncated response *mid-read* surfaces as a raw
                # ConnectionError / HTTPException (RemoteDisconnected,
                # IncompleteRead...) and is just as retryable.
                self.last_attempt_seconds.append(time.perf_counter() - attempt_started)
                reason = getattr(exc, "reason", exc)
                error = ServiceRequestError(
                    f"cannot reach {url}: {reason}",
                    attempts=attempt,
                    request_id=request_id,
                )
                self._narrate(
                    f"{route} unreachable ({reason}) request_id={request_id} "
                    f"attempt={attempt}"
                )
            except (ValueError, json.JSONDecodeError) as exc:
                self.last_attempt_seconds.append(time.perf_counter() - attempt_started)
                raise ServiceRequestError(
                    f"invalid JSON from {url}: {exc}",
                    attempts=attempt,
                    request_id=request_id,
                ) from None
            pause = state.next_pause(retry_after=retry_after)
            if pause is None:
                # Retry budget spent, or the pause alone would blow the
                # deadline: surface the last failure now instead of sleeping
                # into a guaranteed timeout.
                raise error from None
            self._narrate(f"{route} retrying in {pause:.3f}s (attempt {attempt + 1})")
            if pause > 0:
                time.sleep(pause)

    # ------------------------------------------------------------------
    # the endpoint surface
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness document (``status`` + registered graph names)."""
        return self._request("/healthz")

    def stats(self) -> dict:
        """Scheduler + registry counters."""
        return self._request(f"{API_PREFIX}/stats")

    def graphs(self) -> list[dict]:
        """One row per registered graph."""
        return self._request(f"{API_PREFIX}/graphs")["graphs"]

    def estimate(
        self,
        graph: str,
        paths: Sequence[str],
        *,
        deadline_seconds: Optional[float] = None,
    ) -> list[float]:
        """Estimates for ``paths`` on ``graph`` (one request, one batch).

        ``deadline_seconds`` caps the whole call — every retry and backoff
        pause included — overriding the client-wide default.
        """
        document = self._request(
            f"{API_PREFIX}/estimate",
            {"graph": graph, "paths": list(paths)},
            deadline_seconds=deadline_seconds,
        )
        return [float(value) for value in document["estimates"]]

    def warm(self, graph: str) -> dict:
        """Build ``graph``'s session now; returns the build stats row."""
        return self._request(f"{API_PREFIX}/warm", {"graph": graph})["stats"]

    def evict(self, graph: str) -> bool:
        """Drop ``graph``'s built session; returns whether one was resident."""
        return bool(
            self._request(f"{API_PREFIX}/evict", {"graph": graph})["evicted"]
        )

    def update(
        self,
        graph: str,
        *,
        add: Sequence[Sequence[object]] = (),
        remove: Sequence[Sequence[object]] = (),
        deadline_seconds: Optional[float] = None,
    ) -> dict:
        """Apply an edge delta to ``graph`` (incremental catalog rebuild).

        ``add`` / ``remove`` are ``(source, label, target)`` triples; returns
        the server's update row (affected subtree counts, new digest, ...).
        ``deadline_seconds`` caps the call like in :meth:`estimate`.
        """
        return self._request(
            f"{API_PREFIX}/update",
            {"graph": graph, "add": [list(t) for t in add], "remove": [list(t) for t in remove]},
            deadline_seconds=deadline_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<ServiceClient {self._base_url!r} retries={self._max_retries}>"
