"""Multi-graph session registry with single-flight builds and LRU eviction.

A :class:`SessionRegistry` owns every :class:`~repro.engine.session.EstimationSession`
a service process serves.  Graphs are *registered* under a name (either an
in-memory :class:`~repro.graph.digraph.LabeledDiGraph` or an edge-list path
loaded lazily) and *built* on first use: the first request for a name loads
the graph, fingerprints it, and runs ``EstimationSession.build`` — every
concurrent request for the same name blocks on a per-source lock and then
finds the finished session, so exactly one build runs per (graph, config)
no matter how many clients ask at once.

Sessions are stored under their ``graph digest + config hash`` key, so two
names registered over byte-identical graphs with equal configs share one
session.  The registry evicts least-recently-used sessions beyond
``max_sessions`` and/or ``max_bytes`` (each session charged by
:meth:`~repro.engine.session.EstimationSession.memory_bytes`), and can keep
the shared on-disk :class:`~repro.engine.cache.ArtifactCache` inside a byte
budget too (``prune_cache_bytes``).

Builds are guarded by a **per-graph circuit breaker**: after
``breaker_threshold`` consecutive failures for one name, further requests
fast-fail with :class:`~repro.exceptions.CircuitOpenError` (mapped to a 503
with a ``Retry-After`` hint) instead of re-running a doomed — possibly
slow — build on every request.  After ``breaker_reset_seconds`` the circuit
goes *half-open*: exactly one request probes a real build; success closes
the circuit, failure re-opens it for another full reset window.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Union

from repro.engine.cache import ArtifactCache
from repro.engine.fingerprint import config_digest, graph_digest
from repro.engine.session import EngineConfig, EstimationSession
from repro.exceptions import CircuitOpenError, ServingError, UnknownGraphError
from repro.graph.delta import GraphDelta
from repro.graph.digraph import LabeledDiGraph
from repro.graph.io import read_edge_list
from repro.obs import tracing
from repro.obs.metrics import (
    BUILD_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.testing import faults

__all__ = ["RegistryStats", "SessionRegistry"]


class RegistryStats:
    """Counters describing the registry's build/hit/eviction behaviour.

    Metric-backed: every counter lives in a :mod:`repro.obs.metrics`
    instrument — the same series ``GET /metrics`` renders — and the
    historical attribute names (``stats.builds``, ``stats.evictions``...)
    are read-only properties over those instruments, so existing callers
    and tests keep working unchanged.  Mutation happens through the
    ``observe_*`` methods.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else default_registry()
        self._build_seconds = Histogram(
            "repro_registry_build_seconds",
            "Session build latency in seconds, by graph.",
            buckets=BUILD_BUCKETS,
            labelnames=("graph",),
            registry=reg,
        )
        self._update_seconds = Histogram(
            "repro_registry_update_seconds",
            "Incremental graph-update latency in seconds.",
            buckets=BUILD_BUCKETS,
            registry=reg,
        )
        self._hits = Counter(
            "repro_registry_hits_total",
            "Session lookups answered from the resident LRU.",
            registry=reg,
        )
        self._single_flight_waits = Counter(
            "repro_registry_single_flight_waits_total",
            "Callers that blocked behind another caller's in-flight build.",
            registry=reg,
        )
        self._evictions = Counter(
            "repro_registry_evictions_total",
            "Sessions dropped from the resident LRU.",
            registry=reg,
        )
        self._evicted_bytes = Counter(
            "repro_registry_evicted_bytes_total",
            "Estimated resident bytes freed by session evictions.",
            registry=reg,
        )
        self._build_failures = Counter(
            "repro_registry_build_failures_total",
            "Session builds that raised.",
            registry=reg,
        )
        self._circuits_opened = Counter(
            "repro_registry_circuits_opened_total",
            "Circuit-breaker trips (closed/half-open to open).",
            registry=reg,
        )
        self._circuit_transitions = Counter(
            "repro_registry_circuit_transitions_total",
            "Circuit-breaker state transitions, by graph and new state.",
            labelnames=("graph", "state"),
            registry=reg,
        )
        self._circuit_fast_failures = Counter(
            "repro_registry_circuit_fast_failures_total",
            "Requests fast-failed by an open circuit.",
            registry=reg,
        )

    # -- mutation --------------------------------------------------------
    def observe_build(self, graph: str, seconds: float) -> None:
        """Record one successful session build and its latency."""
        self._build_seconds.observe(seconds, graph=graph)

    def observe_update(self, seconds: float) -> None:
        """Record one applied graph delta and its latency."""
        self._update_seconds.observe(seconds)

    def observe_hit(self) -> None:
        """Record one lookup answered from the resident LRU."""
        self._hits.inc()

    def observe_single_flight_wait(self) -> None:
        """Record one caller blocking behind an in-flight build."""
        self._single_flight_waits.inc()

    def observe_eviction(self, bytes_freed: int = 0) -> None:
        """Record one session eviction and the bytes it freed."""
        self._evictions.inc()
        if bytes_freed > 0:
            self._evicted_bytes.inc(bytes_freed)

    def observe_build_failure(self) -> None:
        """Record one session build that raised."""
        self._build_failures.inc()

    def observe_circuit_transition(self, graph: str, state: str) -> None:
        """Record a breaker transition; ``state`` is the state entered."""
        self._circuit_transitions.inc(graph=graph, state=state)
        if state == "open":
            self._circuits_opened.inc()

    def observe_circuit_fast_failure(self) -> None:
        """Record one request fast-failed by an open circuit."""
        self._circuit_fast_failures.inc()

    # -- the historical read surface ------------------------------------
    @property
    def builds(self) -> int:
        """Successful session builds."""
        return self._build_seconds.count()

    @property
    def build_seconds_total(self) -> float:
        """Total seconds spent in successful builds."""
        return self._build_seconds.total()

    @property
    def hits(self) -> int:
        """Lookups answered from the resident LRU."""
        return int(self._hits.value())

    @property
    def single_flight_waits(self) -> int:
        """Callers that blocked behind another caller's build."""
        return int(self._single_flight_waits.value())

    @property
    def evictions(self) -> int:
        """Sessions dropped from the resident LRU."""
        return int(self._evictions.value())

    @property
    def evicted_bytes(self) -> int:
        """Estimated resident bytes freed by evictions."""
        return int(self._evicted_bytes.value())

    @property
    def updates(self) -> int:
        """Applied graph deltas."""
        return self._update_seconds.count()

    @property
    def update_seconds_total(self) -> float:
        """Total seconds spent applying graph deltas."""
        return self._update_seconds.total()

    @property
    def build_failures(self) -> int:
        """Session builds that raised."""
        return int(self._build_failures.value())

    @property
    def circuits_opened(self) -> int:
        """Circuit-breaker trips."""
        return int(self._circuits_opened.value())

    @property
    def circuit_fast_failures(self) -> int:
        """Requests fast-failed by an open circuit."""
        return int(self._circuit_fast_failures.value())

    def as_row(self) -> dict[str, object]:
        """Flat dict for JSON emission (merged into the service stats)."""
        return {
            "builds": self.builds,
            "build_seconds_total": self.build_seconds_total,
            "hits": self.hits,
            "single_flight_waits": self.single_flight_waits,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "updates": self.updates,
            "update_seconds_total": self.update_seconds_total,
            "build_failures": self.build_failures,
            "circuits_opened": self.circuits_opened,
            "circuit_fast_failures": self.circuit_fast_failures,
        }


class _Breaker:
    """Per-graph circuit-breaker state; mutated only under the registry gate."""

    __slots__ = ("failures", "opened_at", "probing", "last_error")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.probing = False
        self.last_error = ""


class _Source:
    """One registered graph: how to load it, its config, its build lock."""

    __slots__ = ("name", "loader", "config", "graph", "session_key", "lock", "breaker")

    def __init__(
        self,
        name: str,
        loader: Callable[[], LabeledDiGraph],
        config: EngineConfig,
        graph: Optional[LabeledDiGraph],
    ) -> None:
        self.name = name
        self.loader = loader
        self.config = config
        # In-memory graphs are pinned; file-backed ones are loaded per build
        # (rebuilds after eviction are rare and warm-start from the cache).
        self.graph = graph
        self.session_key: Optional[str] = None
        self.lock = threading.Lock()
        self.breaker = _Breaker()

    def load_graph(self) -> LabeledDiGraph:
        """The pinned graph if kept, otherwise a fresh load via the loader."""
        return self.graph if self.graph is not None else self.loader()


class SessionRegistry:
    """Named estimation sessions: lazy single-flight builds, LRU eviction.

    Parameters
    ----------
    cache_dir:
        Shared artifact cache (path or :class:`ArtifactCache`) consulted by
        every build; ``None`` builds in memory only.
    max_sessions / max_bytes:
        LRU budgets.  ``max_bytes`` charges each session its
        :meth:`~repro.engine.session.EstimationSession.memory_bytes`.  The
        most recently used session is never evicted, so a single oversized
        session still serves.
    workers / backend / mmap:
        Forwarded to :meth:`EstimationSession.build`.
    prune_cache_bytes:
        When set, :meth:`ArtifactCache.prune` runs after every build so the
        shared cache directory stays inside this byte budget.
    default_config:
        Config used by :meth:`register` calls that do not pass their own.
    breaker_threshold:
        Consecutive build failures for one graph that trip its circuit open
        (``None`` or ``0`` disables the breaker entirely).
    breaker_reset_seconds:
        How long an open circuit fast-fails before allowing one half-open
        probe build.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[Union[str, Path, ArtifactCache]] = None,
        max_sessions: Optional[int] = None,
        max_bytes: Optional[int] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        mmap: bool = False,
        prune_cache_bytes: Optional[int] = None,
        default_config: Optional[EngineConfig] = None,
        breaker_threshold: Optional[int] = 3,
        breaker_reset_seconds: float = 5.0,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ServingError("max_sessions must be >= 1")
        if max_bytes is not None and max_bytes < 0:
            raise ServingError("max_bytes must be >= 0")
        if breaker_threshold is not None and breaker_threshold < 0:
            raise ServingError("breaker_threshold must be >= 0 (0 disables)")
        if breaker_reset_seconds <= 0:
            raise ServingError("breaker_reset_seconds must be > 0")
        if cache_dir is None or isinstance(cache_dir, ArtifactCache):
            self._cache = cache_dir
        else:
            self._cache = ArtifactCache(cache_dir)
        self._max_sessions = max_sessions
        self._max_bytes = max_bytes
        self._workers = workers
        self._backend = backend
        self._mmap = mmap
        self._prune_cache_bytes = prune_cache_bytes
        self._breaker_threshold = breaker_threshold or 0
        self._breaker_reset = breaker_reset_seconds
        self._default_config = (
            default_config if default_config is not None else EngineConfig()
        )
        self._gate = threading.Lock()
        self._sources: dict[str, _Source] = {}
        self._sessions: "OrderedDict[str, EstimationSession]" = OrderedDict()
        self.stats = RegistryStats()
        # Scrape-time gauges: residency is read live at render instead of
        # being written on every build/evict.
        resident_gauge = Gauge(
            "repro_registry_sessions_resident",
            "Built sessions currently resident in memory.",
        )
        resident_gauge.set_function(self.session_count)
        bytes_gauge = Gauge(
            "repro_registry_sessions_bytes",
            "Estimated resident bytes across built sessions.",
        )
        bytes_gauge.set_function(self.memory_bytes)
        graphs_gauge = Gauge(
            "repro_registry_graphs_registered",
            "Graph names registered with the session registry.",
        )
        graphs_gauge.set_function(lambda: len(self._sources))

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        graph: Optional[LabeledDiGraph] = None,
        path: Optional[Union[str, Path]] = None,
        loader: Optional[Callable[[], LabeledDiGraph]] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        """Register a graph under ``name`` (exactly one source kind).

        Nothing is built yet; the first :meth:`get` (or :meth:`warm`) does.
        Re-registering a name replaces its source but leaves any built
        session of the old source in the LRU until evicted.
        """
        sources = [graph is not None, path is not None, loader is not None]
        if sum(sources) != 1:
            raise ServingError(
                "register() needs exactly one of graph=, path= or loader="
            )
        if not name:
            raise ServingError("graph name must be non-empty")
        if path is not None:
            target = Path(path)
            loader = lambda: read_edge_list(target)  # noqa: E731
        elif graph is None and loader is None:  # pragma: no cover - guarded above
            raise ServingError("unreachable")
        source = _Source(
            name,
            loader if loader is not None else (lambda: graph),
            config if config is not None else self._default_config,
            graph,
        )
        with self._gate:
            self._sources[name] = source

    def names(self) -> tuple[str, ...]:
        """The registered graph names, sorted."""
        with self._gate:
            return tuple(sorted(self._sources))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> EstimationSession:
        """The session for ``name``, building it on first use (single-flight).

        Concurrent callers for an unbuilt name all block on one per-source
        lock; the winner builds, the rest find the session in the LRU when
        the lock frees.  Raises :class:`UnknownGraphError` for unregistered
        names, :class:`CircuitOpenError` while the name's circuit is open.
        """
        try:
            with self._gate:
                source = self._sources[name]
        except KeyError:
            raise UnknownGraphError(name, self.names()) from None
        session = self._lookup(source)
        if session is not None:
            return session
        # Fast-fail an open circuit *before* queueing on the build lock:
        # callers must not line up behind a probe (or a doomed slow build)
        # just to be told the graph is unavailable.
        self._breaker_check(source)
        if not source.lock.acquire(blocking=False):
            self.stats.observe_single_flight_wait()
            source.lock.acquire()
        try:
            session = self._lookup(source)
            if session is not None:
                return session
            self._breaker_enter_build(source)
            try:
                session = self._build(source)
            except CircuitOpenError:
                raise
            except Exception as exc:
                self._breaker_record_failure(source, exc)
                raise
            self._breaker_record_success(source)
            return session
        finally:
            source.lock.release()

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def _breaker_remaining(self, breaker: _Breaker) -> float:
        """Seconds until an open circuit allows a probe; caller holds the gate."""
        if breaker.opened_at is None:
            return 0.0
        return breaker.opened_at + self._breaker_reset - time.perf_counter()

    def _breaker_check(self, source: _Source) -> None:
        """Fast-fail when ``source``'s circuit is open and not yet expired."""
        if not self._breaker_threshold:
            return
        with self._gate:
            breaker = source.breaker
            remaining = self._breaker_remaining(breaker)
            if breaker.opened_at is None or remaining <= 0:
                return
            self.stats.observe_circuit_fast_failure()
            raise CircuitOpenError(
                source.name,
                retry_after=remaining,
                failures=breaker.failures,
                last_error=breaker.last_error,
            )

    def _breaker_enter_build(self, source: _Source) -> None:
        """Gate a build attempt: fast-fail if still open, else mark the probe."""
        if not self._breaker_threshold:
            return
        with self._gate:
            breaker = source.breaker
            if breaker.opened_at is None:
                return
            remaining = self._breaker_remaining(breaker)
            if remaining > 0:
                # Re-check under the build lock: the circuit may have
                # (re-)opened while this caller waited behind a failed probe.
                self.stats.observe_circuit_fast_failure()
                raise CircuitOpenError(
                    source.name,
                    retry_after=remaining,
                    failures=breaker.failures,
                    last_error=breaker.last_error,
                )
            breaker.probing = True
        self.stats.observe_circuit_transition(source.name, "half-open")

    def _breaker_record_failure(self, source: _Source, exc: Exception) -> None:
        """Count a build failure; trip (or re-trip) the circuit when due."""
        opened = False
        with self._gate:
            self.stats.observe_build_failure()
            if not self._breaker_threshold:
                return
            breaker = source.breaker
            breaker.failures += 1
            breaker.last_error = str(exc)
            if breaker.probing or breaker.failures >= self._breaker_threshold:
                # A failed half-open probe re-opens immediately, whatever
                # the consecutive count says: the graph just proved it is
                # still broken.
                breaker.opened_at = time.perf_counter()
                breaker.probing = False
                opened = True
        if opened:
            self.stats.observe_circuit_transition(source.name, "open")

    def _breaker_record_success(self, source: _Source) -> None:
        """A successful build closes the circuit and clears its history."""
        if not self._breaker_threshold:
            return
        closed = False
        with self._gate:
            breaker = source.breaker
            if breaker.opened_at is not None or breaker.probing or breaker.failures:
                closed = True
            breaker.failures = 0
            breaker.opened_at = None
            breaker.probing = False
            breaker.last_error = ""
        if closed:
            self.stats.observe_circuit_transition(source.name, "closed")

    def _lookup(self, source: _Source) -> Optional[EstimationSession]:
        """The already-built session for ``source``, refreshing LRU recency."""
        with self._gate:
            key = source.session_key
            if key is None:
                return None
            session = self._sessions.get(key)
            if session is None:
                return None
            self._sessions.move_to_end(key)
            self.stats.observe_hit()
            return session

    @staticmethod
    def _session_key(digest: str, config: EngineConfig) -> str:
        """The LRU key of a session: graph digest prefix + config hash."""
        return f"{digest[:24]}-{config_digest(config.histogram_fields())}"

    def _build(self, source: _Source) -> EstimationSession:
        """Build (or warm-load) the session for ``source``; caller holds its lock."""
        graph = source.load_graph()
        key = self._session_key(graph_digest(graph), source.config)
        with self._gate:
            source.session_key = key
            session = self._sessions.get(key)
            if session is not None:
                # Another name over the same graph + config built it first.
                self._sessions.move_to_end(key)
                self.stats.observe_hit()
                return session
        started = time.perf_counter()
        with tracing.span("registry.build", graph=source.name):
            faults.fire("registry.build", graph=source.name)
            session = EstimationSession.build(
                graph,
                source.config,
                cache_dir=self._cache,
                workers=self._workers,
                backend=self._backend,
                mmap=self._mmap,
            )
        build_seconds = time.perf_counter() - started
        self.stats.observe_build(source.name, build_seconds)
        with self._gate:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            self._evict_over_budget()
        if self._prune_cache_bytes is not None and self._cache is not None:
            self._cache.prune(self._prune_cache_bytes)
        return session

    def _evict_over_budget(self) -> None:
        """Drop LRU sessions beyond the budgets; caller holds the gate."""
        while len(self._sessions) > 1 and (
            (self._max_sessions is not None and len(self._sessions) > self._max_sessions)
            or (
                self._max_bytes is not None
                and self._total_bytes() > self._max_bytes
            )
        ):
            _, evicted = self._sessions.popitem(last=False)
            self.stats.observe_eviction(evicted.memory_bytes())

    def _total_bytes(self) -> int:
        return sum(session.memory_bytes() for session in self._sessions.values())

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def update_graph(self, name: str, delta: GraphDelta) -> dict[str, object]:
        """Apply ``delta`` to ``name``'s graph and swap its session in place.

        The update runs under the source's single-flight lock, so it
        serialises with builds and other updates of the same name.  The swap
        itself is atomic under the registry gate and happens only once the
        new session is fully built: every concurrent :meth:`get` during the
        (possibly long) incremental rebuild keeps returning the *old*
        session, so in-flight estimates drain against the pre-delta catalog
        and no request ever observes a half-updated state.

        For a name without a built session the delta is applied to the
        source graph only (loaded — and from then on pinned in memory, so a
        file-backed source does not lose the delta on its next build) and
        the build stays lazy.  Returns a JSON-ready row describing what
        happened.
        """
        try:
            with self._gate:
                source = self._sources[name]
        except KeyError:
            raise UnknownGraphError(name, self.names()) from None
        with source.lock:
            with self._gate:
                old_key = source.session_key
                session = (
                    self._sessions.get(old_key) if old_key is not None else None
                )
            started = time.perf_counter()
            if session is None:
                graph = source.load_graph()
                added, removed = delta.apply(graph)
                source.graph = graph
                source.session_key = None
                update_seconds = time.perf_counter() - started
                self.stats.observe_update(update_seconds)
                return {
                    "graph": name,
                    "built": False,
                    "additions": added,
                    "removals": removed,
                    "seconds": update_seconds,
                }
            # If the session's retained graph object is also registered under
            # a sibling name (or is another name's pinned graph), mutate a
            # private copy instead: the sibling's object — possibly owned by
            # the operator — must not change under an update it never asked
            # for.
            with self._gate:
                graph_is_shared = any(
                    other is not source and other.graph is session.graph
                    for other in self._sources.values()
                )
            with tracing.span("registry.update", graph=name):
                new_session = session.update(
                    delta,
                    workers=self._workers,
                    backend=self._backend,
                    graph=session.graph.copy() if graph_is_shared else None,
                )
            update_seconds = time.perf_counter() - started
            stats = new_session.stats
            new_key = self._session_key(stats.graph_digest, source.config)
            with self._gate:
                # Swap: publish the new session and retire the old entry —
                # unless a sibling name still points at it (two names over
                # byte-identical graphs share one session); the sibling keeps
                # serving its consistent pre-delta snapshot until it is
                # updated or evicted itself.  Readers that grabbed the old
                # session keep using it either way.
                shared = any(
                    other is not source and other.session_key == old_key
                    for other in self._sources.values()
                )
                if old_key is not None and not shared:
                    self._sessions.pop(old_key, None)
                source.graph = new_session.graph
                source.session_key = new_key
                self._sessions[new_key] = new_session
                self._sessions.move_to_end(new_key)
                self.stats.observe_update(update_seconds)
                self._evict_over_budget()
            if self._prune_cache_bytes is not None and self._cache is not None:
                self._cache.prune(self._prune_cache_bytes)
            return {
                "graph": name,
                "built": True,
                "graph_digest": stats.graph_digest,
                "catalog_key": stats.catalog_key,
                "additions": stats.extra.get("delta_additions"),
                "removals": stats.extra.get("delta_removals"),
                "affected_subtrees": stats.extra.get("delta_affected_subtrees"),
                "subtrees_total": stats.extra.get("delta_subtrees_total"),
                "full_rebuild": stats.extra.get("delta_full_rebuild"),
                "seconds": update_seconds,
            }

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def warm(self, *names: str) -> dict[str, EstimationSession]:
        """Build (or touch) the given names — all of them when none given."""
        targets = names if names else self.names()
        return {name: self.get(name) for name in targets}

    def evict(self, name: str) -> bool:
        """Drop ``name``'s built session from memory (disk artifacts stay).

        Returns whether a session was actually dropped.  The next
        :meth:`get` rebuilds — warm-starting from the artifact cache when
        one is configured.
        """
        try:
            with self._gate:
                source = self._sources[name]
                key = source.session_key
                if key is None:
                    return False
                dropped = self._sessions.pop(key, None)
                if dropped is not None:
                    self.stats.observe_eviction(dropped.memory_bytes())
                return dropped is not None
        except KeyError:
            raise UnknownGraphError(name, self.names()) from None

    @property
    def cache(self) -> Optional[ArtifactCache]:
        """The shared artifact cache (``None`` when building in memory)."""
        return self._cache

    def session_count(self) -> int:
        """Number of currently built (resident) sessions."""
        with self._gate:
            return len(self._sessions)

    def memory_bytes(self) -> int:
        """Estimated resident bytes across every built session."""
        with self._gate:
            return self._total_bytes()

    def describe(self) -> list[dict[str, object]]:
        """One row per registered name (for the ``/graphs`` endpoint)."""
        with self._gate:
            rows = []
            for name in sorted(self._sources):
                source = self._sources[name]
                key = source.session_key
                session = self._sessions.get(key) if key is not None else None
                row: dict[str, object] = {
                    "name": name,
                    "built": session is not None,
                    "max_length": source.config.max_length,
                    "ordering": source.config.ordering,
                    "bucket_count": source.config.bucket_count,
                    "storage": source.config.storage,
                }
                if session is not None:
                    row["domain_size"] = session.domain_size
                    row["memory_bytes"] = session.memory_bytes()
                    row["catalog_storage"] = session.catalog.storage
                if self._breaker_threshold:
                    breaker = source.breaker
                    remaining = self._breaker_remaining(breaker)
                    if breaker.opened_at is None:
                        state = "closed"
                    elif remaining > 0:
                        state = "open"
                    else:
                        state = "half-open"
                    row["circuit"] = state
                    row["consecutive_build_failures"] = breaker.failures
                    if state == "open":
                        row["retry_after_seconds"] = remaining
                rows.append(row)
            return rows

    def as_row(self) -> dict[str, object]:
        """Registry state + counters, for the service stats document."""
        with self._gate:
            row: dict[str, object] = {
                "graphs_registered": len(self._sources),
                "sessions_resident": len(self._sessions),
                "sessions_bytes": self._total_bytes(),
            }
        if self._cache is not None:
            row["cache_quarantined"] = self._cache.quarantined
        row.update(self.stats.as_row())
        return row

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<SessionRegistry graphs={len(self._sources)} "
            f"resident={self.session_count()} builds={self.stats.builds}>"
        )
