"""Asyncio front-end over the registry + scheduler pair.

:class:`EstimationService` is the embedding-friendly face of the serving
subsystem: an event-loop application (or the HTTP layer's tests) awaits
``estimate`` / ``estimate_many`` and the requests flow through the same
micro-batching scheduler as every other client — coroutines awaiting
concurrently within one window are coalesced into a single
``estimate_batch`` exactly like concurrent threads are.

The service owns its scheduler: use it as an async context manager (or call
:meth:`close`) so the worker thread is joined deterministically.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.engine.session import EngineConfig, EstimationSession, SessionStats
from repro.graph.delta import GraphDelta
from repro.graph.digraph import LabeledDiGraph
from repro.obs.metrics import MetricsRegistry
from repro.paths.label_path import LabelPath
from repro.serving.registry import SessionRegistry
from repro.serving.scheduler import EstimateScheduler, ServiceStats

__all__ = ["EstimationService"]

PathLike = Union[str, LabelPath]


class EstimationService:
    """Async estimate/warm/evict API over a :class:`SessionRegistry`.

    Parameters mirror :class:`~repro.serving.scheduler.EstimateScheduler`;
    ``metrics`` picks the :class:`~repro.obs.metrics.MetricsRegistry` the
    scheduler's instruments register against (the process-wide default when
    omitted), and ``registry`` defaults to a fresh in-memory one so the
    service can be stood up in two lines::

        service = EstimationService()
        service.registry.register("g", graph=graph)
        estimate = await service.estimate("g", "1/2/3")
    """

    def __init__(
        self,
        registry: Optional[SessionRegistry] = None,
        *,
        window_seconds: float = 0.002,
        max_batch_paths: int = 512,
        min_coalesce_paths: int = 64,
        max_pending: int = 4096,
        stats: Optional[ServiceStats] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._registry = registry if registry is not None else SessionRegistry()
        if stats is None:
            stats = ServiceStats(registry=metrics)
        self._scheduler = EstimateScheduler(
            self._registry,
            window_seconds=window_seconds,
            max_batch_paths=max_batch_paths,
            min_coalesce_paths=min_coalesce_paths,
            max_pending=max_pending,
            stats=stats,
        )

    @property
    def registry(self) -> SessionRegistry:
        """The session registry (register graphs here)."""
        return self._registry

    @property
    def scheduler(self) -> EstimateScheduler:
        """The micro-batching scheduler behind the async API."""
        return self._scheduler

    # ------------------------------------------------------------------
    # the async API
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        *,
        graph: Optional[LabeledDiGraph] = None,
        path: Optional[Union[str, Path]] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        """Convenience passthrough to :meth:`SessionRegistry.register`."""
        self._registry.register(name, graph=graph, path=path, config=config)

    async def estimate(self, graph: str, path: PathLike) -> float:
        """One point estimate, coalesced with concurrent callers."""
        future = self._scheduler.submit(graph, path)
        return await asyncio.wrap_future(future)  # type: ignore[return-value]

    async def estimate_many(
        self, graph: str, paths: Sequence[PathLike]
    ) -> list[float]:
        """A path batch as one request (never split across batches)."""
        future = self._scheduler.submit_many(graph, paths)
        return await asyncio.wrap_future(future)  # type: ignore[return-value]

    async def warm(self, graph: str) -> SessionStats:
        """Build (or touch) a session off-loop; returns its build stats.

        Cold builds can take seconds, so they run in the default executor
        rather than on the scheduler thread (where they would stall every
        in-flight batch) or the event loop (where they would stall
        everything else).
        """
        loop = asyncio.get_running_loop()
        session: EstimationSession = await loop.run_in_executor(
            None, self._registry.get, graph
        )
        return session.stats

    async def evict(self, graph: str) -> bool:
        """Drop a built session from memory; cheap, so it runs inline."""
        return self._registry.evict(graph)

    async def update(self, graph: str, delta: GraphDelta) -> dict[str, object]:
        """Apply an edge delta off-loop; returns the registry's update row.

        Like :meth:`warm`, the (sub-second to seconds) incremental rebuild
        runs in the default executor so it never stalls the event loop or
        the scheduler thread; concurrent estimates keep draining against the
        pre-delta session until the swap.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._registry.update_graph, graph, delta
        )

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Scheduler counters + registry state as one JSON-ready document."""
        return {
            "scheduler": self._scheduler.stats.snapshot(),
            "registry": self._registry.as_row(),
        }

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop the scheduler (drains queued work, joins the worker)."""
        self._scheduler.close(timeout=timeout)

    async def __aenter__(self) -> "EstimationService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        # Draining is quick (the queue is bounded) but still blocking, so it
        # runs off-loop.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.close)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<EstimationService registry={self._registry!r}>"
