"""Stdlib content-addressed artifact server: the fleet's shared L2 cache.

``repro artifact-server`` serves one directory of engine build artifacts
(``catalog-*.npz``, ``histogram-*.json``, ``positions-*.npy``) to a fleet
of replicas whose :class:`~repro.engine.remote.RemoteArtifactStore` clients
fetch on local miss and push after cold builds.  Like the estimation
endpoint it is a bare :class:`http.server.ThreadingHTTPServer` — no
framework, no dependencies.

Routes
------
``GET  /v1/artifacts``         JSON index: ``{"artifacts": [{name, bytes,
                               mtime}, ...]}``
``GET  /v1/artifacts/<name>``  the artifact bytes; ``X-Content-Sha256``
                               carries the payload digest the client
                               verifies before adoption
``HEAD /v1/artifacts/<name>``  headers only (size + digest) — presence
                               probes for ``repro engine cache list
                               --remote``
``PUT  /v1/artifacts/<name>``  store an artifact (atomic temp +
                               ``os.replace``); when the request carries
                               ``X-Content-Sha256`` the body is verified
                               against it and a mismatch is refused with
                               400 (``digest_mismatch``) — a corrupted
                               upload never lands
``GET  /healthz`` / ``/readyz``  liveness / readiness (directory writable)
``GET  /metrics``              Prometheus text exposition

Artifact names are strictly validated (``catalog-``/``histogram-``/
``positions-`` prefix, key charset, known suffix) so the server can never
be walked outside its directory and never stores a name the cache globs
would not recognise.  Every non-2xx answer carries the same error envelope
as the estimation endpoint: ``{"error", "code", "retry_after",
"request_id"}``.

Digests are computed lazily and cached per ``(size, mtime_ns)``, so a
repeatedly fetched catalog is hashed once, not per request, while any
rewrite invalidates the entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import ServingError
from repro.obs.metrics import Counter, MetricsRegistry, default_registry

__all__ = ["ArtifactHTTPServer", "make_artifact_server", "ARTIFACTS_PREFIX"]

#: Route prefix shared with :class:`~repro.engine.remote.RemoteArtifactStore`.
ARTIFACTS_PREFIX = "/v1/artifacts"

#: Acceptable artifact filenames: the exact shapes the engine cache writes.
#: Anchored and free of separators, so a name can never escape the store
#: directory or smuggle in an unexpected artifact kind.
_NAME_RE = re.compile(
    r"^(?:catalog-[A-Za-z0-9_.-]+\.(?:npz|json)"
    r"|histogram-[A-Za-z0-9_.-]+\.json"
    r"|positions-[A-Za-z0-9_.-]+\.npy)$"
)

_DEFAULT_CODES = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    413: "body_too_large",
    500: "internal",
    503: "unavailable",
}


class ArtifactHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server exposing one artifact directory."""

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        directory: Union[str, Path],
        *,
        max_body_bytes: int = 256 * 2**20,
        verbose: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ServingError("max_body_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_body_bytes = max_body_bytes
        self.verbose = verbose
        self.metrics = metrics if metrics is not None else default_registry()
        self._requests = Counter(
            "repro_artifact_requests_total",
            "Artifact-server requests answered, by method and status.",
            labelnames=("method", "status"),
            registry=self.metrics,
        )
        self._bytes_served = Counter(
            "repro_artifact_bytes_served_total",
            "Artifact payload bytes answered to GET requests.",
            registry=self.metrics,
        )
        self._bytes_stored = Counter(
            "repro_artifact_bytes_stored_total",
            "Artifact payload bytes accepted from PUT requests.",
            registry=self.metrics,
        )
        # sha256 per (size, mtime_ns): rehash only when the file changed.
        self._digest_lock = threading.Lock()
        self._digests: dict[str, tuple[tuple[int, int], str]] = {}
        super().__init__(address, _ArtifactHandler)

    def observe(self, *, method: str, status: int) -> None:
        """Feed one answered request into the request counter."""
        self._requests.inc(method=method, status=status)

    def artifact_path(self, name: str) -> Optional[Path]:
        """The on-disk path for a *valid* artifact name, else ``None``."""
        if not _NAME_RE.match(name):
            return None
        return self.directory / name

    def digest_for(self, path: Path) -> Optional[str]:
        """The cached-or-computed sha256 of ``path`` (``None`` when gone)."""
        try:
            stat = path.stat()
        except OSError:
            return None
        stamp = (stat.st_size, stat.st_mtime_ns)
        with self._digest_lock:
            cached = self._digests.get(path.name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        try:
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return None
        with self._digest_lock:
            self._digests[path.name] = (stamp, digest)
        return digest

    def remember_digest(self, path: Path, digest: str) -> None:
        """Seed the digest cache after a PUT (the hash is already known)."""
        try:
            stat = path.stat()
        except OSError:
            return
        with self._digest_lock:
            self._digests[path.name] = ((stat.st_size, stat.st_mtime_ns), digest)

    def index(self) -> list[dict[str, object]]:
        """One ``{"name", "bytes", "mtime"}`` row per stored artifact."""
        rows: list[dict[str, object]] = []
        for path in sorted(self.directory.iterdir()):
            if not path.is_file() or not _NAME_RE.match(path.name):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append(
                {
                    "name": path.name,
                    "bytes": stat.st_size,
                    "mtime": stat.st_mtime,
                }
            )
        return rows

    def writable(self) -> bool:
        """Whether the store directory currently accepts writes."""
        probe = self.directory / f".readyz.{os.getpid()}.{uuid.uuid4().hex}"
        try:
            probe.write_bytes(b"")
            probe.unlink()
        except OSError:
            return False
        return True


class _ArtifactHandler(BaseHTTPRequestHandler):
    server: ArtifactHTTPServer  # narrowed for attribute access
    server_version = "repro-artifacts/1.0"
    protocol_version = "HTTP/1.1"

    _request_id = ""
    _status = 0

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Suppress per-request logging unless the server runs verbose."""
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # answering
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        rid = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = rid if rid else uuid.uuid4().hex
        self._status = 0

    def _finish(self, method: str) -> None:
        self.server.observe(method=method, status=self._status)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str,
        digest: Optional[str] = None,
        head: bool = False,
        length: Optional[int] = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body) if length is None else length))
        if digest is not None:
            self.send_header("X-Content-Sha256", digest)
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        if not head:
            self.wfile.write(body)

    def _send_json(self, status: int, document: object) -> None:
        self._send_bytes(
            status,
            json.dumps(document).encode("utf-8"),
            content_type="application/json",
        )

    def _send_error_json(
        self, status: int, message: str, *, code: Optional[str] = None
    ) -> None:
        envelope = {
            "error": message,
            "code": code or _DEFAULT_CODES.get(status, "error"),
            "retry_after": None,
            "request_id": self._request_id,
        }
        self._send_json(status, envelope)

    def send_error(  # noqa: D102 - BaseHTTPRequestHandler API
        self, code: int, message: Optional[str] = None, explain: Optional[str] = None
    ) -> None:
        self.close_connection = True
        try:
            self._send_error_json(code, message or str(explain or "request failed"))
        except OSError:  # pragma: no cover - peer already gone
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _artifact_name(self) -> Optional[str]:
        """The validated artifact name in the request path, or ``None``.

        ``None`` means the response has already been sent (404 for a
        non-artifact route or an invalid name).
        """
        if not self.path.startswith(ARTIFACTS_PREFIX + "/"):
            self._send_error_json(404, f"no such route: {self.path}")
            return None
        name = self.path[len(ARTIFACTS_PREFIX) + 1 :]
        if self.server.artifact_path(name) is None:
            self._send_error_json(
                404, f"not a valid artifact name: {name!r}", code="not_found"
            )
            return None
        return name

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route GET: probes, metrics, the index, and artifact downloads."""
        self._begin()
        try:
            if self.path == "/healthz":
                self._send_json(
                    200, {"status": "ok", "artifacts": len(self.server.index())}
                )
            elif self.path == "/readyz":
                if self.server.writable():
                    self._send_json(200, {"status": "ok", "writable": True})
                else:
                    self._send_error_json(
                        503, "store directory is not writable", code="not_ready"
                    )
            elif self.path == "/metrics":
                self._send_bytes(
                    200,
                    self.server.metrics.render().encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path == ARTIFACTS_PREFIX:
                self._send_json(200, {"artifacts": self.server.index()})
            else:
                self._serve_artifact(head=False)
        finally:
            self._finish("GET")

    def do_HEAD(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route HEAD: presence/digest probes on artifact names."""
        self._begin()
        try:
            self._serve_artifact(head=True)
        finally:
            self._finish("HEAD")

    def _serve_artifact(self, *, head: bool) -> None:
        name = self._artifact_name()
        if name is None:
            return
        path = self.server.artifact_path(name)
        assert path is not None  # _artifact_name validated
        try:
            body = path.read_bytes()
        except FileNotFoundError:
            self._send_error_json(404, f"no such artifact: {name}")
            return
        except OSError as exc:  # pragma: no cover - disk trouble
            self._send_error_json(500, f"cannot read {name}: {exc!r}")
            return
        digest = self.server.digest_for(path)
        if digest is None:
            # Deleted between read and stat; hash what was actually read.
            digest = hashlib.sha256(body).hexdigest()
        self._send_bytes(
            200,
            b"" if head else body,
            content_type="application/octet-stream",
            digest=digest,
            head=head,
            length=len(body),
        )
        if not head:
            self.server._bytes_served.inc(len(body))

    def do_PUT(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route PUT: verified, atomic artifact uploads."""
        self._begin()
        try:
            name = self._artifact_name()
            if name is None:
                return
            try:
                length = int(self.headers.get("Content-Length", "-1"))
            except ValueError:
                length = -1
            if length < 0:
                self._send_error_json(400, "missing or invalid Content-Length")
                return
            if length > self.server.max_body_bytes:
                # Refuse without reading; the unread body desyncs the
                # keep-alive stream, so drop the connection after answering.
                self.close_connection = True
                self._send_error_json(
                    413,
                    f"artifact of {length} bytes exceeds limit of "
                    f"{self.server.max_body_bytes} bytes",
                )
                return
            body = self.rfile.read(length)
            if len(body) != length:
                self.close_connection = True
                self._send_error_json(
                    400, f"body truncated: got {len(body)} of {length} bytes"
                )
                return
            digest = hashlib.sha256(body).hexdigest()
            claimed = (self.headers.get("X-Content-Sha256") or "").strip().lower()
            if claimed and claimed != digest:
                # The uploader knows what it read from disk; a mismatch
                # means the body was damaged in flight.  Refusing here keeps
                # a corrupt artifact from ever entering the shared tier.
                self._send_error_json(
                    400,
                    f"payload digest {digest[:12]}... does not match "
                    f"claimed {claimed[:12]}...",
                    code="digest_mismatch",
                )
                return
            path = self.server.artifact_path(name)
            assert path is not None  # _artifact_name validated
            created = not path.exists()
            temp = path.with_name(f".{name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
            try:
                temp.write_bytes(body)
                os.replace(temp, path)
            except OSError as exc:  # pragma: no cover - disk trouble
                self._send_error_json(500, f"cannot store {name}: {exc!r}")
                return
            finally:
                temp.unlink(missing_ok=True)
            self.server.remember_digest(path, digest)
            self.server._bytes_stored.inc(len(body))
            self._send_json(
                201 if created else 200,
                {"name": name, "bytes": len(body), "sha256": digest},
            )
        finally:
            self._finish("PUT")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Reject POST uniformly (the store speaks GET/HEAD/PUT)."""
        self._begin()
        try:
            self.close_connection = True
            self._send_error_json(
                405, "artifact store speaks GET/HEAD/PUT", code="method_not_allowed"
            )
        finally:
            self._finish("POST")


def make_artifact_server(
    directory: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 8081,
    max_body_bytes: int = 256 * 2**20,
    verbose: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> ArtifactHTTPServer:
    """Build a ready-to-run artifact server (``serve_forever``/``shutdown``).

    Pass ``port=0`` for an ephemeral port (read it back from
    ``server.server_address``); tests and the benchmarks do exactly that.
    """
    return ArtifactHTTPServer(
        (host, port),
        directory,
        max_body_bytes=max_body_bytes,
        verbose=verbose,
        metrics=metrics,
    )
