"""Stdlib JSON HTTP endpoint over the registry + scheduler.

No framework, no dependencies: a :class:`http.server.ThreadingHTTPServer`
whose handler threads submit into the shared micro-batching scheduler and
block on their futures.  Because coalescing happens in the scheduler, N
concurrent HTTP clients asking for one path each still produce one
``estimate_batch`` call per window — the server is just another front-end
over the same core as the asyncio :class:`~repro.serving.service.EstimationService`.

Routes
------
The API surface is versioned under ``/v1/`` (see ``docs/API.md``); the
operational probes stay unversioned:

``GET  /healthz``       liveness + registered graph names (+ drain flag)
``GET  /readyz``        readiness checks — 503 once draining or worker dead
``GET  /metrics``       Prometheus text exposition of the metrics registry
``GET  /traces``        slowest + most recent finished request traces
``GET  /v1/stats``      scheduler + registry counters (JSON)
``GET  /v1/graphs``     one row per registered graph (built?, domain, config)
``POST /v1/estimate``   ``{"graph": g, "paths": [...]}`` (or ``"path": "1/2"``)
``POST /v1/warm``       ``{"graph": g}`` — build now, return build stats
``POST /v1/evict``      ``{"graph": g}`` — drop the built session from memory
``POST /v1/update``     ``{"graph": g, "add": [[s,l,t],...], "remove":
                        [...]}`` — apply an edge delta and swap the session

The unversioned spellings (``/estimate``, ``/warm``, ``/evict``,
``/update``, ``/stats``, ``/graphs``) served as deprecated aliases for one
release and are now **removed**: they answer with the 404 error envelope
(``code="not_found"``) pointing at the ``/v1`` spelling.  Requests still
arriving on them are counted in ``repro_http_deprecated_requests_total``
— the series stays registered so dashboards watching the migration keep
working and a straggler client is visible, not silent.

Observability
-------------
Every request runs under a :class:`~repro.obs.tracing.Trace`: the id is
taken from the client's ``X-Request-Id`` header when present (minted
otherwise), echoed back on the response, propagated through the scheduler
into the registry/session spans, logged as one structured line when
``repro serve --log-json`` is on, and retained for ``GET /traces``.
Request counts and latency feed ``repro_http_requests_total`` /
``repro_http_request_seconds`` in the shared metrics registry.

Error mapping
-------------
Every non-2xx response carries one uniform JSON envelope::

    {"error": <human message>, "code": <machine code>,
     "retry_after": <seconds or null>, "request_id": <echoed/minted id>}

==========================================  ==============================
condition                                   response (``code``)
==========================================  ==============================
unknown graph                               404 (``unknown_graph``)
unknown route                               404 (``not_found``)
bad request / path / delta                  400 (``bad_request``)
body over ``max_body_bytes``                413 (``body_too_large``)
per-graph admission budget hit              429 + ``Retry-After``
                                            (``graph_overloaded``)
circuit open for the graph                  503 + ``Retry-After``
                                            (``circuit_open``)
global queue full / closing / crashed       503 + ``Retry-After``
                                            (``unavailable``)
batch timeout                               504 (``timeout``)
unexpected handler fault                    500 (``internal``)
==========================================  ==============================

429 means *this graph* is over its admission budget — other graphs are
still being served, retry against the same server after the hint.  503
means the *whole service* cannot take the request right now (shared queue
full, graph circuit open, shutting down) — retry later or elsewhere.  The
``Retry-After`` header carries decimal seconds (an internal convention;
standard HTTP allows only whole seconds or a date) and
:class:`~repro.serving.client.ServiceClient` honours it as a lower bound
on its backoff pause.

On SIGTERM/SIGINT the CLI calls :meth:`EstimationHTTPServer.close`, which
drains gracefully: stop accepting connections, finish the scheduler's
queue, give in-flight handlers a bounded window to answer, then close.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Iterator, Optional

from repro.exceptions import (
    CircuitOpenError,
    GraphOverloadedError,
    ReproError,
    SchedulerCrashError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
    UnknownGraphError,
)
from repro.graph.delta import GraphDelta
from repro.obs import tracing
from repro.obs.health import HealthState
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.tracing import Trace, TraceStore
from repro.serving.registry import SessionRegistry
from repro.serving.scheduler import EstimateScheduler, ServiceStats

__all__ = ["API_PREFIX", "EstimationHTTPServer", "make_server"]

#: The versioned prefix of the API surface.
API_PREFIX = "/v1"

#: The API routes that live under :data:`API_PREFIX`.  Their unversioned
#: spellings were removed after one deprecation release: they now 404 (and
#: are counted, so a straggler client shows up on dashboards).
_API_ROUTES = frozenset(
    {"/stats", "/graphs", "/estimate", "/warm", "/evict", "/update"}
)

#: Routes whose (normalized, unversioned) names may appear as a metric
#: label; anything else is collapsed into ``other`` so a URL-scanning
#: client cannot explode the label cardinality.
_KNOWN_ROUTES = frozenset(
    {
        "/healthz",
        "/readyz",
        "/metrics",
        "/traces",
    }
) | _API_ROUTES

#: Default machine-readable envelope code per status, for call sites that
#: do not name a more specific one.
_DEFAULT_CODES = {
    400: "bad_request",
    404: "not_found",
    413: "body_too_large",
    429: "graph_overloaded",
    500: "internal",
    503: "unavailable",
    504: "timeout",
}

#: Observability endpoints are not themselves recorded as traces — a
#: scraper polling ``/metrics`` every second would crowd real requests
#: out of the recent-traces window.
_UNTRACED_ROUTES = frozenset({"/healthz", "/readyz", "/metrics", "/traces"})


class EstimationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning the scheduler it serves through."""

    daemon_threads = True
    # Default accept backlog is 5: a burst of concurrent clients gets
    # connection resets before the handler can even answer 503.  Queue the
    # connections instead — backpressure belongs to the scheduler, which
    # answers with a retryable status rather than a dropped socket.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        registry: SessionRegistry,
        scheduler: EstimateScheduler,
        *,
        request_timeout: float = 30.0,
        max_body_bytes: int = 8 * 2**20,
        retry_after_seconds: float = 0.05,
        verbose: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        traces: Optional[TraceStore] = None,
        health: Optional[HealthState] = None,
        inherited_socket: Optional[socket.socket] = None,
    ) -> None:
        self.registry = registry
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.retry_after_seconds = retry_after_seconds
        self.verbose = verbose
        self._serving = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else TraceStore()
        self.health = health if health is not None else HealthState()
        self.health.add_check("scheduler_worker_alive", scheduler.worker_alive)
        self.health.add_check("scheduler_accepting", lambda: not scheduler.is_closed)
        self._http_requests = Counter(
            "repro_http_requests_total",
            "HTTP requests answered, by route, method and status.",
            labelnames=("route", "method", "status"),
            registry=self.metrics,
        )
        self._http_seconds = Histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency at the HTTP layer, by route.",
            buckets=LATENCY_BUCKETS,
            labelnames=("route",),
            registry=self.metrics,
        )
        self._http_deprecated = Counter(
            "repro_http_deprecated_requests_total",
            "Requests answered on a deprecated unversioned alias, by route.",
            labelnames=("route",),
            registry=self.metrics,
        )
        if inherited_socket is None:
            super().__init__(address, _Handler)
        else:
            # Pre-fork worker: adopt a socket that was bound (and is already
            # listening) before the fork instead of binding a fresh one.
            # ``bind_and_activate=False`` still creates an unused socket
            # object; swap it out before anything touches it.
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = inherited_socket
            self.server_address = inherited_socket.getsockname()
            # ``server_bind`` never ran, so fill the handler-facing fields
            # it would have set (skip its ``getfqdn`` reverse lookup).
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
            self.server_activate()

    def observe_http(self, *, route: str, method: str, status: int, seconds: float) -> None:
        """Feed one answered request into the HTTP metrics."""
        self._http_requests.inc(route=route, method=method, status=status)
        self._http_seconds.observe(seconds, route=route)

    def observe_deprecated(self, *, route: str) -> None:
        """Count one request answered on a deprecated unversioned alias."""
        self._http_deprecated.inc(route=route)

    def begin_drain(self) -> None:
        """Flip readiness to *unready* ahead of a graceful shutdown.

        Called by the CLI's signal handler (and by :meth:`close` itself)
        *before* the accept loop stops, so a load balancer scraping
        ``/readyz`` sees the drain and steers traffic away while requests
        are still being answered.
        """
        self.health.begin_drain()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Serve until :meth:`shutdown`, tracking that the loop is live.

        The flag lets :meth:`close` know whether calling ``shutdown()`` is
        safe: ``BaseServer.shutdown`` blocks forever when ``serve_forever``
        never ran (its completion event starts unset).
        """
        self._serving = True
        try:
            super().serve_forever(poll_interval=poll_interval)
        finally:
            self._serving = False

    @contextmanager
    def track_request(self) -> Iterator[None]:
        """Count one in-flight handler for the graceful-drain window."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def close(self, drain_seconds: float = 5.0) -> None:
        """Graceful shutdown: stop accepts, drain work, answer, then close.

        Ordering matters: stop the accept loop first (no new requests),
        drain the scheduler's queue (every accepted estimate resolves its
        future), wait up to ``drain_seconds`` for in-flight handler threads
        to write their responses (``daemon_threads`` means ``server_close``
        would otherwise abandon them mid-write), and only then release the
        socket.
        """
        self.begin_drain()
        if self._serving:
            self.shutdown()
        self.scheduler.close()
        deadline = time.monotonic() + drain_seconds
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.01)
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    server: EstimationHTTPServer  # narrowed for attribute access
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: Filled per request by :meth:`_observe`; defaults keep the error
    #: paths that bypass it (malformed request lines) safe.
    _request_id = ""
    _status = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Suppress per-request logging unless the server runs verbose."""
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _normalized_path(self) -> str:
        """``self.path`` with the ``/v1`` prefix stripped for dispatch."""
        path = self.path
        if path == API_PREFIX:
            return "/"
        if path.startswith(API_PREFIX + "/"):
            return path[len(API_PREFIX) :]
        return path

    def _send_json(self, status: int, document: object) -> None:
        body = json.dumps(document).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        *,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
        extra: Optional[dict[str, object]] = None,
    ) -> None:
        """Answer a non-2xx with the uniform v1 error envelope.

        The body always carries the four envelope fields —
        ``{"error", "code", "retry_after", "request_id"}`` — so clients can
        branch on ``code`` without sniffing status-specific shapes;
        ``extra`` merges additional context (e.g. the readiness checks)
        without displacing them.
        """
        envelope: dict[str, object] = {
            "error": message,
            "code": code or _DEFAULT_CODES.get(status, "error"),
            "retry_after": retry_after,
            "request_id": self._request_id,
        }
        if extra:
            envelope.update(extra)
        body = json.dumps(envelope).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        if retry_after is not None:
            # Decimal seconds: an internal convention the ServiceClient
            # parses; sub-second hints matter at micro-batching timescales.
            self.send_header("Retry-After", f"{retry_after:.3f}")
        self.end_headers()
        self.wfile.write(body)

    def send_error(  # noqa: D102 - BaseHTTPRequestHandler API
        self, code: int, message: Optional[str] = None, explain: Optional[str] = None
    ) -> None:
        # Protocol-level failures (malformed request line, unsupported
        # method) otherwise answer with the stdlib HTML error page; route
        # them through the envelope so *every* non-2xx is uniform.
        self.close_connection = True
        try:
            self._send_error_json(code, message or str(explain or "request failed"))
        except OSError:  # pragma: no cover - peer already gone
            pass

    def _observe(self, method: str, route_fn: "Callable[[], None]") -> None:
        """Run one routed request under a trace, then feed the HTTP metrics.

        The request id comes from the client's ``X-Request-Id`` header when
        present (so client and server logs correlate) and is echoed on the
        response either way.  The trace is active for the whole handler, so
        the scheduler submit path captures it into the queued request and
        the worker's spans land here.
        """
        rid = (self.headers.get("X-Request-Id") or "").strip()
        self._request_id = rid if rid else tracing.new_request_id()
        self._status = 0
        normalized = self._normalized_path()
        route = normalized if normalized in _KNOWN_ROUTES else "other"
        traced = tracing.tracing_enabled()
        trace = Trace(self._request_id, route=f"{method} {self.path}") if traced else None
        started = time.perf_counter()
        try:
            if trace is None:
                route_fn()
            else:
                with tracing.activate(trace):
                    route_fn()
        finally:
            elapsed = time.perf_counter() - started
            self.server.observe_http(
                route=route, method=method, status=self._status, seconds=elapsed
            )
            if trace is not None:
                trace.finish(self._status if self._status else None)
                if normalized not in _UNTRACED_ROUTES:
                    self.server.traces.record(trace)
                    tracing.emit_trace(trace)

    def _read_json(self) -> Optional[dict[str, object]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(400, "missing or invalid Content-Length")
            return None
        limit = self.server.max_body_bytes
        if length > limit:
            # Refuse without reading: the unread body desyncs the
            # keep-alive stream, so drop the connection after answering.
            self.close_connection = True
            self._send_error_json(
                413, f"request body of {length} bytes exceeds limit of {limit} bytes"
            )
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(document, dict):
            self._send_error_json(400, "JSON body must be an object")
            return None
        return document

    def _graph_name(self, document: dict[str, object]) -> Optional[str]:
        name = document.get("graph")
        if not isinstance(name, str) or not name:
            self._send_error_json(400, 'missing "graph" (string) field')
            return None
        return name

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route GET requests: health/readiness, metrics, traces, stats."""
        with self.server.track_request():
            self._observe("GET", self._route_get)

    def _reject_removed_alias(self, route: str) -> bool:
        """404 an unversioned spelling of an API route; whether it answered.

        The aliases were removed after their deprecation release.  The
        rejection is still counted into the deprecated-requests series, so
        a straggler client shows up on the same dashboard that watched the
        migration instead of vanishing into generic 404 noise.
        """
        if route not in _API_ROUTES or self.path.startswith(API_PREFIX):
            return False
        self.server.observe_deprecated(route=route)
        self._send_error_json(
            404,
            f"unversioned route {route} was removed; use {API_PREFIX}{route}",
            code="not_found",
        )
        return True

    def _route_get(self) -> None:
        route = self._normalized_path()
        if self._reject_removed_alias(route):
            return
        if route == "/healthz":
            draining = self.server.health.draining
            self._send_json(
                200,
                {
                    "status": "draining" if draining else "ok",
                    "draining": draining,
                    "graphs": list(self.server.registry.names()),
                },
            )
        elif route == "/readyz":
            ready, _ = self.server.health.readiness()
            if ready:
                self._send_json(200, self.server.health.as_row())
            else:
                self._send_error_json(
                    503,
                    "not ready",
                    code="not_ready",
                    extra=self.server.health.as_row(),
                )
        elif route == "/metrics":
            self._send_text(
                200,
                self.server.metrics.render(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif route == "/traces":
            self._send_json(200, self.server.traces.snapshot())
        elif route == "/stats":
            self._send_json(
                200,
                {
                    "scheduler": self.server.scheduler.stats.snapshot(),
                    "registry": self.server.registry.as_row(),
                },
            )
        elif route == "/graphs":
            self._send_json(200, {"graphs": self.server.registry.describe()})
        else:
            self._send_error_json(
                404, f"no such route: {self.path}", code="not_found"
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route POST requests: ``/estimate``, ``/warm``, ``/evict``, ...."""
        with self.server.track_request():
            self._observe("POST", self._route_post)

    def _route_post(self) -> None:
        document = self._read_json()
        if document is None:
            return
        route = self._normalized_path()
        if self._reject_removed_alias(route):
            return
        if route == "/estimate":
            self._handle_estimate(document)
        elif route == "/warm":
            self._handle_warm(document)
        elif route == "/evict":
            self._handle_evict(document)
        elif route == "/update":
            self._handle_update(document)
        else:
            self._send_error_json(
                404, f"no such route: {self.path}", code="not_found"
            )

    def _handle_estimate(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        paths = document.get("paths")
        if paths is None and "path" in document:
            paths = [document["path"]]
        if (
            not isinstance(paths, list)
            or not paths
            or not all(isinstance(path, str) and path for path in paths)
        ):
            self._send_error_json(
                400, 'need "paths" (non-empty list of strings) or "path"'
            )
            return
        try:
            future = self.server.scheduler.submit_many(graph, paths)
            estimates = future.result(timeout=self.server.request_timeout)
        except GraphOverloadedError as exc:
            # This graph is over its own admission budget while the rest of
            # the service still has room: 429, not 503.
            self._send_error_json(
                429,
                str(exc),
                code="graph_overloaded",
                retry_after=self.server.retry_after_seconds,
            )
            return
        except CircuitOpenError as exc:
            self._send_error_json(
                503, str(exc), code="circuit_open", retry_after=exc.retry_after
            )
            return
        except (ServiceOverloadedError, ServiceClosedError, SchedulerCrashError) as exc:
            # All transient server-side conditions: tell the client to
            # retry elsewhere/later, don't blame the request.
            self._send_error_json(
                503,
                str(exc),
                code="unavailable",
                retry_after=self.server.retry_after_seconds,
            )
            return
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc), code="unknown_graph")
            return
        except FutureTimeoutError:
            self._send_error_json(
                504,
                f"estimate timed out after {self.server.request_timeout}s",
                code="timeout",
            )
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc), code="bad_request")
            return
        except KeyError as exc:
            # Unknown labels surface as KeyError subclasses from the engine.
            self._send_error_json(400, str(exc), code="bad_request")
            return
        except Exception as exc:  # noqa: BLE001 - last-resort fault barrier
            # Anything unexpected must still produce a response: a dropped
            # connection looks like a network fault to the client and gives
            # the operator nothing to debug with.
            self._send_error_json(500, f"internal error: {exc!r}")
            return
        self._send_json(
            200,
            {"graph": graph, "count": len(estimates), "estimates": estimates},
        )

    def _handle_warm(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            session = self.server.registry.get(graph)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc), code="unknown_graph")
            return
        except CircuitOpenError as exc:
            self._send_error_json(
                503, str(exc), code="circuit_open", retry_after=exc.retry_after
            )
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc), code="bad_request")
            return
        self._send_json(200, {"graph": graph, "stats": session.stats.as_row()})

    def _handle_update(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            delta = GraphDelta.from_dict(document)
        except ReproError as exc:
            self._send_error_json(400, f"invalid delta: {exc}")
            return
        if not delta:
            self._send_error_json(400, 'delta needs "add" and/or "remove" triples')
            return
        try:
            row = self.server.registry.update_graph(graph, delta)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc), code="unknown_graph")
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc), code="bad_request")
            return
        self._send_json(200, row)

    def _handle_evict(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            evicted = self.server.registry.evict(graph)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc), code="unknown_graph")
            return
        self._send_json(200, {"graph": graph, "evicted": evicted})


def make_server(
    registry: SessionRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    window_seconds: float = 0.002,
    max_batch_paths: int = 512,
    min_coalesce_paths: int = 64,
    max_pending: int = 4096,
    max_pending_per_graph: Optional[int] = None,
    request_timeout: float = 30.0,
    max_body_bytes: int = 8 * 2**20,
    retry_after_seconds: float = 0.05,
    stats: Optional[ServiceStats] = None,
    verbose: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    traces: Optional[TraceStore] = None,
    health: Optional[HealthState] = None,
    inherited_socket: Optional[socket.socket] = None,
) -> EstimationHTTPServer:
    """Build a ready-to-run server (call ``serve_forever`` / ``close``).

    The scheduler is created here so the CLI and tests share one
    construction path; pass ``port=0`` to bind an ephemeral port (read it
    back from ``server.server_address``).  Pre-fork workers pass
    ``inherited_socket`` — a socket bound and listening before the fork —
    and the server adopts it instead of binding ``host:port`` itself.
    """
    if request_timeout <= 0:
        raise ServingError("request_timeout must be > 0")
    if max_body_bytes < 1:
        raise ServingError("max_body_bytes must be >= 1")
    if retry_after_seconds < 0:
        raise ServingError("retry_after_seconds must be >= 0")
    scheduler = EstimateScheduler(
        registry,
        window_seconds=window_seconds,
        max_batch_paths=max_batch_paths,
        min_coalesce_paths=min_coalesce_paths,
        max_pending=max_pending,
        max_pending_per_graph=max_pending_per_graph,
        stats=stats,
    )
    try:
        return EstimationHTTPServer(
            (host, port),
            registry,
            scheduler,
            request_timeout=request_timeout,
            max_body_bytes=max_body_bytes,
            retry_after_seconds=retry_after_seconds,
            verbose=verbose,
            metrics=metrics,
            traces=traces,
            health=health,
            inherited_socket=inherited_socket,
        )
    except OSError:
        scheduler.close()
        raise
