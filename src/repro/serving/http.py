"""Stdlib JSON HTTP endpoint over the registry + scheduler.

No framework, no dependencies: a :class:`http.server.ThreadingHTTPServer`
whose handler threads submit into the shared micro-batching scheduler and
block on their futures.  Because coalescing happens in the scheduler, N
concurrent HTTP clients asking for one path each still produce one
``estimate_batch`` call per window — the server is just another front-end
over the same core as the asyncio :class:`~repro.serving.service.EstimationService`.

Routes
------
``GET  /healthz``   liveness + registered graph names
``GET  /stats``     scheduler + registry counters (JSON)
``GET  /graphs``    one row per registered graph (built?, domain, config)
``POST /estimate``  ``{"graph": g, "paths": [...]}`` (or ``"path": "1/2"``)
``POST /warm``      ``{"graph": g}`` — build now, return build stats
``POST /evict``     ``{"graph": g}`` — drop the built session from memory
``POST /update``    ``{"graph": g, "add": [[s,l,t],...], "remove": [...]}`` —
                    apply an edge delta and swap the session incrementally

Error mapping
-------------
==========================================  ==============================
condition                                   response
==========================================  ==============================
unknown graph                               404
bad request / path / delta                  400
body over ``max_body_bytes``                413
per-graph admission budget hit              429 + ``Retry-After``
global queue full (backpressure)            503 + ``Retry-After``
circuit open for the graph                  503 + ``Retry-After`` (circuit)
scheduler crashed mid-flight / closing      503 + ``Retry-After``
batch timeout                               504
==========================================  ==============================

429 means *this graph* is over its admission budget — other graphs are
still being served, retry against the same server after the hint.  503
means the *whole service* cannot take the request right now (shared queue
full, graph circuit open, shutting down) — retry later or elsewhere.  The
``Retry-After`` header carries decimal seconds (an internal convention;
standard HTTP allows only whole seconds or a date) and
:class:`~repro.serving.client.ServiceClient` honours it as a lower bound
on its backoff pause.

On SIGTERM/SIGINT the CLI calls :meth:`EstimationHTTPServer.close`, which
drains gracefully: stop accepting connections, finish the scheduler's
queue, give in-flight handlers a bounded window to answer, then close.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Iterator, Optional

from repro.exceptions import (
    CircuitOpenError,
    GraphOverloadedError,
    ReproError,
    SchedulerCrashError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
    UnknownGraphError,
)
from repro.graph.delta import GraphDelta
from repro.serving.registry import SessionRegistry
from repro.serving.scheduler import EstimateScheduler, ServiceStats

__all__ = ["EstimationHTTPServer", "make_server"]


class EstimationHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning the scheduler it serves through."""

    daemon_threads = True
    # Default accept backlog is 5: a burst of concurrent clients gets
    # connection resets before the handler can even answer 503.  Queue the
    # connections instead — backpressure belongs to the scheduler, which
    # answers with a retryable status rather than a dropped socket.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        registry: SessionRegistry,
        scheduler: EstimateScheduler,
        *,
        request_timeout: float = 30.0,
        max_body_bytes: int = 8 * 2**20,
        retry_after_seconds: float = 0.05,
        verbose: bool = False,
    ) -> None:
        self.registry = registry
        self.scheduler = scheduler
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.retry_after_seconds = retry_after_seconds
        self.verbose = verbose
        self._serving = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        super().__init__(address, _Handler)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Serve until :meth:`shutdown`, tracking that the loop is live.

        The flag lets :meth:`close` know whether calling ``shutdown()`` is
        safe: ``BaseServer.shutdown`` blocks forever when ``serve_forever``
        never ran (its completion event starts unset).
        """
        self._serving = True
        try:
            super().serve_forever(poll_interval=poll_interval)
        finally:
            self._serving = False

    @contextmanager
    def track_request(self) -> Iterator[None]:
        """Count one in-flight handler for the graceful-drain window."""
        with self._inflight_lock:
            self._inflight += 1
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def close(self, drain_seconds: float = 5.0) -> None:
        """Graceful shutdown: stop accepts, drain work, answer, then close.

        Ordering matters: stop the accept loop first (no new requests),
        drain the scheduler's queue (every accepted estimate resolves its
        future), wait up to ``drain_seconds`` for in-flight handler threads
        to write their responses (``daemon_threads`` means ``server_close``
        would otherwise abandon them mid-write), and only then release the
        socket.
        """
        if self._serving:
            self.shutdown()
        self.scheduler.close()
        deadline = time.monotonic() + drain_seconds
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.01)
        self.server_close()


class _Handler(BaseHTTPRequestHandler):
    server: EstimationHTTPServer  # narrowed for attribute access
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Suppress per-request logging unless the server runs verbose."""
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, document: object) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str, *, retry_after: Optional[float] = None
    ) -> None:
        body = json.dumps(
            {"error": message}
            if retry_after is None
            else {"error": message, "retry_after": retry_after}
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Decimal seconds: an internal convention the ServiceClient
            # parses; sub-second hints matter at micro-batching timescales.
            self.send_header("Retry-After", f"{retry_after:.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[dict[str, object]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            self._send_error_json(400, "missing or invalid Content-Length")
            return None
        limit = self.server.max_body_bytes
        if length > limit:
            # Refuse without reading: the unread body desyncs the
            # keep-alive stream, so drop the connection after answering.
            self.close_connection = True
            self._send_error_json(
                413, f"request body of {length} bytes exceeds limit of {limit} bytes"
            )
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(document, dict):
            self._send_error_json(400, "JSON body must be an object")
            return None
        return document

    def _graph_name(self, document: dict[str, object]) -> Optional[str]:
        name = document.get("graph")
        if not isinstance(name, str) or not name:
            self._send_error_json(400, 'missing "graph" (string) field')
            return None
        return name

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route GET requests: ``/healthz``, ``/stats``, ``/graphs``."""
        with self.server.track_request():
            self._route_get()

    def _route_get(self) -> None:
        if self.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "graphs": list(self.server.registry.names())}
            )
        elif self.path == "/stats":
            self._send_json(
                200,
                {
                    "scheduler": self.server.scheduler.stats.snapshot(),
                    "registry": self.server.registry.as_row(),
                },
            )
        elif self.path == "/graphs":
            self._send_json(200, {"graphs": self.server.registry.describe()})
        else:
            self._send_error_json(404, f"no such route: {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Route POST requests: ``/estimate``, ``/warm``, ``/evict``, ...."""
        with self.server.track_request():
            self._route_post()

    def _route_post(self) -> None:
        document = self._read_json()
        if document is None:
            return
        if self.path == "/estimate":
            self._handle_estimate(document)
        elif self.path == "/warm":
            self._handle_warm(document)
        elif self.path == "/evict":
            self._handle_evict(document)
        elif self.path == "/update":
            self._handle_update(document)
        else:
            self._send_error_json(404, f"no such route: {self.path}")

    def _handle_estimate(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        paths = document.get("paths")
        if paths is None and "path" in document:
            paths = [document["path"]]
        if (
            not isinstance(paths, list)
            or not paths
            or not all(isinstance(path, str) and path for path in paths)
        ):
            self._send_error_json(
                400, 'need "paths" (non-empty list of strings) or "path"'
            )
            return
        try:
            future = self.server.scheduler.submit_many(graph, paths)
            estimates = future.result(timeout=self.server.request_timeout)
        except GraphOverloadedError as exc:
            # This graph is over its own admission budget while the rest of
            # the service still has room: 429, not 503.
            self._send_error_json(
                429, str(exc), retry_after=self.server.retry_after_seconds
            )
            return
        except CircuitOpenError as exc:
            self._send_error_json(503, str(exc), retry_after=exc.retry_after)
            return
        except (ServiceOverloadedError, ServiceClosedError, SchedulerCrashError) as exc:
            # All transient server-side conditions: tell the client to
            # retry elsewhere/later, don't blame the request.
            self._send_error_json(
                503, str(exc), retry_after=self.server.retry_after_seconds
            )
            return
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc))
            return
        except FutureTimeoutError:
            self._send_error_json(
                504, f"estimate timed out after {self.server.request_timeout}s"
            )
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        except KeyError as exc:
            # Unknown labels surface as KeyError subclasses from the engine.
            self._send_error_json(400, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - last-resort fault barrier
            # Anything unexpected must still produce a response: a dropped
            # connection looks like a network fault to the client and gives
            # the operator nothing to debug with.
            self._send_error_json(500, f"internal error: {exc!r}")
            return
        self._send_json(
            200,
            {"graph": graph, "count": len(estimates), "estimates": estimates},
        )

    def _handle_warm(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            session = self.server.registry.get(graph)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc))
            return
        except CircuitOpenError as exc:
            self._send_error_json(503, str(exc), retry_after=exc.retry_after)
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, {"graph": graph, "stats": session.stats.as_row()})

    def _handle_update(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            delta = GraphDelta.from_dict(document)
        except ReproError as exc:
            self._send_error_json(400, f"invalid delta: {exc}")
            return
        if not delta:
            self._send_error_json(400, 'delta needs "add" and/or "remove" triples')
            return
        try:
            row = self.server.registry.update_graph(graph, delta)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc))
            return
        except ReproError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(200, row)

    def _handle_evict(self, document: dict[str, object]) -> None:
        graph = self._graph_name(document)
        if graph is None:
            return
        try:
            evicted = self.server.registry.evict(graph)
        except UnknownGraphError as exc:
            self._send_error_json(404, str(exc))
            return
        self._send_json(200, {"graph": graph, "evicted": evicted})


def make_server(
    registry: SessionRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    window_seconds: float = 0.002,
    max_batch_paths: int = 512,
    min_coalesce_paths: int = 64,
    max_pending: int = 4096,
    max_pending_per_graph: Optional[int] = None,
    request_timeout: float = 30.0,
    max_body_bytes: int = 8 * 2**20,
    retry_after_seconds: float = 0.05,
    stats: Optional[ServiceStats] = None,
    verbose: bool = False,
) -> EstimationHTTPServer:
    """Build a ready-to-run server (call ``serve_forever`` / ``close``).

    The scheduler is created here so the CLI and tests share one
    construction path; pass ``port=0`` to bind an ephemeral port (read it
    back from ``server.server_address``).
    """
    if request_timeout <= 0:
        raise ServingError("request_timeout must be > 0")
    if max_body_bytes < 1:
        raise ServingError("max_body_bytes must be >= 1")
    if retry_after_seconds < 0:
        raise ServingError("retry_after_seconds must be >= 0")
    scheduler = EstimateScheduler(
        registry,
        window_seconds=window_seconds,
        max_batch_paths=max_batch_paths,
        min_coalesce_paths=min_coalesce_paths,
        max_pending=max_pending,
        max_pending_per_graph=max_pending_per_graph,
        stats=stats,
    )
    try:
        return EstimationHTTPServer(
            (host, port),
            registry,
            scheduler,
            request_timeout=request_timeout,
            max_body_bytes=max_body_bytes,
            retry_after_seconds=retry_after_seconds,
            verbose=verbose,
        )
    except OSError:
        scheduler.close()
        raise
