"""Dynamic-programming join-order planner for long path queries.

Given a path query longer than the histogram's ``k``, the planner chooses how
to split it into directly-evaluable sub-paths and in which order to join
them.  It is the textbook interval dynamic program: ``best[i][j]`` holds the
cheapest plan for the label sub-sequence ``[i, j)``, built either as a single
scan (when ``j - i ≤ k``) or as the best join of two adjacent intervals.

Cost model: the sum of estimated intermediate result cardinalities (the usual
``C_out`` cost), so a mis-estimate of a sub-path's selectivity directly leads
to a worse join order — which is exactly how estimation accuracy feeds into
query performance, the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.exceptions import PlanningError
from repro.optimizer.cardinality import CardinalityModel
from repro.optimizer.plan import JoinNode, PlanNode, ScanNode
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["PlannedQuery", "PathQueryPlanner"]

PathLike = Union[str, LabelPath]


@dataclass(frozen=True)
class PlannedQuery:
    """The planner's output: the chosen plan and its estimated cost."""

    query: LabelPath
    plan: PlanNode
    estimated_cost: float

    def describe(self) -> str:
        """Readable multi-line rendering of the plan."""
        return (
            f"query {self.query} (estimated cost {self.estimated_cost:.1f})\n"
            + self.plan.describe()
        )


@dataclass
class _Cell:
    plan: PlanNode
    cardinality: float
    cost: float


class PathQueryPlanner:
    """Choose a join order for a path query using a cardinality model."""

    def __init__(self, model: CardinalityModel) -> None:
        self._model = model

    @property
    def model(self) -> CardinalityModel:
        """The cardinality model the planner consults."""
        return self._model

    def plan(self, query: PathLike) -> PlannedQuery:
        """Plan ``query`` and return the cheapest plan found.

        Raises :class:`~repro.exceptions.PlanningError` for queries that
        cannot be planned (empty queries are impossible by construction of
        :class:`~repro.paths.label_path.LabelPath`).
        """
        label_path = as_label_path(query)
        labels = label_path.labels
        length = len(labels)
        max_scan = self._model.max_scan_length()

        # Batch every scannable interval's estimate up front: one estimator
        # round-trip instead of O(length · k) separate calls, so a session
        # with a vectorised hot path answers the whole DP table at once.
        scan_intervals: list[tuple[int, int]] = [
            (start, start + span)
            for span in range(1, min(length, max_scan) + 1)
            for start in range(0, length - span + 1)
        ]
        scan_paths = [LabelPath(labels[start:end]) for start, end in scan_intervals]
        scan_cardinalities = dict(
            zip(scan_intervals, self._model.scan_cardinalities(scan_paths))
        )

        # best[(i, j)] = cheapest cell covering labels[i:j]
        best: dict[tuple[int, int], _Cell] = {}
        for span in range(1, length + 1):
            for start in range(0, length - span + 1):
                end = start + span
                sub_path = LabelPath(labels[start:end])
                candidate: Optional[_Cell] = None
                if span <= max_scan:
                    cardinality = scan_cardinalities[(start, end)]
                    candidate = _Cell(
                        plan=ScanNode(sub_path, cardinality),
                        cardinality=cardinality,
                        cost=cardinality,
                    )
                for split in range(start + 1, end):
                    left = best.get((start, split))
                    right = best.get((split, end))
                    if left is None or right is None:
                        continue
                    cardinality = self._model.join_cardinality(
                        left.cardinality, right.cardinality
                    )
                    cost = left.cost + right.cost + cardinality
                    if candidate is None or cost < candidate.cost:
                        candidate = _Cell(
                            plan=JoinNode(left.plan, right.plan, cardinality),
                            cardinality=cardinality,
                            cost=cost,
                        )
                if candidate is None:
                    raise PlanningError(
                        f"no plan exists for sub-path {sub_path} "
                        f"(max scan length {max_scan})"
                    )
                best[(start, end)] = candidate

        final = best[(0, length)]
        return PlannedQuery(query=label_path, plan=final.plan, estimated_cost=final.cost)
