"""Query plans for label-path queries.

The optimizer substrate models the paper's motivating use case: a graph
query engine that must pick an execution plan for a long path query.  A plan
is a binary tree whose leaves are *sub-paths short enough to be answered by
an index or scan* (length ≤ the histogram's ``k``) and whose internal nodes
are joins on the shared vertex between the left part's targets and the right
part's sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.exceptions import PlanningError
from repro.paths.label_path import LabelPath

__all__ = ["PlanNode", "ScanNode", "JoinNode"]


@dataclass(frozen=True)
class PlanNode:
    """Common interface of plan tree nodes."""

    def path(self) -> LabelPath:
        """The label path the subtree computes."""
        raise NotImplementedError

    def leaves(self) -> Iterator["ScanNode"]:
        """All scan leaves, left to right."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the subtree (a single scan has depth 1)."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """A human-readable, indented rendering of the subtree."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A leaf: evaluate a (short) label path directly.

    Attributes
    ----------
    label_path:
        The sub-path this leaf scans.
    estimated_cardinality:
        The optimizer's estimate of ``f(label_path)`` at planning time.
    """

    label_path: LabelPath
    estimated_cardinality: float

    def path(self) -> LabelPath:
        """The label path this leaf evaluates."""
        return self.label_path

    def leaves(self) -> Iterator["ScanNode"]:
        """This leaf itself (the recursion's base case)."""
        yield self

    def depth(self) -> int:
        """Tree depth of a leaf: always 1."""
        return 1

    def describe(self, indent: int = 0) -> str:
        """One indented text line describing this scan."""
        pad = "  " * indent
        return f"{pad}Scan[{self.label_path}] (est={self.estimated_cardinality:.1f})"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """An internal node: join the left result's targets with the right's sources."""

    left: PlanNode
    right: PlanNode
    estimated_cardinality: float

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise PlanningError("a join node needs both children")

    def path(self) -> LabelPath:
        """The concatenated label path the whole subtree produces."""
        return self.left.path().concat(self.right.path())

    def leaves(self) -> Iterator[ScanNode]:
        """All scan leaves of the subtree, left to right."""
        yield from self.left.leaves()
        yield from self.right.leaves()

    def depth(self) -> int:
        """Height of the subtree rooted at this join."""
        return 1 + max(self.left.depth(), self.right.depth())

    def describe(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the subtree."""
        pad = "  " * indent
        lines = [f"{pad}Join (est={self.estimated_cardinality:.1f})"]
        lines.append(self.left.describe(indent + 1))
        lines.append(self.right.describe(indent + 1))
        return "\n".join(lines)


PlanTree = Union[ScanNode, JoinNode]
