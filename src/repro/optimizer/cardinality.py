"""Cardinality estimation for the path-query planner.

Leaves short enough to fall inside the histogram's domain (length ≤ ``k``)
are estimated directly by the :class:`~repro.estimation.estimator.
PathSelectivityEstimator`.  Join results are estimated with the classical
independence assumption: joining two binary relations on the shared vertex
column gives ``|left| · |right| / max(distinct join keys)``, where the number
of distinct join keys is approximated by the number of graph vertices.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Union

from repro.exceptions import PlanningError
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["CardinalityModel", "HistogramCardinalityModel", "TrueCardinalityModel"]

PathLike = Union[str, LabelPath]


class _Estimator(Protocol):
    """Anything with an ``estimate(path) -> float`` method."""

    def estimate(self, path: PathLike) -> float:  # pragma: no cover - protocol
        """Estimated cardinality of ``path``."""
        ...


class CardinalityModel:
    """Cardinality model shared by the planner and the plan cost function."""

    def scan_cardinality(self, path: PathLike) -> float:
        """Estimated result size of directly evaluating ``path``."""
        raise NotImplementedError

    def scan_cardinalities(self, paths: Sequence[PathLike]) -> list[float]:
        """Estimated result sizes for a batch of scannable sub-paths.

        The default loops over :meth:`scan_cardinality`; models backed by a
        batch-capable estimator override this so the planner can request all
        interval estimates in one call.
        """
        return [self.scan_cardinality(path) for path in paths]

    def join_cardinality(self, left_cardinality: float, right_cardinality: float) -> float:
        """Estimated result size of joining two sub-results on one vertex column."""
        raise NotImplementedError

    def max_scan_length(self) -> int:
        """Longest sub-path the model can estimate directly."""
        raise NotImplementedError


class HistogramCardinalityModel(CardinalityModel):
    """Cardinality model backed by a histogram estimator.

    Parameters
    ----------
    estimator:
        Any object with ``estimate(path)`` — typically a
        :class:`~repro.estimation.estimator.PathSelectivityEstimator`.
    max_length:
        The histogram's ``k`` (longest directly estimable sub-path).
    vertex_count:
        ``|V|`` of the graph, used as the distinct-key estimate in joins.
    """

    def __init__(self, estimator: _Estimator, max_length: int, vertex_count: int) -> None:
        if max_length < 1:
            raise PlanningError("max_length must be >= 1")
        if vertex_count < 1:
            raise PlanningError("vertex_count must be >= 1")
        self._estimator = estimator
        self._max_length = max_length
        self._vertex_count = vertex_count

    def scan_cardinality(self, path: PathLike) -> float:
        """Estimated result cardinality of scanning ``path`` directly."""
        label_path = as_label_path(path)
        if label_path.length > self._max_length:
            raise PlanningError(
                f"sub-path {label_path} longer than the estimator's k={self._max_length}"
            )
        return max(0.0, float(self._estimator.estimate(label_path)))

    def scan_cardinalities(self, paths: Sequence[PathLike]) -> list[float]:
        """Batch :meth:`scan_cardinality`, using the estimator's batch API."""
        label_paths = [as_label_path(path) for path in paths]
        for label_path in label_paths:
            if label_path.length > self._max_length:
                raise PlanningError(
                    f"sub-path {label_path} longer than the estimator's "
                    f"k={self._max_length}"
                )
        batch = getattr(self._estimator, "estimate_batch", None)
        if batch is None:
            return [
                max(0.0, float(self._estimator.estimate(path))) for path in label_paths
            ]
        return [max(0.0, float(value)) for value in batch(label_paths)]

    def join_cardinality(self, left_cardinality: float, right_cardinality: float) -> float:
        """Joined cardinality under the uniform ``|V|`` distinct-key model."""
        return left_cardinality * right_cardinality / float(self._vertex_count)

    def max_scan_length(self) -> int:
        """Longest sub-path the backing histogram can estimate directly."""
        return self._max_length


class TrueCardinalityModel(CardinalityModel):
    """Oracle model that uses exact selectivities (for plan-quality baselines)."""

    def __init__(self, catalog, vertex_count: int) -> None:
        if vertex_count < 1:
            raise PlanningError("vertex_count must be >= 1")
        self._catalog = catalog
        self._vertex_count = vertex_count

    def scan_cardinality(self, path: PathLike) -> float:
        """Exact result cardinality of ``path`` from the catalog."""
        return float(self._catalog.selectivity(path))

    def join_cardinality(self, left_cardinality: float, right_cardinality: float) -> float:
        """Joined cardinality under the uniform ``|V|`` distinct-key model."""
        return left_cardinality * right_cardinality / float(self._vertex_count)

    def max_scan_length(self) -> int:
        """The catalog's ``k`` (every path up to it has an exact count)."""
        return self._catalog.max_length
