"""Path-query optimizer substrate built on the selectivity estimator."""

from repro.optimizer.cardinality import (
    CardinalityModel,
    HistogramCardinalityModel,
    TrueCardinalityModel,
)
from repro.optimizer.executor import ExecutionResult, PlanExecutor
from repro.optimizer.plan import JoinNode, PlanNode, ScanNode
from repro.optimizer.planner import PathQueryPlanner, PlannedQuery

__all__ = [
    "CardinalityModel",
    "ExecutionResult",
    "HistogramCardinalityModel",
    "JoinNode",
    "PathQueryPlanner",
    "PlanExecutor",
    "PlanNode",
    "PlannedQuery",
    "ScanNode",
    "TrueCardinalityModel",
]
