"""Plan execution.

Executes the plans produced by :class:`~repro.optimizer.planner.
PathQueryPlanner` against a real graph: scan leaves are evaluated with the
matrix evaluator, join nodes perform a hash join of the left result's target
column with the right result's source column.  The executor also records the
true size of every intermediate result, which the examples and tests use to
compare the *actual* work done by plans chosen under different estimators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.graph.digraph import LabeledDiGraph
from repro.optimizer.plan import JoinNode, PlanNode, ScanNode
from repro.paths.evaluation import MatrixPathEvaluator, PathEvaluator

__all__ = ["ExecutionResult", "PlanExecutor"]


@dataclass
class ExecutionResult:
    """Result of executing one plan: the pairs and per-node true cardinalities."""

    pairs: set[tuple[object, object]]
    intermediate_cardinalities: list[int] = field(default_factory=list)

    @property
    def cardinality(self) -> int:
        """The number of result pairs."""
        return len(self.pairs)

    @property
    def total_intermediate_work(self) -> int:
        """Sum of all intermediate result sizes (the executed ``C_out`` cost)."""
        return sum(self.intermediate_cardinalities)


class PlanExecutor:
    """Execute plan trees against a graph."""

    def __init__(
        self, graph: LabeledDiGraph, *, evaluator: Optional[PathEvaluator] = None
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator if evaluator is not None else MatrixPathEvaluator(graph)

    def execute(self, plan: PlanNode) -> ExecutionResult:
        """Run ``plan`` and return its result pairs plus intermediate sizes."""
        intermediates: list[int] = []

        def run(node: PlanNode) -> set[tuple[object, object]]:
            """Evaluate ``node`` bottom-up, recording intermediate sizes."""
            if isinstance(node, ScanNode):
                pairs = self._evaluator.pairs(node.label_path)
                intermediates.append(len(pairs))
                return pairs
            if isinstance(node, JoinNode):
                left_pairs = run(node.left)
                right_pairs = run(node.right)
                # Hash join: index the right side by its source vertex, probe
                # with the left side's target vertex.
                by_source: dict[object, list[object]] = {}
                for source, target in right_pairs:
                    by_source.setdefault(source, []).append(target)
                joined: set[tuple[object, object]] = set()
                for source, middle in left_pairs:
                    for target in by_source.get(middle, ()):
                        joined.add((source, target))
                intermediates.append(len(joined))
                return joined
            raise TypeError(f"unknown plan node type: {type(node).__name__}")

        pairs = run(plan)
        return ExecutionResult(pairs=pairs, intermediate_cardinalities=intermediates)
