"""Numerical ordering (Section 3.2).

In numerical ordering each base-label rank is a digit and a label path is the
number those digits spell in a ``|L|``-based numeral system.  Shorter paths
always precede longer ones (rule (1) of the paper); paths of equal length are
compared digit by digit (rule (2)).

With the alphabetical ranking this is the "native" order in which a system
would naturally enumerate label paths (and the order of the paper's
Figure 1); with the cardinality ranking it becomes the ``num-card`` method.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ordering.base import Ordering, PathLike
from repro.paths.index import canonical_digit_blocks
from repro.paths.label_path import LabelPath

__all__ = ["NumericalOrdering"]


class NumericalOrdering(Ordering):
    """Length-first, then digit-wise (base-``|L|``) comparison of rank strings."""

    name = "num"

    def index(self, path: PathLike) -> int:
        """Position of ``path``: length block plus its base-``|L|`` value."""
        label_path = self._validate_path(path)
        base = self._ranking.size
        length = label_path.length
        # Offset of the block containing all paths shorter than ``length``.
        offset = sum(base**i for i in range(1, length))
        # Within the block, the path's digits (rank - 1) form a base-``|L|``
        # number, most significant digit first.
        value = 0
        for label in label_path:
            value = value * base + (self._ranking.rank(label) - 1)
        return offset + value

    def _rank_block(self, length: int, ranks: np.ndarray) -> np.ndarray:
        base = self._ranking.size
        offset = sum(base**i for i in range(1, length))
        powers = base ** np.arange(length - 1, -1, -1, dtype=np.int64)
        return offset + (ranks - 1) @ powers

    def path(self, index: int) -> LabelPath:
        """Invert :meth:`index`: decode the base-``|L|`` digits back to labels."""
        index = self._validate_index(index)
        base = self._ranking.size
        length = 1
        remaining = index
        while remaining >= base**length:
            remaining -= base**length
            length += 1
        # Decode ``remaining`` as a ``length``-digit base-``|L|`` number.
        digits = [0] * length
        for position in range(length - 1, -1, -1):
            digits[position] = remaining % base
            remaining //= base
        labels = [self._ranking.label(digit + 1) for digit in digits]
        return LabelPath(labels)

    def path_array(self, indices: Optional[Sequence[int]] = None) -> list[LabelPath]:
        """Vectorised :meth:`path` over many indices (default: whole domain)."""
        index_array = self._validate_index_array(indices)
        # A numerical ordering index is the canonical domain index over the
        # *rank* order, so one digit-block decomposition unranks everything;
        # digit ``d`` maps to the label with rank ``d + 1``.
        label_array = np.asarray(self._ranking.labels, dtype=object)
        out: list[Optional[LabelPath]] = [None] * index_array.size
        for _, positions, digits in canonical_digit_blocks(
            self._ranking.size, self._max_length, index_array
        ):
            rows = label_array[digits]
            for position, row in zip(positions.tolist(), rows):
                out[position] = LabelPath._from_validated(tuple(row))
        return out  # type: ignore[return-value]
