"""Lexicographical ordering (Section 3.2).

Lexicographical ordering is "the ordering rule used in dictionaries": every
path is compared position by position, and a path that is a proper prefix of
another comes immediately before it (followed by the rest of its extensions),
exactly like ``"a" < "aa" < "ab" < "b"`` in a dictionary.

The paper formalises this by padding each path to length ``k`` with blank
symbols; the worked example in Table 2 (``lex-alph``: ``1, 1/1, 1/2, 1/3, 2,
2/1, ...``) places a path *before* its extensions, i.e. the blank symbol
sorts before every real label.  We follow the worked example (the normative
artefact of the paper) and note that the inequality direction in the prose
(``rank(blank) > rank(l)``) is inconsistent with it.

Equivalently, the ordering is a pre-order traversal of the label-path trie in
rank order, which is how both directions of the bijection are computed in
closed form below.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from repro.ordering.base import Ordering, PathLike
from repro.paths.label_path import LabelPath

__all__ = ["LexicographicalOrdering"]


class LexicographicalOrdering(Ordering):
    """Dictionary (trie pre-order) ordering of label paths."""

    name = "lex"

    @lru_cache(maxsize=None)
    def _subtree_size(self, remaining_depth: int) -> int:
        """Number of paths in a trie subtree rooted at depth ``k - remaining_depth``.

        The root of the subtree is itself a path (1), plus ``|L|`` children
        each rooting a subtree one level shallower.
        """
        if remaining_depth <= 0:
            return 1
        return 1 + self._ranking.size * self._subtree_size(remaining_depth - 1)

    def index(self, path: PathLike) -> int:
        """Pre-order trie position of ``path`` (closed form, no table)."""
        label_path = self._validate_path(path)
        k = self._max_length
        index = 0
        for position, label in enumerate(label_path, start=1):
            rank = self._ranking.rank(label)
            # Skip the whole subtrees of the (rank - 1) earlier siblings...
            index += (rank - 1) * self._subtree_size(k - position)
            # ...and, except at the final position, the node itself (pre-order:
            # the prefix path precedes all of its extensions).
            if position < label_path.length:
                index += 1
        return index

    def _rank_block(self, length: int, ranks: np.ndarray) -> np.ndarray:
        k = self._max_length
        # Same pre-order walk as ``index``, with the per-position sibling
        # subtrees summed as one matrix product: position p contributes
        # (rank - 1) subtrees of depth k - p, plus the node step (+1) at every
        # non-final position.
        subtree_sizes = np.array(
            [self._subtree_size(k - position) for position in range(1, length + 1)],
            dtype=np.int64,
        )
        return (ranks - 1) @ subtree_sizes + (length - 1)

    def path(self, index: int) -> LabelPath:
        """Invert :meth:`index`: the path at pre-order position ``index``."""
        index = self._validate_index(index)
        k = self._max_length
        labels: list[str] = []
        remaining = index
        depth = 1
        while True:
            subtree = self._subtree_size(k - depth)
            rank = remaining // subtree + 1
            remaining -= (rank - 1) * subtree
            labels.append(self._ranking.label(rank))
            if remaining == 0:
                # The walk stops exactly at this node: the path ends here.
                return LabelPath(labels)
            # Step past the node itself into its children.
            remaining -= 1
            depth += 1

    def path_array(self, indices: Optional[Sequence[int]] = None) -> list[LabelPath]:
        """Vectorised :meth:`path` over many indices (default: whole domain)."""
        index_array = self._validate_index_array(indices)
        k = self._max_length
        count = index_array.size
        if count == 0:
            return []
        # The same pre-order walk as ``path``, run over all rows at once: at
        # each depth the still-active rows peel one rank off, rows that hit
        # remaining == 0 terminate there.  O(k) vectorised passes.
        remaining = index_array.copy()
        ranks = np.zeros((count, k), dtype=np.int64)
        lengths = np.zeros(count, dtype=np.int64)
        active = np.arange(count, dtype=np.int64)
        for depth in range(1, k + 1):
            subtree = self._subtree_size(k - depth)
            chunk = remaining[active]
            rank = chunk // subtree + 1
            chunk -= (rank - 1) * subtree
            ranks[active, depth - 1] = rank
            done = chunk == 0
            lengths[active[done]] = depth
            remaining[active] = chunk
            active = active[~done]
            remaining[active] -= 1
        label_array = np.asarray(self._ranking.labels, dtype=object)
        rows = label_array[np.maximum(ranks - 1, 0)]
        return [
            LabelPath._from_validated(tuple(row[:length]))
            for row, length in zip(rows, lengths.tolist())
        ]
