"""Abstract interface of a histogram-domain ordering.

An *ordering* of the label-path domain ``Lk`` is a bijection between ``Lk``
and the integer interval ``[0, |Lk|)`` (Section 2 of the paper).  Every
concrete ordering exposes the two directions of that bijection:

* :meth:`Ordering.index` — ranking: label path → positional index;
* :meth:`Ordering.path` — unranking: positional index → label path.

Orderings are deterministic, stateless after construction, and cheap to call;
the estimation layer invokes :meth:`Ordering.index` once per point query.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.exceptions import IndexOutOfDomainError, OrderingError, UnknownLabelError
from repro.ordering.ranking import RankingRule
from repro.paths.enumeration import domain_size, enumerate_label_paths
from repro.paths.index import (
    canonical_digit_blocks,
    domain_indices_to_paths,
    paths_to_domain_indices,
)
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["Ordering"]

PathLike = Union[str, LabelPath]


class Ordering:
    """Base class of all histogram-domain orderings.

    Parameters
    ----------
    ranking:
        The ranking rule over the base label set (``alph`` or ``card``).
    max_length:
        The maximum label-path length ``k`` the ordering covers.
    """

    #: Short ordering-rule name; combined with the ranking name it produces
    #: the full method name, e.g. ``"num-card"`` (see :attr:`full_name`).
    name: str = "base"

    def __init__(self, ranking: RankingRule, max_length: int) -> None:
        if max_length < 1:
            raise OrderingError("max_length must be >= 1")
        self._ranking = ranking
        self._max_length = max_length
        self._size = domain_size(ranking.size, max_length)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def ranking(self) -> RankingRule:
        """The ranking rule over the base label set."""
        return self._ranking

    @property
    def labels(self) -> tuple[str, ...]:
        """The label alphabet (in rank order)."""
        return self._ranking.labels

    @property
    def max_length(self) -> int:
        """The maximum path length ``k``."""
        return self._max_length

    @property
    def size(self) -> int:
        """``|Lk|`` — the number of label paths the ordering covers."""
        return self._size

    @property
    def full_name(self) -> str:
        """The paper's naming convention ``<ordering rule>-<ranking rule>``."""
        return f"{self.name}-{self._ranking.name}"

    # ------------------------------------------------------------------
    # the bijection
    # ------------------------------------------------------------------
    def index(self, path: PathLike) -> int:
        """The positional index of ``path`` in ``[0, |Lk|)`` (ranking)."""
        raise NotImplementedError

    def path(self, index: int) -> LabelPath:
        """The label path at positional ``index`` (unranking)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _validate_path(self, path: PathLike) -> LabelPath:
        """Parse and validate a path against the alphabet and ``max_length``."""
        label_path = as_label_path(path)
        if label_path.length > self._max_length:
            raise OrderingError(
                f"path {label_path} longer than ordering max_length={self._max_length}"
            )
        for label in label_path:
            if label not in self._ranking._rank_of:
                raise UnknownLabelError(label)
        return label_path

    def _validate_index(self, index: int) -> int:
        """Validate a positional index against the domain size."""
        if not isinstance(index, int):
            raise OrderingError(f"index must be an int, got {type(index).__name__}")
        if index < 0 or index >= self._size:
            raise IndexOutOfDomainError(index, self._size)
        return index

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def iter_paths(self) -> Iterator[LabelPath]:
        """Iterate over all label paths in index order (0, 1, 2, ...)."""
        for index in range(self._size):
            yield self.path(index)

    def indices(self, paths: Iterator[PathLike]) -> list[int]:
        """Indices of a batch of paths (in input order)."""
        return [self.index(path) for path in paths]

    # ------------------------------------------------------------------
    # vectorised ranking
    # ------------------------------------------------------------------
    def index_array(self, paths: Optional[Sequence[PathLike]] = None) -> np.ndarray:
        """Ordering indices of a batch of paths as one ``int64`` array.

        ``paths=None`` ranks the *entire domain* in canonical
        numerical-alphabetical enumeration order (the order of
        :func:`~repro.paths.enumeration.enumerate_label_paths` over the sorted
        alphabet) — exactly the position table the estimation engine caches.
        The base implementation loops over :meth:`index`; the closed-form
        orderings override :meth:`_rank_block` so the whole table is computed
        with per-length vectorised arithmetic instead of a per-path Python
        loop.  Both routes agree element-wise by construction (and by test).
        """
        blocks = self._canonical_rank_blocks(paths)
        if blocks is None:
            if paths is None:
                iterator: Iterator[PathLike] = enumerate_label_paths(
                    sorted(self.labels), self._max_length
                )
                count = self._size
            else:
                iterator = iter(paths)
                count = len(paths)
            return np.fromiter(
                (self.index(path) for path in iterator), dtype=np.int64, count=count
            )
        if paths is None:
            out = np.empty(self._size, dtype=np.int64)
        else:
            out = np.empty(len(paths), dtype=np.int64)
        for length, positions, ranks in blocks:
            out[positions] = self._rank_block(length, ranks)
        return out

    def _rank_block(self, length: int, ranks: np.ndarray) -> np.ndarray:
        """Vectorised ranking of one length group (``ranks`` is 1-based).

        ``ranks`` has shape ``(n, length)``; row ``i`` holds the ranking-rule
        ranks of one path's labels.  Orderings with a closed-form index rule
        override this; the base class signals "no vectorised form" by raising,
        which makes :meth:`index_array` fall back to the scalar loop.
        """
        raise NotImplementedError

    def _canonical_rank_blocks(
        self, paths: Optional[Sequence[PathLike]]
    ) -> Optional[list[tuple[int, np.ndarray, np.ndarray]]]:
        """Per-length ``(length, positions, 1-based rank matrix)`` groups.

        Returns ``None`` when the ordering has no vectorised
        :meth:`_rank_block`, so :meth:`index_array` can fall back.  Input paths
        are validated through the same canonical-domain arithmetic the scalar
        path uses (unknown labels and over-length paths raise).
        """
        if type(self)._rank_block is Ordering._rank_block:
            return None
        sorted_labels = sorted(self.labels)
        # digit (position in the sorted alphabet) -> ranking-rule rank.
        rank_of_digit = np.array(
            [self._ranking.rank(label) for label in sorted_labels], dtype=np.int64
        )
        indices: Optional[np.ndarray]
        if paths is None:
            indices = None
        else:
            indices = paths_to_domain_indices(
                paths, sorted_labels, max_length=self._max_length
            )
        return [
            (length, positions, rank_of_digit[digits])
            for length, positions, digits in canonical_digit_blocks(
                self._ranking.size, self._max_length, indices
            )
        ]

    def rank_domain_indices(self, indices) -> np.ndarray:
        """Ordering indices for a batch of *canonical* domain indices.

        Equivalent to ranking the paths those indices denote
        (``index_array(domain_indices_to_paths(indices, ...))``) without
        materialising any :class:`LabelPath` objects when the ordering has a
        closed-form :meth:`_rank_block`: the canonical indices decompose
        straight into digit matrices.  This is the translation the
        sparse-catalog pipeline uses to lay nonzero selectivities out in
        ordering order.
        """
        index_array = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
        if index_array.ndim != 1:
            raise OrderingError("domain indices must be one-dimensional")
        sorted_labels = sorted(self.labels)
        if type(self)._rank_block is Ordering._rank_block:
            paths = domain_indices_to_paths(
                index_array, sorted_labels, self._max_length
            )
            return np.fromiter(
                (self.index(path) for path in paths),
                dtype=np.int64,
                count=len(paths),
            )
        rank_of_digit = np.array(
            [self._ranking.rank(label) for label in sorted_labels], dtype=np.int64
        )
        out = np.empty(index_array.size, dtype=np.int64)
        for length, positions, digits in canonical_digit_blocks(
            self._ranking.size, self._max_length, index_array
        ):
            out[positions] = self._rank_block(length, rank_of_digit[digits])
        return out

    # ------------------------------------------------------------------
    # vectorised unranking
    # ------------------------------------------------------------------
    def _validate_index_array(self, indices: Optional[Sequence[int]]) -> np.ndarray:
        """Validate a batch of ordering indices (``None`` = the full domain)."""
        if indices is None:
            return np.arange(self._size, dtype=np.int64)
        index_array = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
        if index_array.ndim != 1:
            raise OrderingError("ordering indices must be one-dimensional")
        if index_array.size:
            low = int(index_array.min())
            high = int(index_array.max())
            if low < 0:
                raise IndexOutOfDomainError(low, self._size)
            if high >= self._size:
                raise IndexOutOfDomainError(high, self._size)
        return index_array

    def path_array(self, indices: Optional[Sequence[int]] = None) -> list[LabelPath]:
        """Label paths at a batch of ordering indices (vectorised unranking).

        The inverse of :meth:`index_array`: ``indices=None`` unranks the
        *entire domain* in ordering order (element ``i`` is ``path(i)``).
        The base implementation loops over :meth:`path`; the closed-form
        orderings override this with per-length vectorised arithmetic, which
        is what makes unranking-heavy sweeps (``domain_indices_to_paths``
        over catalogs, experiment reports) cheap.  Both routes agree
        element-wise by construction (and by test).
        """
        index_array = self._validate_index_array(indices)
        return [self.path(int(index)) for index in index_array]

    def is_bijective_on_sample(self, sample_size: int = 64) -> bool:
        """Spot-check that ``path(index(·))`` round-trips on a domain sample.

        Checks evenly spaced indices across the domain; used by the test-suite
        and by :func:`repro.ordering.registry.make_ordering` in debug mode.
        """
        if self._size <= 0:
            return True
        step = max(1, self._size // max(1, sample_size))
        for index in range(0, self._size, step):
            if self.index(self.path(index)) != index:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<{type(self).__name__} {self.full_name!r} |L|={self._ranking.size} "
            f"k={self._max_length} size={self._size}>"
        )
