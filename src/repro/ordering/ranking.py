"""Ranking rules over the base label set (Section 3.1).

A *ranking rule* is a bijection between the base label set ``B`` and the
integer set ``[1, |B|]``.  Two rules are defined by the paper:

* :class:`AlphabeticalRanking` — rank by the alphabetical order of the labels.
* :class:`CardinalityRanking` — rank by ascending selectivity: a label with
  lower cardinality receives a lower rank (``l1 <card l2 ⇔ f(l1) < f(l2)``),
  ties broken alphabetically so the ranking is deterministic.

Both operate on the paper's default base set ``B = L`` (plain edge labels)
but accept arbitrary label strings, so richer base sets (e.g. serialised
``L2`` paths) can reuse them.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

from repro.exceptions import OrderingError, UnknownLabelError

__all__ = ["RankingRule", "AlphabeticalRanking", "CardinalityRanking"]


class RankingRule:
    """A bijection between a label set and ``[1, |L|]``.

    Concrete rules only differ in how the label sequence is ordered; the
    shared machinery (lookup tables, validation, inverse mapping) lives here.
    """

    #: Short name used by the ordering registry (e.g. ``"alph"``, ``"card"``).
    name: str = "base"

    def __init__(self, ordered_labels: Sequence[str]) -> None:
        labels = list(ordered_labels)
        if not labels:
            raise OrderingError("a ranking rule needs at least one label")
        if len(set(labels)) != len(labels):
            raise OrderingError("duplicate labels passed to ranking rule")
        self._labels_in_rank_order = tuple(labels)
        self._rank_of = {label: rank for rank, label in enumerate(labels, start=1)}

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels in rank order (rank 1 first)."""
        return self._labels_in_rank_order

    @property
    def size(self) -> int:
        """``|L|`` — the number of ranked labels."""
        return len(self._labels_in_rank_order)

    def rank(self, label: str) -> int:
        """The rank of ``label`` in ``[1, |L|]``."""
        try:
            return self._rank_of[label]
        except KeyError:
            raise UnknownLabelError(label) from None

    def label(self, rank: int) -> str:
        """The label with the given ``rank`` (the inverse of :meth:`rank`)."""
        if not 1 <= rank <= self.size:
            raise OrderingError(
                f"rank {rank} outside [1, {self.size}] for ranking {self.name!r}"
            )
        return self._labels_in_rank_order[rank - 1]

    def ranks(self, labels: Sequence[str]) -> list[int]:
        """Ranks of a label sequence (e.g. a label path's labels)."""
        return [self.rank(label) for label in labels]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self._labels_in_rank_order!r}>"


class AlphabeticalRanking(RankingRule):
    """Rank labels by their alphabetical (string) order."""

    name = "alph"

    def __init__(self, labels: Sequence[str]) -> None:
        super().__init__(sorted(labels))


class CardinalityRanking(RankingRule):
    """Rank labels by ascending cardinality (selectivity), ties alphabetical.

    The label with the *lowest* cardinality gets rank 1 ("in front"), exactly
    as defined in Section 3.1 of the paper.
    """

    name = "card"

    def __init__(self, cardinalities: Mapping[str, Union[int, float]]) -> None:
        if not cardinalities:
            raise OrderingError("cardinality ranking needs a non-empty cardinality map")
        ordered = sorted(cardinalities, key=lambda label: (cardinalities[label], label))
        super().__init__(ordered)
        self._cardinalities = {label: cardinalities[label] for label in ordered}

    @property
    def cardinalities(self) -> dict[str, Union[int, float]]:
        """The cardinality of each label, keyed by label."""
        return dict(self._cardinalities)

    def cardinality(self, label: str) -> Union[int, float]:
        """The cardinality ``f(label)`` the ranking was built from."""
        try:
            return self._cardinalities[label]
        except KeyError:
            raise UnknownLabelError(label) from None

    @classmethod
    def from_graph(cls, graph) -> "CardinalityRanking":
        """Build the ranking from a graph's single-label selectivities."""
        return cls(graph.label_selectivities())

    @classmethod
    def from_catalog(cls, catalog) -> "CardinalityRanking":
        """Build the ranking from a :class:`~repro.paths.catalog.SelectivityCatalog`."""
        return cls(catalog.label_selectivities())
