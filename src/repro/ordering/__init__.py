"""Histogram-domain orderings: ranking rules, ordering rules and the registry."""

from repro.ordering.base import Ordering
from repro.ordering.combinatorics import (
    bounded_partitions,
    compositions_count,
    multiset_permutations_in_order,
    permutation_count,
    rank_permutation,
    unrank_permutation,
)
from repro.ordering.ideal import IdealOrdering
from repro.ordering.lexicographical import LexicographicalOrdering
from repro.ordering.numerical import NumericalOrdering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking, RankingRule
from repro.ordering.registry import (
    PAPER_ORDERINGS,
    available_orderings,
    make_ordering,
    make_paper_orderings,
)
from repro.ordering.sum_based import SumBasedOrdering

__all__ = [
    "PAPER_ORDERINGS",
    "AlphabeticalRanking",
    "CardinalityRanking",
    "IdealOrdering",
    "LexicographicalOrdering",
    "NumericalOrdering",
    "Ordering",
    "RankingRule",
    "SumBasedOrdering",
    "available_orderings",
    "bounded_partitions",
    "compositions_count",
    "make_ordering",
    "make_paper_orderings",
    "multiset_permutations_in_order",
    "permutation_count",
    "rank_permutation",
    "unrank_permutation",
]
