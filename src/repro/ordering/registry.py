"""Factory for the paper's named ordering methods.

The paper names a complete ordering method ``<ordering rule>-<ranking rule>``
(Section 3.1): ``num-alph``, ``num-card``, ``lex-alph``, ``lex-card`` and
``sum-based`` (sum-based always uses the cardinality ranking).  This module
resolves those names to configured :class:`~repro.ordering.base.Ordering`
instances given the cardinality information they need.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.exceptions import OrderingError, UnknownOrderingError
from repro.ordering.base import Ordering
from repro.ordering.ideal import IdealOrdering
from repro.ordering.lexicographical import LexicographicalOrdering
from repro.ordering.numerical import NumericalOrdering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking, RankingRule
from repro.ordering.sum_based import SumBasedOrdering
from repro.paths.catalog import SelectivityCatalog

__all__ = [
    "PAPER_ORDERINGS",
    "available_orderings",
    "make_ordering",
    "make_paper_orderings",
]

#: The five ordering methods evaluated in the paper, in presentation order.
PAPER_ORDERINGS: tuple[str, ...] = (
    "num-alph",
    "num-card",
    "lex-alph",
    "lex-card",
    "sum-based",
)

#: Ordering-rule name -> ordering class.
_ORDERING_RULES: dict[str, type[Ordering]] = {
    "num": NumericalOrdering,
    "lex": LexicographicalOrdering,
    "sum": SumBasedOrdering,
}

_CanonicalNames = {
    "sum-based": ("sum", "card"),
    "sum-card": ("sum", "card"),
    "sum-alph": ("sum", "alph"),
    "num-alph": ("num", "alph"),
    "num-card": ("num", "card"),
    "lex-alph": ("lex", "alph"),
    "lex-card": ("lex", "card"),
}


def available_orderings() -> tuple[str, ...]:
    """All ordering names :func:`make_ordering` accepts (plus ``"ideal"``)."""
    return tuple(sorted(_CanonicalNames)) + ("ideal",)


def _build_ranking(
    ranking_name: str,
    labels: Sequence[str],
    cardinalities: Optional[Mapping[str, Union[int, float]]],
) -> RankingRule:
    if ranking_name == "alph":
        return AlphabeticalRanking(labels)
    if ranking_name == "card":
        if cardinalities is None:
            raise OrderingError(
                "cardinality-ranked orderings require label cardinalities "
                "(pass cardinalities= or a catalog)"
            )
        missing = [label for label in labels if label not in cardinalities]
        if missing:
            raise OrderingError(
                f"cardinalities missing for labels: {', '.join(sorted(missing))}"
            )
        return CardinalityRanking({label: cardinalities[label] for label in labels})
    raise OrderingError(f"unknown ranking rule: {ranking_name!r}")


def make_ordering(
    name: str,
    *,
    labels: Optional[Sequence[str]] = None,
    max_length: Optional[int] = None,
    cardinalities: Optional[Mapping[str, Union[int, float]]] = None,
    catalog: Optional[SelectivityCatalog] = None,
) -> Ordering:
    """Create the ordering method called ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_orderings` — e.g. ``"num-alph"``,
        ``"lex-card"``, ``"sum-based"`` or ``"ideal"``.
    labels / max_length / cardinalities:
        Domain description.  ``labels`` and ``max_length`` may be omitted when
        a ``catalog`` is given (they are taken from it); ``cardinalities``
        defaults to the catalog's single-label selectivities.
    catalog:
        Required for ``"ideal"``; optional source of the domain description
        for all other orderings.
    """
    key = name.strip().lower()
    if catalog is not None:
        labels = labels if labels is not None else catalog.labels
        max_length = max_length if max_length is not None else catalog.max_length
        if cardinalities is None:
            cardinalities = catalog.label_selectivities()
    if key == "ideal":
        if catalog is None:
            raise OrderingError("the ideal ordering requires a selectivity catalog")
        return IdealOrdering(catalog)
    if key not in _CanonicalNames:
        raise UnknownOrderingError(name, available_orderings())
    if labels is None or max_length is None:
        raise OrderingError(
            "labels and max_length are required (directly or via a catalog)"
        )
    rule_name, ranking_name = _CanonicalNames[key]
    ranking = _build_ranking(ranking_name, labels, cardinalities)
    ordering_cls = _ORDERING_RULES[rule_name]
    return ordering_cls(ranking, max_length)


def make_paper_orderings(
    catalog: SelectivityCatalog,
    *,
    include_ideal: bool = False,
    names: Optional[Sequence[str]] = None,
) -> dict[str, Ordering]:
    """Instantiate the paper's five orderings (optionally plus ``ideal``).

    Returns a mapping from method name to ordering, in the paper's
    presentation order, all sharing the given catalog's domain description.
    """
    selected = list(names) if names is not None else list(PAPER_ORDERINGS)
    if include_ideal and "ideal" not in selected:
        selected.append("ideal")
    return {name: make_ordering(name, catalog=catalog) for name in selected}
