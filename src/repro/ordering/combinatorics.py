"""Combinatorial primitives used by the sum-based ordering (Section 3.3).

The sum-based ordering maps a label path to an index through a three-stage
partitioning of the histogram domain.  The stage boundaries are computed with
three counting functions, all implemented here:

* :func:`compositions_count` — the paper's ``dist(sr, m, |L|)`` (Equation 3):
  how many length-``m`` rank sequences with entries in ``[1, b]`` sum to
  ``sr`` ("indistinguishable balls over distinguishable bins of finite
  capacity with at least one ball per bin").
* :func:`bounded_partitions` — the paper's ``ip(v, m, b)`` (Equation 4): all
  partitions of ``v`` into exactly ``m`` parts, each part in ``[1, b]``, in
  the specific order induced by the recursion (fewest maximal parts first),
  which is the order Algorithm 2 consumes.
* :func:`permutation_count` — the paper's ``nop(C)`` (Equation 5): how many
  distinct permutations a multiset ``C`` has.

On top of these, :func:`unrank_permutation` implements the paper's
Algorithm 1 (index → permutation of a multiset) and :func:`rank_permutation`
its inverse (permutation → index), so the full sum-based ordering is a true
bijection.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, factorial
from typing import Iterator, Optional, Sequence

from repro.exceptions import OrderingError

__all__ = [
    "compositions_count",
    "bounded_partitions",
    "permutation_count",
    "unrank_permutation",
    "rank_permutation",
    "multiset_permutations_in_order",
]


def compositions_count(total: int, parts: int, bound: int) -> int:
    """Number of ordered ``parts``-tuples with entries in ``[1, bound]`` summing to ``total``.

    This is the paper's ``dist(sr_m, m, |L|)`` (Equation 3), computed with the
    inclusion–exclusion formula::

        dist(s, m, b) = Σ_{j≥0} (-1)^j · C(m, j) · C(s − j·b − 1, m − 1)

    Arguments outside the feasible range return 0 rather than raising, because
    Algorithm 2 probes sums outside the feasible band while scanning.
    """
    if parts < 0 or bound < 1:
        return 0
    if parts == 0:
        return 1 if total == 0 else 0
    if total < parts or total > parts * bound:
        return 0
    result = 0
    for j in range(parts + 1):
        upper = total - j * bound - 1
        if upper < parts - 1:
            # All further terms have an even smaller upper argument; C(·)=0.
            break
        term = comb(parts, j) * comb(upper, parts - 1)
        result += -term if j % 2 else term
    return result


@lru_cache(maxsize=None)
def _bounded_partitions_cached(
    total: int, parts: int, bound: int
) -> tuple[tuple[int, ...], ...]:
    """Memoised body of :func:`bounded_partitions` (returns tuples)."""
    if parts == 0:
        return ((),) if total == 0 else ()
    if bound < 1 or total < parts or total > parts * bound:
        return ()
    if bound == 1:
        return ((1,) * parts,) if total == parts else ()
    result: list[tuple[int, ...]] = []
    max_bound_parts = min(parts, total // bound)
    for bound_parts in range(max_bound_parts + 1):
        for partition in _bounded_partitions_cached(
            total - bound_parts * bound, parts - bound_parts, bound - 1
        ):
            result.append(partition + (bound,) * bound_parts)
    return tuple(result)


def bounded_partitions(total: int, parts: int, bound: int) -> list[list[int]]:
    """All partitions of ``total`` into exactly ``parts`` parts, each in ``[1, bound]``.

    This is the paper's ``ip(v, m, b)`` (Equation 4).  The enumeration order
    matters: partitions using fewer copies of the maximal part ``bound`` come
    first, recursively.  For example ``ip(4, 2, 3) = [[2, 2], [1, 3]]`` which
    is exactly the order behind the paper's Table 2 sum-based row (the path
    with ranks ``(2, 2)`` precedes the ones with ranks ``{1, 3}``).

    Each returned partition is sorted ascending.
    """
    return [list(partition) for partition in _bounded_partitions_cached(total, parts, bound)]


def permutation_count(combination: Sequence[int]) -> int:
    """Number of distinct permutations of the multiset ``combination``.

    This is the paper's ``nop(C)`` (Equation 5):
    ``|C|! / Π_i d_i!`` where ``d_i`` is the multiplicity of value ``i``.
    """
    if not combination:
        return 1
    result = factorial(len(combination))
    multiplicities: dict[int, int] = {}
    for value in combination:
        multiplicities[value] = multiplicities.get(value, 0) + 1
    for count in multiplicities.values():
        result //= factorial(count)
    return result


def unrank_permutation(index: int, combination: Sequence[int]) -> Optional[list[int]]:
    """Return the ``index``-th permutation of the multiset ``combination``.

    This is the paper's Algorithm 1.  Permutations are ordered by their first
    element (taking distinct values of the sorted combination in ascending
    order), recursively.  Returns ``None`` when ``index`` is out of range,
    mirroring the paper's pseudo-code.
    """
    items = sorted(combination)
    if index < 0 or index >= permutation_count(items):
        return None
    if len(items) == 1:
        return [items[0]]
    position = 0
    while position < len(items):
        value = items[position]
        remainder = items[:position] + items[position + 1:]
        block = permutation_count(remainder)
        if index >= block:
            index -= block
            # Skip every duplicate of ``value``: they all generate the same
            # block of permutations.
            position += items.count(value)
            continue
        suffix = unrank_permutation(index, remainder)
        assert suffix is not None
        return [value] + suffix
    raise OrderingError("unrank_permutation: exhausted combination unexpectedly")


def rank_permutation(permutation: Sequence[int]) -> int:
    """Inverse of :func:`unrank_permutation`: the index of ``permutation``.

    The permutation is interpreted as a permutation of its own multiset of
    values; the returned index is its position in the Algorithm 1 order.
    """
    items = list(permutation)
    index = 0
    while len(items) > 1:
        first = items[0]
        remaining = sorted(items)
        seen: set[int] = set()
        for value in remaining:
            if value >= first:
                break
            if value in seen:
                continue
            seen.add(value)
            without_value = list(remaining)
            without_value.remove(value)
            index += permutation_count(without_value)
        items = items[1:]
    return index


def multiset_permutations_in_order(combination: Sequence[int]) -> Iterator[list[int]]:
    """Yield every permutation of ``combination`` in Algorithm 1 order."""
    total = permutation_count(combination)
    for index in range(total):
        permutation = unrank_permutation(index, combination)
        assert permutation is not None
        yield permutation
