"""Sum-based ordering (Section 3.3 — the paper's main contribution).

The idea: the cardinality of a label path correlates with the cardinalities
of its constituent labels, so the *sum of the base-label ranks* (under the
cardinality ranking) is a cheap proxy for the path's own cardinality.
Ordering the domain by that proxy places similar-cardinality paths next to
each other, which is precisely what a histogram wants.

Mapping a path to an index is a three-stage partitioning of the domain:

1. **Length** — shorter paths first; the stage-one partition of length ``m``
   has ``|L|^m`` members.
2. **Summed rank** — within a length, paths are grouped by the sum of their
   label ranks, ascending.  The group sizes are ``dist(s, m, |L|)``
   (:func:`~repro.ordering.combinatorics.compositions_count`, Equation 3).
3. **Combination / permutation** — within a (length, sum) group, paths are
   grouped by the multiset of their ranks, enumerated in the order of
   ``ip(v, m, b)`` (:func:`~repro.ordering.combinatorics.bounded_partitions`,
   Equation 4), each group holding ``nop(C)`` paths (Equation 5); inside one
   combination the concrete rank sequences follow the Algorithm 1 order.

Both directions are implemented: :meth:`SumBasedOrdering.path` is the paper's
Algorithm 2 (unranking), :meth:`SumBasedOrdering.index` its inverse.
"""

from __future__ import annotations

from math import factorial
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import OrderingError
from repro.ordering.base import Ordering, PathLike
from repro.ordering.combinatorics import (
    bounded_partitions,
    compositions_count,
    permutation_count,
    rank_permutation,
    unrank_permutation,
)
from repro.paths.index import domain_block_starts
from repro.paths.label_path import LabelPath

__all__ = ["SumBasedOrdering"]


class SumBasedOrdering(Ordering):
    """Order label paths by (length, summed rank, combination, permutation).

    The stage-one/two/three offsets depend only on ``(|L|, k)``, so they are
    memoised lazily per (length) and per (length, summed rank); after warm-up
    a ranking call reduces to three dictionary lookups plus the multiset
    permutation rank, which keeps the estimation overhead close to the ~20 %
    the paper reports for its Java implementation.
    """

    name = "sum"

    @property
    def full_name(self) -> str:
        """The paper refers to this method simply as ``sum-based``."""
        return "sum-based"

    # ------------------------------------------------------------------
    # memoised offset tables
    # ------------------------------------------------------------------
    def _length_offset(self, length: int) -> int:
        """Start index of the stage-one block of paths with ``length`` labels."""
        cache = getattr(self, "_length_offsets", None)
        if cache is None:
            cache = {}
            self._length_offsets = cache
        offset = cache.get(length)
        if offset is None:
            base = self._ranking.size
            offset = sum(base**m for m in range(1, length))
            cache[length] = offset
        return offset

    def _sum_offset(self, length: int, summed: int) -> int:
        """Offset of the stage-two group (``summed``) within its length block."""
        cache = getattr(self, "_sum_offsets", None)
        if cache is None:
            cache = {}
            self._sum_offsets = cache
        key = (length, summed)
        offset = cache.get(key)
        if offset is None:
            base = self._ranking.size
            offset = sum(
                compositions_count(smaller, length, base)
                for smaller in range(length, summed)
            )
            cache[key] = offset
        return offset

    def _combination_offsets(self, length: int, summed: int) -> dict[tuple[int, ...], int]:
        """Offset of every stage-three combination within its (length, sum) group."""
        cache = getattr(self, "_combo_offsets", None)
        if cache is None:
            cache = {}
            self._combo_offsets = cache
        key = (length, summed)
        offsets = cache.get(key)
        if offsets is None:
            base = self._ranking.size
            offsets = {}
            running = 0
            for candidate in bounded_partitions(summed, length, base):
                offsets[tuple(candidate)] = running
                running += permutation_count(candidate)
            cache[key] = offsets
        return offsets

    # ------------------------------------------------------------------
    # ranking: path -> index
    # ------------------------------------------------------------------
    def index(self, path: PathLike) -> int:
        """Rank ``path`` by (length, rank sum, combination, permutation)."""
        label_path = self._validate_path(path)
        ranks = self._ranking.ranks(label_path.labels)
        length = len(ranks)
        summed = sum(ranks)
        combination = tuple(sorted(ranks))
        try:
            combination_offset = self._combination_offsets(length, summed)[combination]
        except KeyError:  # pragma: no cover - defensive; cannot happen for valid ranks
            raise OrderingError(
                f"combination {combination} not produced by "
                f"ip({summed}, {length}, {self._ranking.size})"
            ) from None
        return (
            self._length_offset(length)
            + self._sum_offset(length, summed)
            + combination_offset
            + rank_permutation(ranks)
        )

    def _rank_block(self, length: int, ranks: np.ndarray) -> np.ndarray:
        base = self._ranking.size
        summed = ranks.sum(axis=1)
        out = np.full(ranks.shape[0], self._length_offset(length), dtype=np.int64)
        # Stage two: one offset per feasible summed rank (the band
        # [length, length·|L|]), looked up for all rows at once.
        sum_offsets = np.array(
            [
                self._sum_offset(length, candidate)
                for candidate in range(length, length * base + 1)
            ],
            dtype=np.int64,
        )
        out += sum_offsets[summed - length]
        # Stage three: rows sharing a rank multiset share their combination
        # offset, so only the unique sorted rows go through the memoised
        # per-combination table (their count is tiny next to the block size).
        combinations = np.sort(ranks, axis=1)
        unique, inverse = np.unique(combinations, axis=0, return_inverse=True)
        unique_offsets = np.array(
            [
                self._combination_offsets(length, int(row.sum()))[
                    tuple(int(value) for value in row)
                ]
                for row in unique
            ],
            dtype=np.int64,
        )
        out += unique_offsets[inverse]
        return out + _permutation_ranks(ranks, base)

    # ------------------------------------------------------------------
    # unranking: index -> path (the paper's Algorithm 2)
    # ------------------------------------------------------------------
    def path(self, index: int) -> LabelPath:
        """Unrank ``index`` back to its path (the paper's Algorithm 2)."""
        index = self._validate_index(index)
        base = self._ranking.size
        remaining = index
        for length in range(1, self._max_length + 1):
            block = base**length
            if remaining >= block:
                remaining -= block
                continue
            for summed in range(length, length * base + 1):
                group = compositions_count(summed, length, base)
                if remaining >= group:
                    remaining -= group
                    continue
                for combination in bounded_partitions(summed, length, base):
                    members = permutation_count(combination)
                    if remaining >= members:
                        remaining -= members
                        continue
                    ranks = unrank_permutation(remaining, combination)
                    assert ranks is not None
                    labels = [self._ranking.label(rank) for rank in ranks]
                    return LabelPath(labels)
                raise OrderingError(  # pragma: no cover - defensive
                    f"index walk exhausted combinations at length={length}, sum={summed}"
                )
            raise OrderingError(  # pragma: no cover - defensive
                f"index walk exhausted sums at length={length}"
            )
        raise OrderingError(  # pragma: no cover - defensive
            f"index walk exhausted lengths for index={index}"
        )

    def path_array(self, indices: Optional[Sequence[int]] = None) -> list[LabelPath]:
        """Vectorised :meth:`path` over many indices (default: whole domain)."""
        index_array = self._validate_index_array(indices)
        count = index_array.size
        if count == 0:
            return []
        base = self._ranking.size
        label_of = self._ranking.labels
        out: list[Optional[LabelPath]] = [None] * count
        # Stages one and two of Algorithm 2 vectorised: the length block is a
        # searchsorted over the canonical block starts, the summed-rank group
        # a searchsorted over the memoised cumulative group sizes.  Only the
        # final multiset-permutation unranking runs per path.
        starts = domain_block_starts(base, self._max_length)
        lengths = np.searchsorted(starts, index_array, side="right")
        for length in np.unique(lengths):
            length = int(length)
            members = np.nonzero(lengths == length)[0]
            remaining = index_array[members] - starts[length - 1]
            sum_offsets = np.array(
                [
                    self._sum_offset(length, candidate)
                    for candidate in range(length, length * base + 1)
                ],
                dtype=np.int64,
            )
            group = np.searchsorted(sum_offsets, remaining, side="right") - 1
            remaining = remaining - sum_offsets[group]
            summed_values = group + length
            for summed in np.unique(summed_values):
                summed = int(summed)
                in_group = summed_values == summed
                rows = members[in_group]
                rests = remaining[in_group]
                offsets_of = self._combination_offsets(length, summed)
                combinations = list(offsets_of.keys())
                offsets = np.fromiter(
                    offsets_of.values(), dtype=np.int64, count=len(combinations)
                )
                chosen = np.searchsorted(offsets, rests, side="right") - 1
                rests = rests - offsets[chosen]
                for row, combo_index, rest in zip(
                    rows.tolist(), chosen.tolist(), rests.tolist()
                ):
                    ranks = unrank_permutation(rest, combinations[combo_index])
                    assert ranks is not None
                    out[row] = LabelPath._from_validated(
                        tuple(label_of[rank - 1] for rank in ranks)
                    )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def summed_rank(self, path: PathLike) -> int:
        """The summed rank ``sr(ℓ)`` of a path (the paper's Table 1 values)."""
        label_path = self._validate_path(path)
        return sum(self._ranking.ranks(label_path.labels))


def _permutation_ranks(ranks: np.ndarray, base: int) -> np.ndarray:
    """Vectorised :func:`~repro.ordering.combinatorics.rank_permutation`.

    Algorithm 1 orders a multiset's permutations ascending-lexicographically,
    so the rank of each row is accumulated position by position: fixing
    position ``j`` skips, for every unused smaller value ``d``, the
    ``perms · count(d) / remaining`` permutations that start with ``d``.  The
    sweep is ``O(length · |L|)`` vectorised operations over all rows — no
    per-path Python — and every division is exact (the quantities are
    permutation counts).
    """
    rows, length = ranks.shape
    counts = (
        ranks[:, :, None] == np.arange(1, base + 1, dtype=np.int64)[None, None, :]
    ).sum(axis=1)
    factorials = np.array(
        [factorial(value) for value in range(length + 1)], dtype=np.int64
    )
    perms = factorials[length] // factorials[counts].prod(axis=1)
    out = np.zeros(rows, dtype=np.int64)
    for position in range(length - 1):
        remaining = length - position
        current = ranks[:, position]
        cumulative = counts.cumsum(axis=1)
        below = np.where(
            current > 1,
            np.take_along_axis(
                cumulative, np.maximum(current - 2, 0)[:, None], axis=1
            )[:, 0],
            0,
        )
        out += perms * below // remaining
        current_count = np.take_along_axis(counts, (current - 1)[:, None], axis=1)[:, 0]
        perms = perms * current_count // remaining
        np.put_along_axis(
            counts, (current - 1)[:, None], (current_count - 1)[:, None], axis=1
        )
    return out
