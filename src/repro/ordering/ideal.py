"""Ideal ordering (Section 3, "ideal ordering").

The ideal ordering sorts the whole domain by true selectivity, producing a
perfectly monotone frequency sequence — the best any domain reordering could
possibly do for a variance-minimising histogram.  The paper points out that
it is *not practical*: it requires storing an explicit index for every label
path, which is as much memory as storing the exact selectivities themselves.

It is implemented here anyway as the upper-bound baseline for the accuracy
experiments and for the ablation benchmarks; unlike the practical orderings it
holds two ``O(|Lk|)`` lookup tables.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import OrderingError
from repro.ordering.base import Ordering, PathLike
from repro.ordering.ranking import CardinalityRanking, RankingRule
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import enumerate_label_paths
from repro.paths.label_path import LabelPath

__all__ = ["IdealOrdering"]


class IdealOrdering(Ordering):
    """Sort the whole domain by true selectivity (ascending), ties by labels.

    Parameters
    ----------
    catalog:
        The true-selectivity catalog of the graph; every path of the domain is
        looked up in it (absent paths count as selectivity 0).
    ranking:
        Optional ranking rule to report under :attr:`Ordering.ranking`; by
        default a cardinality ranking derived from the catalog.  The ranking
        plays no role in the order itself.
    """

    name = "ideal"

    def __init__(
        self,
        catalog: SelectivityCatalog,
        *,
        ranking: Union[RankingRule, None] = None,
    ) -> None:
        if ranking is None:
            ranking = CardinalityRanking.from_catalog(catalog)
        super().__init__(ranking, catalog.max_length)
        if set(ranking.labels) != set(catalog.labels):
            raise OrderingError(
                "ranking labels and catalog labels differ: "
                f"{sorted(ranking.labels)} vs {sorted(catalog.labels)}"
            )
        ordered = sorted(
            enumerate_label_paths(catalog.labels, catalog.max_length),
            key=lambda path: (catalog.selectivity(path), path.labels),
        )
        self._path_at: list[LabelPath] = ordered
        self._index_of: dict[LabelPath, int] = {
            path: position for position, path in enumerate(ordered)
        }
        self._catalog = catalog

    @property
    def full_name(self) -> str:
        """The ideal ordering has no ranking-rule component in its name."""
        return "ideal"

    @property
    def catalog(self) -> SelectivityCatalog:
        """The catalog the ordering was materialised from."""
        return self._catalog

    def index(self, path: PathLike) -> int:
        """Position of ``path`` in the frequency-sorted ideal order."""
        label_path = self._validate_path(path)
        try:
            return self._index_of[label_path]
        except KeyError:  # pragma: no cover - validation keeps this unreachable
            raise OrderingError(f"path {label_path} missing from ideal ordering") from None

    def path(self, index: int) -> LabelPath:
        """The path at ``index`` of the frequency-sorted ideal order."""
        index = self._validate_index(index)
        return self._path_at[index]

    def memory_entries(self) -> int:
        """Number of explicit index entries the ordering stores (``|Lk|``).

        This is exactly the memory cost the paper argues makes the ideal
        ordering impractical; exposed for the documentation and benchmarks.
        """
        return len(self._path_at)
