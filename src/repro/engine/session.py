"""The batched estimation engine.

:class:`EstimationSession` is the serving-side counterpart of the paper's
offline pipeline.  It builds the full chain *once* — label matrices →
selectivity catalog → ordering → histogram — persists the expensive
artifacts to an :class:`~repro.engine.cache.ArtifactCache` keyed by the graph
digest and the engine configuration, and then answers selectivity estimates
in bulk: :meth:`EstimationSession.estimate_batch` maps thousands of paths to
domain positions through a precomputed table and resolves them against the
histogram with one vectorised lookup, avoiding the per-path Python overhead
of calling ``estimate`` in a loop.

A warm start (same graph, same config, same cache directory) loads every
artifact from disk and skips catalog construction entirely — the dominant
cost for any realistic ``k``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.engine.cache import ArtifactCache
from repro.engine.fingerprint import config_digest, graph_digest
from repro.estimation.estimator import PathSelectivityEstimator
from repro.exceptions import EngineError, OrderingError
from repro.graph.delta import GraphDelta, affected_first_labels
from repro.graph.digraph import LabeledDiGraph
from repro.histogram.builder import (
    LabelPathHistogram,
    build_histogram,
    domain_frequencies,
)
from repro.histogram.vopt import VOptimalHistogram
from repro.obs import tracing
from repro.obs.metrics import BUILD_BUCKETS, Histogram
from repro.ordering.base import Ordering
from repro.ordering.registry import make_ordering
from repro.paths.catalog import CATALOG_STORAGE_MODES, SelectivityCatalog
from repro.paths.enumeration import enumerate_label_paths, resolve_backend
from repro.paths.label_path import LabelPath

__all__ = ["EngineConfig", "SessionStats", "EstimationSession"]

PathLike = Union[str, LabelPath]

#: Estimated bytes per position-table entry (dict slot + key string + int).
_POSITION_TABLE_BYTES_PER_PATH = 120

#: Per-stage build latency, shared by every session in the process: cold
#: vs. warm vs. delta costs are decomposable per stage from one series.
_STAGE_SECONDS = Histogram(
    "repro_build_stage_seconds",
    "Session build stage latency in seconds, by stage.",
    buckets=BUILD_BUCKETS,
    labelnames=("stage",),
)


@dataclass(frozen=True)
class EngineConfig:
    """Everything that determines the engine's artifacts for one graph.

    Two sessions with equal configs over byte-identical graphs share every
    cache artifact; changing any field invalidates exactly the artifacts it
    feeds into (``max_length`` and ``storage`` invalidate all three,
    ``ordering`` and the histogram fields only the histogram and position
    table).
    """

    max_length: int = 3
    ordering: str = "sum-based"
    histogram_kind: str = VOptimalHistogram.kind
    bucket_count: int = 64
    storage: str = "auto"

    def __post_init__(self) -> None:
        if self.max_length < 1:
            raise EngineError("max_length must be >= 1")
        if self.bucket_count < 1:
            raise EngineError("bucket_count must be >= 1")
        if self.storage not in CATALOG_STORAGE_MODES:
            raise EngineError(
                f"unknown storage mode {self.storage!r}; expected one of "
                f"{CATALOG_STORAGE_MODES}"
            )

    @classmethod
    def from_args(cls, args: object, **overrides: object) -> "EngineConfig":
        """Build a config from a parsed CLI namespace.

        Reads the shared flag block (``-k/--max-length``, ``--ordering``,
        ``--histogram``, ``--buckets``, ``--storage``) that
        :func:`repro.cli.add_engine_options` installs on every engine-facing
        subcommand, falling back to the dataclass defaults for any flag the
        surface does not carry.  ``overrides`` win over both.
        """
        values = {
            "max_length": getattr(args, "max_length", cls.max_length),
            "ordering": getattr(args, "ordering", cls.ordering),
            "histogram_kind": getattr(args, "histogram", cls.histogram_kind),
            "bucket_count": getattr(args, "buckets", cls.bucket_count),
            "storage": getattr(args, "storage", cls.storage),
        }
        values.update(overrides)
        return cls(**values)  # type: ignore[arg-type]

    def catalog_fields(self) -> dict[str, object]:
        """The config fields the catalog artifact depends on.

        ``catalog_format`` versions the on-disk artifact layout: bumping it
        re-keys every catalog, so entries written under an older format (the
        pre-columnar JSON form) are never half-trusted — they are only read
        through the explicit fallback under their own old key
        (:meth:`legacy_catalog_fields`).  Format 3 added the sparse storage
        modes; ``storage`` is the *requested* mode (``"auto"`` included), so
        sessions asking for different representations never alias one
        artifact.
        """
        return {
            "max_length": self.max_length,
            "catalog_format": 3,
            "storage": self.storage,
        }

    def legacy_catalog_fields(self) -> dict[str, object]:
        """The catalog key fields of the pre-columnar format (no version tag).

        Caches written before the columnar artifact keyed catalogs by these
        fields alone; the session derives the old key from them so a legacy
        ``catalog-<key>.json`` entry can still warm-start a build.
        """
        return {"max_length": self.max_length}

    def histogram_fields(self) -> dict[str, object]:
        """The config fields the histogram / position artifacts depend on.

        Includes ``catalog_fields`` (the histogram is built from the catalog,
        and every catalog-invalidating change must invalidate it too).
        """
        return {
            **self.catalog_fields(),
            "ordering": self.ordering,
            "histogram_kind": self.histogram_kind,
            "bucket_count": self.bucket_count,
        }


@dataclass
class SessionStats:
    """Provenance and timing of one session build (for logs and benchmarks)."""

    graph_digest: str = ""
    catalog_key: str = ""
    histogram_key: str = ""
    catalog_from_cache: bool = False
    histogram_from_cache: bool = False
    positions_from_cache: bool = False
    catalog_seconds: float = 0.0
    histogram_seconds: float = 0.0
    positions_seconds: float = 0.0
    total_seconds: float = 0.0
    workers: int = 1
    backend: str = "serial"
    domain_size: int = 0
    memory_bytes: int = 0
    updated_from_delta: bool = False
    extra: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dict for reporting / JSON emission."""
        return {
            "graph_digest": self.graph_digest[:12],
            "catalog_key": self.catalog_key,
            "histogram_key": self.histogram_key,
            "catalog_from_cache": self.catalog_from_cache,
            "histogram_from_cache": self.histogram_from_cache,
            "positions_from_cache": self.positions_from_cache,
            "catalog_seconds": self.catalog_seconds,
            "histogram_seconds": self.histogram_seconds,
            "positions_seconds": self.positions_seconds,
            "total_seconds": self.total_seconds,
            "workers": self.workers,
            "backend": self.backend,
            "domain_size": self.domain_size,
            "memory_bytes": self.memory_bytes,
            "updated_from_delta": self.updated_from_delta,
            **self.extra,
        }


class EstimationSession:
    """A built estimation pipeline with a vectorised batch hot path.

    Construct with :meth:`build` (which consults the artifact cache) and then
    call :meth:`estimate` / :meth:`estimate_batch`.  The session is immutable
    and thread-safe for reads after construction.
    """

    def __init__(
        self,
        catalog: SelectivityCatalog,
        histogram: LabelPathHistogram,
        *,
        position_of: Mapping[str, int],
        config: EngineConfig,
        stats: Optional[SessionStats] = None,
        graph: Optional[LabeledDiGraph] = None,
        cache: Optional[ArtifactCache] = None,
    ) -> None:
        self._catalog = catalog
        self._histogram = histogram
        self._position_of = dict(position_of)
        # Sparse sessions carry no precomputed position table (it would be
        # O(|Lk|) memory); batches are ranked on demand through the
        # ordering's vectorised closed forms instead.
        self._lazy_positions = not self._position_of and catalog.storage == "sparse"
        self._config = config
        self._stats = stats if stats is not None else SessionStats()
        self._estimator = PathSelectivityEstimator(histogram)
        # The source graph and artifact cache are retained (not copied) so
        # :meth:`update` can apply deltas and patch artifacts; sessions
        # constructed without them simply cannot be updated in place.
        self._graph = graph
        self._cache = cache

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: LabeledDiGraph,
        config: Optional[EngineConfig] = None,
        *,
        cache_dir: Optional[Union[str, "ArtifactCache"]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        mmap: bool = False,
    ) -> "EstimationSession":
        """Build (or warm-load) a session for ``graph`` under ``config``.

        Parameters
        ----------
        cache_dir:
            A directory path or an :class:`ArtifactCache`.  When given, the
            catalog / histogram / position artifacts are loaded from it on a
            hit and written to it on a miss.  ``None`` builds everything in
            memory.
        workers:
            Worker count for catalog construction on a cache miss
            (``None`` = serial; ``n > 1`` splits the DFS over first-label
            subtrees).
        backend:
            Catalog construction backend: ``"serial"``, ``"thread"``,
            ``"process"`` or ``"matrix"`` (see
            :func:`repro.paths.enumeration.compute_selectivity_vector`).
            ``None`` keeps the historical default: threads when
            ``workers > 1``, serial otherwise.  ``"matrix"`` builds whole
            levels as stacked sparse matrix-chain products — the fastest
            cold build for large sparse domains.
        mmap:
            Prefer a memory-mapped catalog on a cache hit (see
            :meth:`ArtifactCache.load_catalog`).  Only changes how the
            frequency vector is backed; estimates are unaffected.
        """
        config = config if config is not None else EngineConfig()
        cache = cls._resolve_cache(cache_dir)

        # Resolve the backend and worker count through the builder's own
        # rules, so the stats record what a cold build actually uses.
        effective_backend, effective_workers = resolve_backend(
            backend, workers, graph.label_count or 1
        )
        stats = SessionStats(workers=effective_workers, backend=effective_backend)
        build_start = time.perf_counter()

        with tracing.span("session.fingerprint"):
            digest = graph_digest(graph)
        fingerprint_seconds = time.perf_counter() - build_start
        stats.extra["fingerprint_seconds"] = fingerprint_seconds
        _STAGE_SECONDS.observe(fingerprint_seconds, stage="fingerprint")
        stats.graph_digest = digest
        catalog_key, legacy_catalog_key, histogram_key = cls._artifact_keys(
            digest, config
        )
        stats.catalog_key = catalog_key
        stats.histogram_key = histogram_key

        # 1. Catalog: the expensive exact evaluation of the whole domain,
        #    landing directly in the columnar frequency vector.  A corrupt
        #    cached artifact is quarantined (renamed aside) and rebuilt cold
        #    instead of failing the request — and failing it again on every
        #    subsequent build of the same key.
        start = time.perf_counter()
        catalog = None
        if cache is not None:
            try:
                with tracing.span("session.catalog_load", key=catalog_key):
                    catalog = cache.load_catalog(
                        catalog_key, legacy_key=legacy_catalog_key, mmap=mmap
                    )
            except EngineError as exc:
                quarantined = cache.quarantine(catalog_key, kind="catalog")
                # The legacy-JSON fallback lives under a different key; the
                # error names the exact file that failed to parse.
                bad_path = getattr(exc, "artifact_path", None)
                if bad_path is not None:
                    extra = cache.quarantine_path(bad_path)
                    if extra is not None:
                        quarantined.append(extra)
                stats.extra["catalog_quarantined"] = len(quarantined)
        if catalog is None:
            with tracing.span("session.catalog_build", backend=effective_backend):
                catalog = SelectivityCatalog.from_graph(
                    graph,
                    config.max_length,
                    workers=effective_workers,
                    backend=effective_backend,
                    storage=config.storage,
                )
            if cache is not None:
                cache.store_catalog(catalog_key, catalog)
        else:
            stats.catalog_from_cache = True
            if cache is not None and not cache.catalog_path(catalog_key).exists():
                # Warm-started from a legacy JSON artifact: upgrade it to the
                # columnar form so later starts skip the slow reader.
                cache.store_catalog(catalog_key, catalog)
            elif cache is not None and mmap and not catalog.mmap_backed:
                # Warm-started from a remote fetch (which ships only the
                # ``.npz``) with mmap requested: backfill the sidecars so a
                # prefork parent's children share pages on the next load.
                cache.ensure_sidecars(catalog_key, catalog)
        stats.catalog_seconds = time.perf_counter() - start
        _STAGE_SECONDS.observe(stats.catalog_seconds, stage="catalog")

        return cls._assemble(
            graph=graph,
            catalog=catalog,
            config=config,
            cache=cache,
            stats=stats,
            histogram_key=histogram_key,
            build_start=build_start,
        )

    @staticmethod
    def _resolve_cache(
        cache_dir: Optional[Union[str, "ArtifactCache"]],
    ) -> Optional[ArtifactCache]:
        if cache_dir is None or isinstance(cache_dir, ArtifactCache):
            return cache_dir
        return ArtifactCache(cache_dir)

    @staticmethod
    def _artifact_keys(digest: str, config: EngineConfig) -> tuple[str, str, str]:
        """The (catalog, legacy catalog, histogram) cache keys for one build."""
        prefix = digest[:24]
        return (
            f"{prefix}-{config_digest(config.catalog_fields())}",
            f"{prefix}-{config_digest(config.legacy_catalog_fields())}",
            f"{prefix}-{config_digest(config.histogram_fields())}",
        )

    @classmethod
    def _assemble(
        cls,
        *,
        graph: LabeledDiGraph,
        catalog: SelectivityCatalog,
        config: EngineConfig,
        cache: Optional[ArtifactCache],
        stats: SessionStats,
        histogram_key: str,
        build_start: float,
    ) -> "EstimationSession":
        """Stages 2-4 of a build: ordering, position table, histogram, session.

        Shared by :meth:`build` (after loading or constructing the catalog)
        and :meth:`update` (after patching it): everything derived from the
        catalog is resolved against the cache under ``histogram_key`` and
        rebuilt on a miss.
        """
        # 2. Ordering (from the cached histogram when possible).  The load is
        #    timed into histogram_seconds below so the warm path's artifact
        #    parse cost is not attributed to no stage.  A corrupt cached
        #    histogram is quarantined and rebuilt, like every artifact kind.
        start = time.perf_counter()
        histogram = None
        if cache is not None:
            try:
                with tracing.span("session.histogram_load", key=histogram_key):
                    histogram = cache.load_histogram(histogram_key)
            except EngineError:
                quarantined = cache.quarantine(histogram_key, kind="histogram")
                stats.extra["histogram_quarantined"] = len(quarantined)
        ordering: Ordering
        if histogram is not None:
            ordering = histogram.ordering
            stats.histogram_from_cache = True
        else:
            with tracing.span("session.ordering", ordering=config.ordering):
                ordering = make_ordering(config.ordering, catalog=catalog)
        histogram_load_seconds = time.perf_counter() - start

        # 3. Position table: domain position of every path, in the stable
        #    numerical-alphabetical enumeration order of Lk.  Resolved before
        #    the histogram so a fresh histogram build can consume the
        #    catalog's frequency vector through it without per-path lookups.
        #    Sparse catalogs skip the table entirely — materialising O(|Lk|)
        #    positions (and a dict entry per path) would defeat the O(nnz)
        #    memory model — and rank queries on demand instead.
        start = time.perf_counter()
        positions: Optional[np.ndarray] = None
        position_of: dict[str, int] = {}
        if catalog.storage == "sparse":
            stats.extra["lazy_positions"] = True
        else:
            positions = None
            if cache is not None:
                try:
                    positions = cache.load_positions(histogram_key)
                except EngineError:
                    positions = None
                    quarantined = cache.quarantine(histogram_key, kind="positions")
                    stats.extra["positions_quarantined"] = len(quarantined)
                if positions is not None and positions.shape != (ordering.size,):
                    # Parses fine but cannot belong to this domain: damaged
                    # or mis-written — quarantine and recompute, same as a
                    # parse failure.
                    quarantined = cache.quarantine(histogram_key, kind="positions")
                    stats.extra["positions_quarantined"] = len(quarantined)
                    positions = None
            if positions is None:
                # Vectorised ranking of the whole canonical enumeration; the
                # closed-form orderings compute this without a per-path loop.
                positions = ordering.index_array()
                if cache is not None:
                    cache.store_positions(histogram_key, positions)
            else:
                stats.positions_from_cache = True
            position_of = {
                str(path): int(position)
                for path, position in zip(
                    enumerate_label_paths(catalog.labels, config.max_length), positions
                )
            }
        stats.positions_seconds = time.perf_counter() - start
        _STAGE_SECONDS.observe(stats.positions_seconds, stage="positions")
        trace = tracing.current_trace()
        if trace is not None:
            trace.add_span("session.positions", stats.positions_seconds)

        # 4. Histogram, built over the vectorised frequency layout on a miss.
        start = time.perf_counter()
        if histogram is None:
            # A serving engine should not refuse a tiny graph because the
            # configured β exceeds |Lk|; clamp instead (the requested value
            # stays in the cache key, so this cannot alias configs).
            bucket_count = min(config.bucket_count, ordering.size)
            with tracing.span("session.histogram", kind=config.histogram_kind):
                histogram = build_histogram(
                    catalog,
                    ordering,
                    kind=config.histogram_kind,
                    bucket_count=bucket_count,
                    frequencies=domain_frequencies(
                        catalog, ordering, positions=positions
                    ),
                )
            if cache is not None:
                try:
                    cache.store_histogram(histogram_key, histogram)
                except OrderingError:
                    # Materialised orderings (e.g. "ideal") cannot round-trip
                    # through the histogram artifact; the session still works,
                    # it just rebuilds the histogram on every start.
                    stats.extra["histogram_not_cacheable"] = True
        stats.histogram_seconds = histogram_load_seconds + time.perf_counter() - start
        _STAGE_SECONDS.observe(stats.histogram_seconds, stage="histogram")

        stats.total_seconds = time.perf_counter() - build_start
        _STAGE_SECONDS.observe(stats.total_seconds, stage="total")
        stats.domain_size = ordering.size
        stats.extra["catalog_storage"] = catalog.storage
        stats.extra["catalog_nnz"] = catalog.nnz
        if catalog.mmap_backed:
            stats.extra["catalog_mmap"] = True
        session = cls(
            catalog,
            histogram,
            position_of=position_of,
            config=config,
            stats=stats,
            graph=graph,
            cache=cache,
        )
        stats.memory_bytes = session.memory_bytes()
        return session

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def update(
        self,
        delta: GraphDelta,
        *,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        graph: Optional[LabeledDiGraph] = None,
    ) -> "EstimationSession":
        """A new session reflecting ``delta``, rebuilt incrementally.

        The delta is applied to the session's retained graph **in place**
        (the graph object is shared, not copied — copying a large graph
        would defeat the point of an incremental update), the graph is
        re-fingerprinted, and the catalog is patched through
        :meth:`SelectivityCatalog.apply_delta` — only the affected
        first-label subtree slices are re-evaluated.  The patched catalog is
        written to the artifact cache under its new content-addressed key,
        and the derived histogram and position table are invalidated: they
        are rebuilt from the patched catalog (the ordering may rank paths
        differently under the new frequencies) and cached under the new
        histogram key.

        The existing session is untouched and keeps answering estimates
        against the pre-delta catalog — callers (the serving registry) swap
        to the returned session when ready, so in-flight work drains against
        a consistent snapshot.  Because the patched catalog is only correct
        relative to the graph this session's catalog was built from, the
        retained graph is re-fingerprinted *before* the delta applies:
        updating a superseded session (one whose graph was already mutated
        by a later update) raises :class:`EngineError` instead of silently
        poisoning the artifact cache — chain updates through the session
        each ``update`` returns.

        ``graph``, when given, is used instead of the retained graph and
        must be content-identical to it (same digest).  Callers whose graph
        object is shared with parties that must not observe the mutation
        (the serving registry, when two names share one session) pass a
        ``copy()`` here.
        """
        if self._graph is None and graph is None:
            raise EngineError(
                "this session retains no graph reference; build it with "
                "EstimationSession.build(graph, ...) to enable update()"
            )
        graph = graph if graph is not None else self._graph
        config = self._config
        expected_digest = self._stats.graph_digest
        if expected_digest and graph_digest(graph) != expected_digest:
            raise EngineError(
                "stale session: its graph no longer matches the catalog "
                "(it was mutated after this session was built — apply "
                "deltas to the session returned by the previous update)"
            )
        effective_backend, effective_workers = resolve_backend(
            backend, workers, graph.label_count or 1
        )
        stats = SessionStats(
            workers=effective_workers,
            backend=effective_backend,
            updated_from_delta=True,
        )
        build_start = time.perf_counter()

        delta_added, delta_removed = delta.apply(graph)
        digest = graph_digest(graph)
        stats.graph_digest = digest
        catalog_key, _, histogram_key = self._artifact_keys(digest, config)
        stats.catalog_key = catalog_key
        stats.histogram_key = histogram_key

        old_labels = self._catalog.labels
        full_rebuild = self._catalog.delta_requires_full_rebuild(graph)
        affected = (
            old_labels
            if full_rebuild
            else affected_first_labels(
                graph, delta, config.max_length, labels=old_labels
            )
        )
        stats.extra.update(
            {
                "delta_additions": delta_added,
                "delta_removals": delta_removed,
                "delta_affected_subtrees": len(affected),
                "delta_subtrees_total": len(old_labels),
                "delta_full_rebuild": full_rebuild,
            }
        )

        # 1'. Catalog: patch only the affected subtree slices, then persist
        #     the result under the new graph digest ("patching" the cached
        #     artifact — the old key keeps serving the pre-delta graph).
        start = time.perf_counter()
        with tracing.span("session.delta_catalog", subtrees=len(affected)):
            catalog = self._catalog.apply_delta(
                graph,
                delta,
                workers=effective_workers,
                backend=effective_backend,
                affected=None if full_rebuild else affected,
            )
        if self._cache is not None:
            self._cache.store_catalog(catalog_key, catalog)
        stats.catalog_seconds = time.perf_counter() - start
        _STAGE_SECONDS.observe(stats.catalog_seconds, stage="delta_catalog")

        return self._assemble(
            graph=graph,
            catalog=catalog,
            config=config,
            cache=self._cache,
            stats=stats,
            histogram_key=histogram_key,
            build_start=build_start,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> SelectivityCatalog:
        """The selectivity catalog the session was built from."""
        return self._catalog

    @property
    def graph(self) -> Optional[LabeledDiGraph]:
        """The retained source graph (``None`` when constructed without one)."""
        return self._graph

    @property
    def cache(self) -> Optional[ArtifactCache]:
        """The artifact cache the session builds against (may be ``None``)."""
        return self._cache

    @property
    def histogram(self) -> LabelPathHistogram:
        """The label-path histogram answering the estimates."""
        return self._histogram

    @property
    def ordering(self) -> Ordering:
        """The domain ordering in use."""
        return self._histogram.ordering

    @property
    def estimator(self) -> PathSelectivityEstimator:
        """A conventional estimator over the same histogram (compat surface)."""
        return self._estimator

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def stats(self) -> SessionStats:
        """Build provenance and timings."""
        return self._stats

    @property
    def domain_size(self) -> int:
        """``|Lk|`` — the number of paths the session can estimate."""
        return self._histogram.ordering.size

    def memory_bytes(self) -> int:
        """Rough resident footprint of the session, in bytes.

        The serving registry's byte-budget eviction charges each session by
        this number: the catalog's stored representation — O(nnz) for
        sparse storage, the frequency vector for dense (zero when it is
        memory-mapped: those pages are reclaimable file cache) — plus the
        position table (a dict of path string → int, estimated per entry;
        empty for sparse sessions) and the histogram bucket arrays.  An
        estimate, not an audit.
        """
        total = self._catalog.memory_bytes()
        total += _POSITION_TABLE_BYTES_PER_PATH * len(self._position_of)
        total += 32 * self._histogram.bucket_count
        return total

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(self, path: PathLike) -> float:
        """The selectivity estimate ``e(ℓ)`` for one path."""
        return self._estimator.estimate(path)

    def position(self, path: PathLike) -> int:
        """The domain position of ``path`` under the session's ordering."""
        if self._lazy_positions:
            return self._histogram.ordering.index(path)
        key = path if isinstance(path, str) else str(path)
        try:
            return self._position_of[key]
        except KeyError:
            # Non-canonical spellings (whitespace, LabelPath-equivalent
            # strings) fall back to the ordering, which also produces the
            # right error for genuinely invalid paths.
            return self._histogram.ordering.index(path)

    def positions(self, paths: Sequence[PathLike]) -> np.ndarray:
        """Domain positions for a batch of paths, in input order."""
        if self._lazy_positions:
            return self._histogram.ordering.index_array(list(paths))
        table = self._position_of
        out = np.empty(len(paths), dtype=np.int64)
        for i, path in enumerate(paths):
            key = path if isinstance(path, str) else str(path)
            found = table.get(key, -1)
            out[i] = found if found >= 0 else self._histogram.ordering.index(path)
        return out

    def estimate_batch(self, paths: Sequence[PathLike]) -> np.ndarray:
        """Vectorised estimates for a batch of paths, in input order.

        Dense sessions resolve paths through the precomputed table (one
        dict lookup each — no parsing, validation or ranking arithmetic on
        the hot path); sparse sessions rank the whole batch through the
        ordering's vectorised closed form.  Either way the histogram
        answers all of them with a single vectorised bucket lookup, and the
        result agrees element-wise with a per-path :meth:`estimate` loop.
        """
        if len(paths) == 0:
            return np.empty(0, dtype=float)
        if self._lazy_positions:
            positions = self._histogram.ordering.index_array(list(paths))
            return self._histogram.estimate_indices(positions)
        table = self._position_of
        try:
            positions = np.fromiter(
                (table[p if isinstance(p, str) else str(p)] for p in paths),
                dtype=np.int64,
                count=len(paths),
            )
        except KeyError:
            positions = self.positions(paths)
        return self._histogram.estimate_indices(positions)

    def true_selectivity(self, path: PathLike) -> int:
        """Ground-truth ``f(ℓ)`` from the session's catalog."""
        return self._catalog.selectivity(path)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<EstimationSession method={self._histogram.method_name!r} "
            f"k={self._config.max_length} β={self._histogram.bucket_count} "
            f"domain={self.domain_size} "
            f"warm={self._stats.catalog_from_cache}>"
        )
