"""Stable content fingerprints for cache keys.

The artifact cache (:mod:`repro.engine.cache`) keys every expensive artifact
by *what produced it*: the graph's content digest plus a digest of the engine
configuration.  Both digests are deterministic across processes and insertion
orders, so a cache written by one run is valid for any later run over the
same data — the property the whole warm-start story rests on.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from repro.graph.digraph import LabeledDiGraph

__all__ = ["graph_digest", "config_digest"]

_SEPARATOR = b"\x1f"


def graph_digest(graph: LabeledDiGraph) -> str:
    """A hex SHA-256 digest of the graph's edge content.

    The digest covers the sorted ``(source, label, target)`` triples (vertex
    objects via ``repr``, so non-string vertices hash stably) plus the vertex
    count (isolated vertices change ``|V|`` and therefore matrix dimensions).
    Edge insertion order and the graph's display name do not affect it.
    """
    hasher = hashlib.sha256()
    hasher.update(str(graph.vertex_count).encode("utf-8"))
    triples = sorted(
        (repr(edge.source), edge.label, repr(edge.target)) for edge in graph.edges()
    )
    for source, label, target in triples:
        hasher.update(_SEPARATOR)
        hasher.update(source.encode("utf-8"))
        hasher.update(_SEPARATOR)
        hasher.update(label.encode("utf-8"))
        hasher.update(_SEPARATOR)
        hasher.update(target.encode("utf-8"))
    return hasher.hexdigest()


def config_digest(fields: Mapping[str, object]) -> str:
    """A short hex digest of a JSON-serialisable configuration mapping."""
    payload = json.dumps(dict(fields), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
