"""Remote artifact tier: a shared content-addressed store behind the cache.

A fleet of serving replicas shares build work through two cache tiers: the
local :class:`~repro.engine.cache.ArtifactCache` directory is the L1, and a
:class:`RemoteArtifactStore` — any host running ``repro artifact-server``
(see :mod:`repro.serving.artifacts`) — is the L2.  On a local miss the
cache consults the remote tier; after a local cold build it pushes the new
artifacts back, so any replica's build warm-starts every other replica.

The remote tier is first and foremost a *robustness* boundary — the
network, the peer, or the payload can fail at any point, and a cache miss
must never become a request failure — so every operation degrades:

* **bounded retries** through the shared :class:`repro.retry.RetryPolicy`
  core (exponential backoff + full jitter, ``Retry-After`` honoured as a
  lower bound, a per-call deadline the pauses cannot blow);
* **verified adoption**: a fetched payload is sha256-checked against the
  server's ``X-Content-Sha256`` digest *before* it is renamed into the
  local cache (download to a ``.tmp`` sibling, then atomic
  ``os.replace``); a mismatch parks the payload as a ``*.corrupt`` sibling
  — quarantined exactly like local corruption, never loaded;
* **single-flight fetches**: concurrent requests for one artifact share
  one download; the losers adopt the winner's file;
* **a per-remote circuit breaker**: after ``breaker_threshold``
  consecutive transport/5xx failures the store fast-fails every lookup (a
  lock acquire and a clock read, microseconds) until a timed half-open
  probe; a dead store costs one cold build, not a hung fleet;
* **best-effort background pushes**: a push failure is logged and counted,
  never surfaced to the build that triggered it.

Fault points ``remote.fetch`` / ``remote.push``
(:mod:`repro.testing.faults`) fire per attempt and support payload faults
(truncated body, bit-flipped body) so the verification path is exercised
with realistic damage.  Telemetry lands in :mod:`repro.obs.metrics`:
``repro_remote_fetch_total{kind,outcome}``,
``repro_remote_push_total{outcome}``, a fetch-latency histogram, and
breaker transition counts.
"""

from __future__ import annotations

import hashlib
import http.client
import logging
import os
import random
import threading
import time
import urllib.parse
import uuid
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import RemoteStoreError
from repro.obs.metrics import LATENCY_BUCKETS, Counter, Histogram
from repro.retry import RetryPolicy, parse_retry_after
from repro.testing import faults

__all__ = ["RemoteArtifactStore", "ARTIFACTS_ROUTE"]

_logger = logging.getLogger("repro.remote")

#: The content-addressed route prefix both this client and the
#: ``repro artifact-server`` speak.
ARTIFACTS_ROUTE = "/v1/artifacts"

#: Digest header carried by GET/HEAD answers and PUT requests.
DIGEST_HEADER = "X-Content-Sha256"

#: Process-wide remote-tier telemetry (shared by every store instance).
_REMOTE_FETCH = Counter(
    "repro_remote_fetch_total",
    "Remote artifact fetches by artifact kind and outcome "
    "(hit/miss/corrupt/error/breaker_open).",
    labelnames=("kind", "outcome"),
)
_REMOTE_PUSH = Counter(
    "repro_remote_push_total",
    "Remote artifact pushes by outcome (ok/error/breaker_open).",
    labelnames=("outcome",),
)
_REMOTE_FETCH_SECONDS = Histogram(
    "repro_remote_fetch_seconds",
    "Wall-clock seconds per remote fetch (network attempts included).",
    buckets=LATENCY_BUCKETS,
)
_REMOTE_BREAKER = Counter(
    "repro_remote_breaker_transitions_total",
    "Remote-store circuit breaker transitions, by new state.",
    labelnames=("state",),
)


def _artifact_kind(name: str) -> str:
    """The metric ``kind`` label for an artifact filename."""
    prefix = name.split("-", 1)[0]
    return prefix if prefix in ("catalog", "histogram", "positions") else "other"


class _NotFound(Exception):
    """Internal: the remote answered a clean 404 (a healthy miss)."""


class RemoteArtifactStore:
    """Content-addressed HTTP client for a shared artifact store.

    Speaks ``GET``/``PUT``/``HEAD`` of ``/v1/artifacts/<name>`` over
    :mod:`http.client` against one base URL.  All request-path entry points
    (:meth:`fetch`, :meth:`push`, :meth:`push_async`) are failure-proof by
    contract: they return outcomes instead of raising.  The operator
    surfaces (:meth:`head_artifact`, :meth:`list_artifacts`) raise
    :class:`~repro.exceptions.RemoteStoreError` so audit tooling can report
    a dead store instead of silently showing it empty.

    Parameters mirror :class:`~repro.serving.client.ServiceClient` where
    they overlap; ``breaker_threshold`` consecutive failed operations open
    the circuit for ``breaker_reset_seconds`` (``0`` disables the breaker).
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 5.0,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_max_seconds: float = 1.0,
        deadline_seconds: Optional[float] = 10.0,
        breaker_threshold: int = 3,
        breaker_reset_seconds: float = 5.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if timeout <= 0:
            raise RemoteStoreError("timeout must be > 0")
        if breaker_threshold < 0:
            raise RemoteStoreError("breaker_threshold must be >= 0")
        if breaker_reset_seconds < 0:
            raise RemoteStoreError("breaker_reset_seconds must be >= 0")
        parsed = urllib.parse.urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if parsed.scheme not in ("", "http"):
            raise RemoteStoreError(f"unsupported remote scheme: {parsed.scheme!r}")
        if not parsed.hostname:
            raise RemoteStoreError(f"remote URL has no host: {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self._timeout = timeout
        self._policy = RetryPolicy(
            max_retries=max_retries,
            backoff_seconds=backoff_seconds,
            backoff_max_seconds=backoff_max_seconds,
            deadline_seconds=deadline_seconds,
            rng=rng,
        )
        # Circuit breaker state (mirrors the registry's per-graph breaker).
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset_seconds
        self._breaker_lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._last_error = ""
        # Single-flight fetch dedup: one lock per in-flight artifact name.
        self._flights_lock = threading.Lock()
        self._flights: dict[str, threading.Lock] = {}
        # Outstanding background pushes (non-daemon: a short-lived CLI
        # process must finish its best-effort pushes before exiting).
        self._pushes_lock = threading.Lock()
        self._pushes: list[threading.Thread] = []
        self.fetches = 0
        self.hits = 0
        self.pushes = 0
        self.push_failures = 0

    @property
    def base_url(self) -> str:
        """The store base URL."""
        return f"http://{self._host}:{self._port}"

    # ------------------------------------------------------------------
    # fetch (request path — never raises)
    # ------------------------------------------------------------------
    def fetch(self, name: str, target: Union[str, Path]) -> str:
        """Fetch artifact ``name`` into ``target``; returns the outcome.

        Outcomes: ``"hit"`` (``target`` now holds a digest-verified copy),
        ``"miss"`` (the store answered a clean 404), ``"corrupt"`` (payload
        failed verification; parked as ``target.corrupt``, never adopted),
        ``"unavailable"`` (transport/5xx failure or open breaker — the
        caller proceeds exactly as on a miss).  Concurrent fetches of one
        name are single-flighted: the losers wait, then adopt the winner's
        file without a second download.
        """
        target = Path(target)
        kind = _artifact_kind(name)
        self.fetches += 1
        flight = self._flight(name)
        with flight:
            try:
                if target.exists():
                    # A concurrent flight (or a racing local build) already
                    # materialised the artifact while this caller waited.
                    self.hits += 1
                    _REMOTE_FETCH.inc(kind=kind, outcome="hit")
                    return "hit"
                if not self._breaker_allow():
                    _REMOTE_FETCH.inc(kind=kind, outcome="breaker_open")
                    return "unavailable"
                started = time.perf_counter()
                try:
                    payload, digest = self._download(name)
                except _NotFound:
                    self._breaker_success()
                    _REMOTE_FETCH.inc(kind=kind, outcome="miss")
                    _REMOTE_FETCH_SECONDS.observe(time.perf_counter() - started)
                    return "miss"
                except Exception as exc:  # noqa: BLE001 - request path: degrade
                    self._breaker_failure(exc)
                    _logger.warning("remote fetch of %s failed: %s", name, exc)
                    _REMOTE_FETCH.inc(kind=kind, outcome="error")
                    _REMOTE_FETCH_SECONDS.observe(time.perf_counter() - started)
                    return "unavailable"
                self._breaker_success()
                outcome = self._adopt(name, payload, digest, target)
                _REMOTE_FETCH.inc(kind=kind, outcome=outcome)
                _REMOTE_FETCH_SECONDS.observe(time.perf_counter() - started)
                if outcome == "hit":
                    self.hits += 1
                return outcome
            finally:
                self._release_flight(name, flight)

    def _adopt(self, name: str, payload: bytes, digest: str, target: Path) -> str:
        """Verify ``payload`` against ``digest`` and rename it into place."""
        actual = hashlib.sha256(payload).hexdigest()
        temp = target.with_name(
            f".{target.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        )
        try:
            temp.write_bytes(payload)
            if actual != digest:
                # Park the damaged payload for inspection, exactly like a
                # locally corrupted artifact — and never under the real
                # name, so it can never be loaded.
                parked = target.with_name(target.name + ".corrupt")
                os.replace(temp, parked)
                _logger.warning(
                    "remote payload for %s failed verification "
                    "(expected %.12s..., got %.12s...); parked at %s",
                    name,
                    digest,
                    actual,
                    parked,
                )
                return "corrupt"
            os.replace(temp, target)
            return "hit"
        except OSError as exc:  # pragma: no cover - disk trouble
            _logger.warning("cannot adopt remote artifact %s: %s", name, exc)
            return "unavailable"
        finally:
            temp.unlink(missing_ok=True)

    def _download(self, name: str) -> tuple[bytes, str]:
        """GET one artifact with retries; returns ``(payload, digest)``.

        Raises :class:`_NotFound` on a clean 404 and
        :class:`~repro.exceptions.RemoteStoreError` once the retry budget
        (attempts + deadline) is spent.  The ``remote.fetch`` fault point
        fires per attempt; payload faults mutate the body *before*
        verification, so armed damage is always caught by the digest.
        """
        state = self._policy.start()
        last_error: Optional[RemoteStoreError] = None
        while True:
            timeout = state.begin_attempt(self._timeout)
            if timeout is None:
                raise last_error or RemoteStoreError(
                    f"GET {name}: deadline exhausted before the first attempt"
                )
            retry_after: Optional[float] = None
            try:
                faults.fire("remote.fetch", name=name, method="GET")
                status, headers, body = self._request("GET", name, timeout=timeout)
            except (OSError, http.client.HTTPException) as exc:
                last_error = RemoteStoreError(f"cannot reach {self.base_url}: {exc}")
            else:
                if status == 200:
                    body = faults.mutate_payload("remote.fetch", body, name=name)
                    digest = headers.get(DIGEST_HEADER.lower(), "")
                    if not digest:
                        # A store that cannot vouch for its payloads is not
                        # trusted: unverifiable bytes are never adopted.
                        raise RemoteStoreError(
                            f"GET {name}: response carries no {DIGEST_HEADER}",
                            status=status,
                        )
                    return body, digest
                if status == 404:
                    raise _NotFound(name)
                retry_after = parse_retry_after(headers.get("retry-after"))
                last_error = RemoteStoreError(
                    f"GET {name} -> HTTP {status}", status=status
                )
                if status < 500 and status != 429:
                    raise last_error
            pause = state.next_pause(retry_after=retry_after)
            if pause is None:
                raise last_error
            if pause > 0:
                time.sleep(pause)

    # ------------------------------------------------------------------
    # push (best-effort — never raises)
    # ------------------------------------------------------------------
    def push(self, path: Union[str, Path], *, name: Optional[str] = None) -> bool:
        """PUT one local artifact file to the store; returns success.

        Failures are logged and counted (``push_failures``,
        ``repro_remote_push_total{outcome="error"}``), never raised: a push
        is a favour to the rest of the fleet, not part of the local build.
        """
        path = Path(path)
        name = name if name is not None else path.name
        if not self._breaker_allow():
            _REMOTE_PUSH.inc(outcome="breaker_open")
            return False
        try:
            payload = path.read_bytes()
        except OSError as exc:
            self.push_failures += 1
            _logger.warning("cannot read %s for push: %s", path, exc)
            _REMOTE_PUSH.inc(outcome="error")
            return False
        try:
            self._upload(name, payload)
        except Exception as exc:  # noqa: BLE001 - best-effort by contract
            self._breaker_failure(exc)
            self.push_failures += 1
            _logger.warning("remote push of %s failed: %s", name, exc)
            _REMOTE_PUSH.inc(outcome="error")
            return False
        self._breaker_success()
        self.pushes += 1
        _REMOTE_PUSH.inc(outcome="ok")
        return True

    def push_async(self, path: Union[str, Path], *, name: Optional[str] = None) -> None:
        """Push in a background thread (non-daemon; see :meth:`flush`).

        The request path returns immediately; the thread carries the full
        retry/breaker/counting behaviour of :meth:`push`.
        """
        thread = threading.Thread(
            target=self.push,
            args=(Path(path),),
            kwargs={"name": name},
            name="repro-remote-push",
        )
        with self._pushes_lock:
            self._pushes = [t for t in self._pushes if t.is_alive()]
            self._pushes.append(thread)
        thread.start()

    def flush(self, timeout: Optional[float] = None) -> None:
        """Wait for outstanding background pushes (tests and benchmarks).

        ``timeout`` bounds the wait *per thread*; pushes are already
        bounded by the per-call deadline, so a hung flush means a bug.
        """
        with self._pushes_lock:
            pending = list(self._pushes)
        for thread in pending:
            thread.join(timeout=timeout)

    def _upload(self, name: str, payload: bytes) -> None:
        """PUT with retries; raises once the retry budget is spent."""
        state = self._policy.start()
        last_error: Optional[RemoteStoreError] = None
        digest = hashlib.sha256(payload).hexdigest()
        while True:
            timeout = state.begin_attempt(self._timeout)
            if timeout is None:
                raise last_error or RemoteStoreError(
                    f"PUT {name}: deadline exhausted before the first attempt"
                )
            retry_after: Optional[float] = None
            try:
                faults.fire("remote.push", name=name)
                body = faults.mutate_payload("remote.push", payload, name=name)
                status, headers, _ = self._request(
                    "PUT",
                    name,
                    timeout=timeout,
                    body=body,
                    headers={DIGEST_HEADER: digest},
                )
            except (OSError, http.client.HTTPException) as exc:
                last_error = RemoteStoreError(f"cannot reach {self.base_url}: {exc}")
            else:
                if status in (200, 201):
                    return
                retry_after = parse_retry_after(headers.get("retry-after"))
                last_error = RemoteStoreError(
                    f"PUT {name} -> HTTP {status}", status=status
                )
                if status < 500 and status != 429:
                    raise last_error
            pause = state.next_pause(retry_after=retry_after)
            if pause is None:
                raise last_error
            if pause > 0:
                time.sleep(pause)

    # ------------------------------------------------------------------
    # operator surfaces (raise on failure)
    # ------------------------------------------------------------------
    def head_artifact(self, name: str) -> Optional[dict[str, object]]:
        """HEAD one artifact: ``{"bytes", "sha256"}``, or ``None`` on 404.

        Raises :class:`~repro.exceptions.RemoteStoreError` when the store
        cannot answer — an audit must distinguish "absent" from "unknown".
        """
        try:
            faults.fire("remote.fetch", name=name, method="HEAD")
            status, headers, _ = self._request("HEAD", name, timeout=self._timeout)
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteStoreError(f"cannot reach {self.base_url}: {exc}") from exc
        if status == 404:
            return None
        if status != 200:
            raise RemoteStoreError(f"HEAD {name} -> HTTP {status}", status=status)
        try:
            size = int(headers.get("content-length", "-1"))
        except ValueError:
            size = -1
        return {"bytes": size, "sha256": headers.get(DIGEST_HEADER.lower(), "")}

    def list_artifacts(self) -> list[dict[str, object]]:
        """The store's index: one ``{"name", "bytes", "mtime"}`` row per file.

        Raises :class:`~repro.exceptions.RemoteStoreError` on any failure.
        """
        import json

        try:
            status, _, body = self._request("", "", timeout=self._timeout)
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteStoreError(f"cannot reach {self.base_url}: {exc}") from exc
        if status != 200:
            raise RemoteStoreError(f"GET {ARTIFACTS_ROUTE} -> HTTP {status}", status=status)
        try:
            document = json.loads(body.decode("utf-8"))
            rows = document["artifacts"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise RemoteStoreError(f"malformed index from {self.base_url}: {exc}") from exc
        return list(rows)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        name: str,
        *,
        timeout: float,
        body: Optional[bytes] = None,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP attempt; returns ``(status, lower-cased headers, body)``.

        ``method=""`` with an empty name requests the index route.  A fresh
        connection per attempt keeps the client thread-safe and makes the
        per-attempt timeout authoritative (no half-dead keep-alives).
        """
        route = ARTIFACTS_ROUTE if not name else f"{ARTIFACTS_ROUTE}/{name}"
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=timeout
        )
        try:
            connection.request(
                method or "GET",
                route,
                body=body,
                headers={"Accept": "application/json", **(headers or {})},
            )
            response = connection.getresponse()
            payload = b"" if method == "HEAD" else response.read()
            answer_headers = {
                key.lower(): value for key, value in response.getheaders()
            }
            return response.status, answer_headers, payload
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # single-flight bookkeeping
    # ------------------------------------------------------------------
    def _flight(self, name: str) -> threading.Lock:
        """The (acquire-me) lock serialising fetches of ``name``."""
        with self._flights_lock:
            lock = self._flights.get(name)
            if lock is None:
                lock = threading.Lock()
                self._flights[name] = lock
            return lock

    def _release_flight(self, name: str, lock: threading.Lock) -> None:
        """Drop the flight entry once no other waiter holds a reference."""
        with self._flights_lock:
            if self._flights.get(name) is lock and not lock.locked():
                # Best-effort cleanup; a racing waiter that still holds the
                # lock object simply re-registers it on its next fetch.
                self._flights.pop(name, None)

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def _breaker_allow(self) -> bool:
        """Whether an operation may talk to the store right now.

        Closed circuit: yes.  Open circuit inside the reset window: no —
        this is the fast-fail (a lock and a clock read).  Open circuit past
        the window: exactly one caller becomes the half-open probe.
        """
        if not self._breaker_threshold:
            return True
        with self._breaker_lock:
            if self._opened_at is None:
                return True
            remaining = self._opened_at + self._breaker_reset - time.monotonic()
            if remaining > 0:
                return False
            if self._probing:
                return False
            self._probing = True
        _REMOTE_BREAKER.inc(state="half-open")
        return True

    def _breaker_failure(self, exc: Exception) -> None:
        """Count one failed operation; trip (or re-trip) the circuit when due."""
        if not self._breaker_threshold:
            return
        opened = False
        with self._breaker_lock:
            self._failures += 1
            self._last_error = str(exc)
            if self._probing or self._failures >= self._breaker_threshold:
                self._opened_at = time.monotonic()
                self._probing = False
                opened = True
        if opened:
            _logger.warning(
                "remote store %s circuit opened after %d failure(s): %s",
                self.base_url,
                self._failures,
                exc,
            )
            _REMOTE_BREAKER.inc(state="open")

    def _breaker_success(self) -> None:
        """Close the circuit (and clear the failure streak) on any success."""
        if not self._breaker_threshold:
            return
        closed = False
        with self._breaker_lock:
            if self._opened_at is not None or self._probing:
                closed = True
            self._failures = 0
            self._opened_at = None
            self._probing = False
            self._last_error = ""
        if closed:
            _logger.info("remote store %s circuit closed", self.base_url)
            _REMOTE_BREAKER.inc(state="closed")

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit is currently open (inside its reset window)."""
        with self._breaker_lock:
            if self._opened_at is None:
                return False
            return self._opened_at + self._breaker_reset > time.monotonic()

    def describe(self) -> dict[str, object]:
        """One observable row: URL, counters, breaker state."""
        with self._breaker_lock:
            open_now = (
                self._opened_at is not None
                and self._opened_at + self._breaker_reset > time.monotonic()
            )
            failures = self._failures
            last_error = self._last_error
        return {
            "url": self.base_url,
            "fetches": self.fetches,
            "hits": self.hits,
            "pushes": self.pushes,
            "push_failures": self.push_failures,
            "breaker_open": open_now,
            "breaker_failures": failures,
            "breaker_last_error": last_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<RemoteArtifactStore {self.base_url!r}>"
